//! A model of the Parity wallet hack — the paper's flagship real-world
//! composite attack (§1: "$280M was stolen or frozen via two separate
//! vulnerabilities. The attack involved reinitializing part of the
//! contract that sets owner variables, via a vulnerable library
//! function").
//!
//! The wallet below distills the bug: `initWallet` was meant to run once
//! at construction, but is publicly dispatchable — so an attacker
//! re-initializes the owner and then drains/destroys the wallet.
//!
//! ```text
//! cargo run --example parity_wallet
//! ```

use chain::abi::encode_call_addr;
use chain::TestNet;
use ethainter::{analyze_bytecode, Config, Vuln};
use evm::U256;

const WALLET: &str = r#"
contract WalletLibrary {
    address owner;
    uint dailyLimit;

    // The fatal flaw: a public (re)initializer.
    function initWallet(address o) public {
        owner = o;
        dailyLimit = 100;
    }

    function execute(address to, uint value) public {
        require(msg.sender == owner);
        send(to, value);
    }

    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}"#;

fn main() {
    let compiled = minisol::compile_source(WALLET).expect("compiles");

    // Ethainter flags the wallet before any attacker shows up.
    let report = analyze_bytecode(&compiled.bytecode, &Config::default());
    println!("Ethainter on the Parity-style wallet:");
    for f in &report.findings {
        println!("  - {}", f.vuln);
    }
    assert!(report.has(Vuln::TaintedOwnerVariable), "the re-init owner write");
    assert!(report.has(Vuln::AccessibleSelfDestruct), "kill is reachable after re-init");
    assert!(report.has(Vuln::TaintedSelfDestruct), "funds go to the tainted owner");

    // Replay the historical attack shape on a test network.
    let mut net = TestNet::new();
    let deployer = net.funded_account(U256::from(10u64));
    let wallet = net.deploy(deployer, compiled.bytecode);
    net.state_mut().set_balance(wallet, U256::from(280_000_000u64)); // "the $280M"
    net.state_mut().commit();

    let attacker = net.funded_account(U256::from(1u64));
    // Step 1: re-initialize ownership (the library-initializer bug).
    let r = net.call(attacker, wallet, encode_call_addr("initWallet(address)", attacker), U256::ZERO);
    assert!(r.success);
    // Step 2: destroy (the "suicided" second phase of the real incident).
    let r = net.call_traced(
        attacker,
        wallet,
        chain::abi::encode_call("kill()", &[]),
        U256::ZERO,
    );
    assert!(r.success);
    assert!(net.is_destroyed(wallet));
    assert_eq!(net.balance(attacker).low_u64(), 280_000_001);
    println!("\nreplayed: re-init + kill drained {} wei to the attacker", 280_000_000u64);
}
