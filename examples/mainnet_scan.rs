//! A whole-"chain" scan: generates a mainnet-like population of unique
//! contract bytecodes and reproduces the §6.2 prevalence table.
//!
//! ```text
//! cargo run --release --example mainnet_scan          # 5,000 contracts
//! cargo run --release --example mainnet_scan -- 20000 # bigger sweep
//! ```

use corpus::{Population, PopulationConfig};
use ethainter::{analyze_bytecode, Config, Vuln};
use std::time::Instant;

fn main() {
    let size: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5_000);
    println!("generating a population of {size} unique contracts…");
    let t0 = Instant::now();
    let pop = Population::generate(&PopulationConfig { size, ..Default::default() });
    println!("generated in {:.1?}", t0.elapsed());

    println!("scanning with Ethainter…");
    let t1 = Instant::now();
    let reports: Vec<_> =
        pop.contracts.iter().map(|c| analyze_bytecode(&c.bytecode, &Config::default())).collect();
    let elapsed = t1.elapsed();

    println!(
        "\nscanned {size} contracts in {elapsed:.1?} ({:.2} ms/contract)\n",
        elapsed.as_secs_f64() * 1e3 / size as f64
    );

    println!("{:<32}{:>10}{:>10}", "vulnerability", "flagged", "percent");
    for vuln in Vuln::ALL {
        let flagged = reports.iter().filter(|r| r.has(vuln)).count();
        println!(
            "{:<32}{:>10}{:>9.2}%",
            vuln.name(),
            flagged,
            100.0 * flagged as f64 / size as f64
        );
    }

    let any = reports.iter().filter(|r| !r.findings.is_empty()).count();
    println!("\n{any} contracts flagged in total ({:.2}%)", 100.0 * any as f64 / size as f64);
}
