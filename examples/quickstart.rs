//! Quickstart: compile a contract, run Ethainter, read the findings.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ethainter::{analyze_bytecode, Config};

fn main() {
    // §3.1 of the paper: a public setter leaves the owner variable — and
    // everything it guards — attacker-controlled.
    let source = r#"
    contract Vulnerable {
        address owner;

        function initOwner(address o) public {
            owner = o;
        }

        function kill() public {
            require(msg.sender == owner);
            selfdestruct(owner);
        }
    }"#;

    // 1. Compile to EVM bytecode (any bytecode works; this example uses
    //    the bundled minisol compiler so it is self-contained).
    let compiled = minisol::compile_source(source).expect("compiles");
    println!("compiled `{}`: {} bytes of bytecode", compiled.name, compiled.bytecode.len());

    // 2. Analyze: decompilation + the composite information-flow analysis.
    let report = analyze_bytecode(&compiled.bytecode, &Config::default());

    // 3. Read the findings.
    println!("\n{} finding(s):", report.findings.len());
    for f in &report.findings {
        let star = if f.composite { " (composite)" } else { "" };
        println!("  - {} at pc 0x{:x}{star}", f.vuln, f.pc);
        for sel in &f.selectors {
            println!("      reachable via selector 0x{sel:08x}");
        }
    }

    assert!(report.has(ethainter::Vuln::TaintedOwnerVariable));
    assert!(report.has(ethainter::Vuln::AccessibleSelfDestruct));
    println!("\nThe guard is defeatable: anyone can call initOwner and then kill.");
}
