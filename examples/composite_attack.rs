//! The paper's §2 illustration, end to end: the `Victim` contract is
//! compiled, deployed on a test network, flagged by Ethainter, and then
//! destroyed by Ethainter-Kill through the four-step composite chain
//! (register → become admin → become owner → kill).
//!
//! ```text
//! cargo run --example composite_attack
//! ```

use chain::TestNet;
use ethainter::{analyze_bytecode, Config, Vuln};
use evm::U256;
use kill::{exploit, KillConfig};

const VICTIM: &str = r#"
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;

    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }

    function registerSelf() public { users[msg.sender] = true; }
    function referUser(address user) public onlyUsers { users[user] = true; }
    function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
    function changeOwner(address o) public onlyAdmins { owner = o; }
    function kill() public onlyAdmins { selfdestruct(owner); }
}"#;

fn main() {
    // Deploy the victim with a balance worth stealing.
    let compiled = minisol::compile_source(VICTIM).expect("compiles");
    let mut net = TestNet::new();
    let deployer = net.funded_account(U256::from(1_000u64));
    let victim = net.deploy(deployer, compiled.bytecode.clone());
    net.state_mut().set_balance(victim, U256::from(1_000_000u64));
    net.state_mut().commit();
    println!("deployed Victim at {victim} holding 1000000 wei");

    // Ethainter flags the composite chain.
    let report = analyze_bytecode(&compiled.bytecode, &Config::default());
    println!("\nEthainter findings:");
    for f in &report.findings {
        println!("  - {}{}", f.vuln, if f.composite { "  ✰ composite" } else { "" });
    }
    assert!(report.has(Vuln::AccessibleSelfDestruct));
    assert!(report.has(Vuln::TaintedSelfDestruct));

    // Ethainter-Kill executes the exploit on a private fork.
    let outcome = exploit(&net, victim, &report, &KillConfig::default());
    println!("\nEthainter-Kill transcript ({} transactions):", outcome.steps.len());
    for step in &outcome.steps {
        println!(
            "  call 0x{:08x}  success={}  destroyed={}",
            step.selector, step.success, step.destroyed
        );
    }
    assert!(outcome.destroyed, "the exploit must land");
    assert_eq!(outcome.funds_recovered, U256::from(1_000_000u64));
    println!(
        "\ncontract destroyed; attacker recovered {} wei (the full balance)",
        outcome.funds_recovered
    );
    // The original network was never touched — the kill ran on a fork.
    assert!(!net.is_destroyed(victim));
    println!("original network untouched (exploit ran on a private fork)");
}
