//! The content-addressed analysis cache.
//!
//! Key = Keccak-256 over (Keccak-256 of the runtime bytecode ‖ the
//! [`ethainter::Config`] fingerprint ‖ [`ethainter::ANALYZER_VERSION`]).
//! Value = the contract's [`driver::Status`] (verdicts, fact counts,
//! lint diagnostics) plus the wall-clock cost of the original analysis.
//!
//! Persistence is an **append-only JSONL segment file** with an
//! in-memory index rebuilt on open: every [`ResultStore::put`] appends
//! one record and flushes, so a crash can lose at most the final,
//! partially-written line — which [`ResultStore::open`] detects and
//! truncates away before appending resumes. Within a segment the *last*
//! record for a key wins (append-only updates never rewrite history).
//!
//! Only deterministic statuses are cached: [`driver::Status::Analyzed`]
//! and [`driver::Status::DecompileFailed`] are pure functions of
//! (bytecode, config, analyzer version), while `TimedOut` and
//! `Panicked` depend on wall-clock budgets and should be retried, not
//! replayed — [`ResultStore::put`] silently drops them.

use driver::Status;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The segment file inside a cache directory.
const SEGMENT_FILE: &str = "segment.jsonl";
/// Cumulative hit/miss counters, rewritten after each scan.
const STATS_FILE: &str = "stats.json";

/// A 256-bit content address for one (bytecode, config, analyzer)
/// triple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey(pub [u8; 32]);

impl CacheKey {
    /// Lowercase hex form (the on-disk and display encoding).
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses the 64-char lowercase hex form.
    pub fn from_hex(s: &str) -> Result<CacheKey, String> {
        if s.len() != 64 {
            return Err(format!("cache key must be 64 hex chars, got {}", s.len()));
        }
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|e| format!("bad cache key hex: {e}"))?;
        }
        Ok(CacheKey(out))
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Computes the content address of an analysis result: hash of the
/// runtime bytecode, the config fingerprint, and the analyzer version
/// tag, combined with a second Keccak so no ingredient can bleed into
/// another's byte range.
pub fn cache_key(bytecode: &[u8], config: &ethainter::Config) -> CacheKey {
    let code_hash = evm::keccak256(bytecode);
    let mut material = Vec::with_capacity(64 + ethainter::ANALYZER_VERSION.len());
    material.extend_from_slice(&code_hash);
    material.extend_from_slice(&config.fingerprint());
    material.extend_from_slice(ethainter::ANALYZER_VERSION.as_bytes());
    CacheKey(evm::keccak256(&material))
}

/// One cached analysis result.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedResult {
    /// The (deterministic) per-contract status.
    pub status: Status,
    /// Wall-clock milliseconds the original analysis took — the work a
    /// hit saves, kept so warm-scan reports can state it.
    pub elapsed_ms: u64,
}

/// On-disk segment record: a [`CachedResult`] under its hex key.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SegmentRecord {
    key: String,
    status: Status,
    elapsed_ms: u64,
}

/// Cumulative counters persisted in the cache directory (`stats.json`)
/// and surfaced by `ethainter cache stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistentStats {
    /// Lookups answered from the cache, over the directory's lifetime.
    pub hits: u64,
    /// Lookups that missed, over the directory's lifetime.
    pub misses: u64,
}

/// A point-in-time view of a store (for reporting).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Distinct keys in the index.
    pub entries: usize,
    /// Bytes in the append-only segment file.
    pub segment_bytes: u64,
    /// Hits since this store was opened.
    pub session_hits: u64,
    /// Misses since this store was opened.
    pub session_misses: u64,
    /// Lifetime hits (previous sessions + this one).
    pub total_hits: u64,
    /// Lifetime misses (previous sessions + this one).
    pub total_misses: u64,
}

impl CacheStats {
    /// Session hit rate in `[0, 1]`; `0.0` before any lookup.
    pub fn session_hit_rate(&self) -> f64 {
        let total = self.session_hits + self.session_misses;
        if total == 0 {
            0.0
        } else {
            self.session_hits as f64 / total as f64
        }
    }
}

/// The content-addressed result store: in-memory index over an
/// append-only segment file.
pub struct ResultStore {
    dir: PathBuf,
    index: HashMap<CacheKey, CachedResult>,
    writer: BufWriter<File>,
    segment_bytes: u64,
    session_hits: u64,
    session_misses: u64,
    prior: PersistentStats,
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir`, replaying the
    /// segment into the in-memory index. A truncated final line — the
    /// signature of a crash mid-append — is cut off; any earlier
    /// malformed line is reported as corruption instead of silently
    /// skipped.
    pub fn open(dir: impl AsRef<Path>) -> Result<ResultStore, String> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating cache dir {}: {e}", dir.display()))?;
        let segment_path = dir.join(SEGMENT_FILE);
        let mut index = HashMap::new();
        let mut valid_bytes = 0u64;
        if segment_path.exists() {
            let text = std::fs::read_to_string(&segment_path)
                .map_err(|e| format!("reading {}: {e}", segment_path.display()))?;
            let (records, valid) = parse_jsonl_prefix::<SegmentRecord>(&text)
                .map_err(|e| format!("corrupt cache segment {}: {e}", segment_path.display()))?;
            valid_bytes = valid as u64;
            for r in records {
                let key = CacheKey::from_hex(&r.key)
                    .map_err(|e| format!("corrupt cache segment: {e}"))?;
                index.insert(key, CachedResult { status: r.status, elapsed_ms: r.elapsed_ms });
            }
            if (valid_bytes as usize) < text.len() {
                // Crash-truncated tail: cut the segment back to the valid
                // prefix so future appends start on a line boundary.
                let file = OpenOptions::new()
                    .write(true)
                    .open(&segment_path)
                    .map_err(|e| format!("opening {}: {e}", segment_path.display()))?;
                file.set_len(valid_bytes)
                    .map_err(|e| format!("truncating {}: {e}", segment_path.display()))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&segment_path)
            .map_err(|e| format!("opening {}: {e}", segment_path.display()))?;
        let prior: PersistentStats = match std::fs::read_to_string(dir.join(STATS_FILE)) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_default(),
            Err(_) => PersistentStats::default(),
        };
        Ok(ResultStore {
            dir,
            index,
            writer: BufWriter::new(file),
            segment_bytes: valid_bytes,
            session_hits: 0,
            session_misses: 0,
            prior,
        })
    }

    /// Looks up a key, counting the hit or miss — both in the store's
    /// own persistent stats and in the global telemetry registry
    /// (`ethainter_cache_{hits,misses}_total`), so `--metrics-out`
    /// surfaces cache temperature without a second accounting path.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        match self.index.get(key) {
            Some(hit) => {
                self.session_hits += 1;
                telemetry::metrics::counter("ethainter_cache_hits_total").inc();
                Some(hit.clone())
            }
            None => {
                self.session_misses += 1;
                telemetry::metrics::counter("ethainter_cache_misses_total").inc();
                None
            }
        }
    }

    /// Inserts a result: appends one segment record and flushes it, then
    /// updates the index. Non-deterministic statuses (`TimedOut`,
    /// `Panicked`) are dropped — they must be retried, not replayed.
    pub fn put(&mut self, key: CacheKey, result: CachedResult) -> Result<(), String> {
        match result.status {
            Status::TimedOut | Status::Panicked { .. } => return Ok(()),
            Status::Analyzed { .. } | Status::DecompileFailed { .. } => {}
        }
        // Cached statuses must be pure functions of (bytecode, config,
        // analyzer version): strip the wall-clock phase timings so the
        // segment bytes — and every warm replay — are deterministic.
        let result = CachedResult {
            status: result.status.without_timings(),
            elapsed_ms: result.elapsed_ms,
        };
        let record = SegmentRecord {
            key: key.to_hex(),
            status: result.status.clone(),
            elapsed_ms: result.elapsed_ms,
        };
        let line = serde_json::to_string(&record).map_err(|e| e.to_string())?;
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("appending cache segment: {e}"))?;
        self.segment_bytes += line.len() as u64 + 1;
        self.index.insert(key, result);
        Ok(())
    }

    /// Distinct keys in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current statistics (session + lifetime).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.index.len(),
            segment_bytes: self.segment_bytes,
            session_hits: self.session_hits,
            session_misses: self.session_misses,
            total_hits: self.prior.hits + self.session_hits,
            total_misses: self.prior.misses + self.session_misses,
        }
    }

    /// Per-status entry counts (`analyzed` / `decompile_failed`), for
    /// `ethainter cache stats`.
    pub fn status_breakdown(&self) -> (usize, usize) {
        let mut analyzed = 0;
        let mut failed = 0;
        for r in self.index.values() {
            match r.status {
                Status::Analyzed { .. } => analyzed += 1,
                Status::DecompileFailed { .. } => failed += 1,
                Status::TimedOut | Status::Panicked { .. } => {}
            }
        }
        (analyzed, failed)
    }

    /// Folds the session counters into `stats.json` so `cache stats`
    /// can report lifetime hit rates across runs. Idempotent per
    /// session: counters move from "session" to "prior".
    pub fn persist_stats(&mut self) -> Result<(), String> {
        self.prior.hits += self.session_hits;
        self.prior.misses += self.session_misses;
        self.session_hits = 0;
        self.session_misses = 0;
        let text = serde_json::to_string_pretty(&self.prior).map_err(|e| e.to_string())?;
        std::fs::write(self.dir.join(STATS_FILE), text)
            .map_err(|e| format!("writing cache stats: {e}"))
    }
}

/// Parses a JSONL buffer, tolerating exactly one truncated *final*
/// line: returns the parsed records and the byte length of the valid
/// prefix. A malformed line anywhere else is an error.
pub(crate) fn parse_jsonl_prefix<T: serde::Deserialize>(
    text: &str,
) -> Result<(Vec<T>, usize), String> {
    let mut records = Vec::new();
    let mut valid = 0usize;
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        let body = line.trim_end_matches('\n');
        let complete = line.ends_with('\n');
        if body.is_empty() {
            offset += line.len();
            if complete {
                valid = offset;
            }
            continue;
        }
        match serde_json::from_str::<T>(body) {
            Ok(record) if complete => {
                records.push(record);
                offset += line.len();
                valid = offset;
            }
            // A parseable but unterminated final line is still suspect
            // (the trailing newline never made it to disk); drop it like
            // a truncated one so the rewrite starts on a clean boundary.
            Ok(_) => break,
            Err(e) if !complete => {
                // Truncated tail — expected after a crash; drop it.
                let _ = e;
                break;
            }
            Err(e) => {
                return Err(format!("malformed record at byte {offset}: {e}"));
            }
        }
    }
    Ok((records, valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethainter::FactCounts;

    fn analyzed(findings: usize) -> Status {
        Status::Analyzed {
            findings,
            composite: 0,
            blocks: 2,
            stmts: 5,
            rounds: 1,
            facts: FactCounts::default(),
            lint: Vec::new(),
            timings: ethainter::PhaseTimings::default(),
            witness: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ethainter-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_depend_on_every_ingredient() {
        let cfg = ethainter::Config::default();
        let k1 = cache_key(b"\x60\x00", &cfg);
        let k2 = cache_key(b"\x60\x01", &cfg);
        assert_ne!(k1, k2, "bytecode must change the key");
        let alt = ethainter::Config { optimize_ir: false, ..cfg };
        assert_ne!(k1, cache_key(b"\x60\x00", &alt), "config must change the key");
        assert_eq!(k1, cache_key(b"\x60\x00", &cfg), "equal inputs, equal key");
        let hex = k1.to_hex();
        assert_eq!(CacheKey::from_hex(&hex).unwrap(), k1);
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tmp_dir("reopen");
        let key = cache_key(b"code", &ethainter::Config::default());
        {
            let mut store = ResultStore::open(&dir).unwrap();
            assert!(store.get(&key).is_none());
            store
                .put(key, CachedResult { status: analyzed(3), elapsed_ms: 17 })
                .unwrap();
            assert_eq!(store.get(&key).unwrap().status, analyzed(3));
            store.persist_stats().unwrap();
        }
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        let hit = store.get(&key).unwrap();
        assert_eq!(hit.status, analyzed(3));
        assert_eq!(hit.elapsed_ms, 17);
        let stats = store.stats();
        assert_eq!(stats.session_hits, 1);
        assert_eq!(stats.total_misses, 1, "first run's miss persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_and_segment_repaired() {
        let dir = tmp_dir("trunc");
        let key_a = cache_key(b"a", &ethainter::Config::default());
        let key_b = cache_key(b"b", &ethainter::Config::default());
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.put(key_a, CachedResult { status: analyzed(1), elapsed_ms: 1 }).unwrap();
            store.put(key_b, CachedResult { status: analyzed(2), elapsed_ms: 2 }).unwrap();
        }
        // Simulate a crash mid-append: chop the last record in half.
        let seg = dir.join(SEGMENT_FILE);
        let text = std::fs::read_to_string(&seg).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&seg, &text[..cut]).unwrap();

        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "only the intact record survives");
        assert!(store.get(&key_a).is_some());
        assert!(store.get(&key_b).is_none());
        // The segment was repaired: appending after the cut must yield a
        // cleanly parseable file again.
        store.put(key_b, CachedResult { status: analyzed(2), elapsed_ms: 2 }).unwrap();
        drop(store);
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(&key_b).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nondeterministic_statuses_are_not_cached() {
        let dir = tmp_dir("nondet");
        let mut store = ResultStore::open(&dir).unwrap();
        let key = cache_key(b"t", &ethainter::Config::default());
        store.put(key, CachedResult { status: Status::TimedOut, elapsed_ms: 9 }).unwrap();
        store
            .put(key, CachedResult { status: Status::Panicked { message: "m".into() }, elapsed_ms: 9 })
            .unwrap();
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_the_middle_is_an_error() {
        let dir = tmp_dir("corrupt");
        let seg = dir.join(SEGMENT_FILE);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&seg, "not json at all\n{\"also\": \"wrong shape\"}\n").unwrap();
        assert!(ResultStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
