//! Checkpointed scans: a per-scan directory holding a manifest (what is
//! being scanned, with which config, by which analyzer) and an
//! incrementally flushed outcome log, so a batch scan killed at any
//! point leaves a valid prefix that `--resume` continues from.
//!
//! Layout of a scan directory:
//!
//! ```text
//! <dir>/manifest.json    what was scanned (validated on resume)
//! <dir>/outcomes.jsonl   one Outcome per line, flushed per record
//! <dir>/merged.jsonl     deterministic verdict lines, written at the end
//! ```
//!
//! `outcomes.jsonl` records carry wall-clock timings and arrive in
//! completion order across runs, so they are bookkeeping, not the
//! deliverable. The deliverable is `merged.jsonl`: index-sorted
//! [`VerdictRecord`] lines containing only deterministic fields — an
//! interrupted-then-resumed scan produces a `merged.jsonl` byte-identical
//! to an uninterrupted one (asserted by `tests/resume.rs` and the CI
//! smoke job).

use crate::cache::parse_jsonl_prefix;
use driver::{Outcome, Status};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// File names inside a scan directory.
const MANIFEST_FILE: &str = "manifest.json";
const OUTCOMES_FILE: &str = "outcomes.jsonl";
const MERGED_FILE: &str = "merged.jsonl";

/// What a scan is over — recorded at creation, validated on resume.
/// A resume with a different analyzer, config, or input stream would
/// silently merge incomparable verdicts; the manifest turns that into
/// an error instead.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// [`ethainter::ANALYZER_VERSION`] at scan creation.
    pub analyzer_version: String,
    /// [`ethainter::Config::fingerprint_hex`] of the effective config.
    pub config_fingerprint: String,
    /// The contract source's stable descriptor.
    pub source: String,
}

impl Manifest {
    /// Builds the manifest for `config` over a source descriptor.
    pub fn new(config: &ethainter::Config, source_descriptor: String) -> Manifest {
        Manifest {
            analyzer_version: ethainter::ANALYZER_VERSION.to_string(),
            config_fingerprint: config.fingerprint_hex(),
            source: source_descriptor,
        }
    }
}

/// The deterministic slice of an [`Outcome`] — what `merged.jsonl`
/// holds. Timing is deliberately excluded so merged outputs are
/// byte-comparable across runs and machines.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictRecord {
    /// Global index of the contract in the scan's input stream.
    pub index: usize,
    /// Contract identifier.
    pub id: String,
    /// What the analysis concluded.
    pub status: Status,
}

impl VerdictRecord {
    /// Projects an outcome onto its deterministic fields. The status'
    /// per-phase wall-clock timings and engine-specific `rounds` metric
    /// are zeroed too — `outcomes.jsonl` keeps them for observability,
    /// `merged.jsonl` must stay byte-identical across runs, machines,
    /// and fixpoint engines.
    pub fn from_outcome(o: &Outcome) -> VerdictRecord {
        VerdictRecord { index: o.index, id: o.id.clone(), status: o.status.verdict_only() }
    }
}

/// An open checkpointed scan.
pub struct Checkpoint {
    dir: PathBuf,
    manifest: Manifest,
    /// Every completed outcome, keyed by global index (prior runs +
    /// this one).
    completed: BTreeMap<usize, Outcome>,
    /// How many of `completed` were loaded from disk rather than
    /// recorded this run.
    preloaded: usize,
    writer: BufWriter<File>,
}

impl Checkpoint {
    /// Creates a scan directory with `manifest`, or — when the directory
    /// already holds a manifest — validates it and resumes. This makes
    /// checkpointed scans idempotent: re-running the same command after
    /// a crash always continues rather than starting over.
    pub fn create(dir: impl AsRef<Path>, manifest: Manifest) -> Result<Checkpoint, String> {
        let dir = dir.as_ref().to_path_buf();
        if dir.join(MANIFEST_FILE).exists() {
            return Checkpoint::resume_with(dir, Some(manifest));
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating scan dir {}: {e}", dir.display()))?;
        let text = serde_json::to_string_pretty(&manifest).map_err(|e| e.to_string())?;
        std::fs::write(dir.join(MANIFEST_FILE), text)
            .map_err(|e| format!("writing manifest: {e}"))?;
        let writer = open_outcomes_append(&dir, 0)?;
        Ok(Checkpoint { dir, manifest, completed: BTreeMap::new(), preloaded: 0, writer })
    }

    /// Resumes the scan at `dir`, requiring that `expected` (when given)
    /// matches the stored manifest — same analyzer version, same config
    /// fingerprint, same source stream.
    pub fn resume(dir: impl AsRef<Path>, expected: &Manifest) -> Result<Checkpoint, String> {
        Checkpoint::resume_with(dir.as_ref().to_path_buf(), Some(expected.clone()))
    }

    /// Resumes without manifest validation (inspection tools).
    pub fn open_unchecked(dir: impl AsRef<Path>) -> Result<Checkpoint, String> {
        Checkpoint::resume_with(dir.as_ref().to_path_buf(), None)
    }

    fn resume_with(dir: PathBuf, expected: Option<Manifest>) -> Result<Checkpoint, String> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("reading {}: {e}", manifest_path.display()))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| format!("corrupt manifest {}: {e}", manifest_path.display()))?;
        if let Some(expected) = expected {
            if manifest != expected {
                return Err(format!(
                    "scan dir {} does not match this invocation:\n  recorded: {:?}\n  requested: {:?}\n\
                     (same inputs, config, and analyzer version are required to resume)",
                    dir.display(),
                    manifest,
                    expected
                ));
            }
        }
        // Load the completed prefix, tolerating (and repairing) a
        // crash-truncated final line.
        let outcomes_path = dir.join(OUTCOMES_FILE);
        let mut completed = BTreeMap::new();
        let mut valid_bytes = 0u64;
        if outcomes_path.exists() {
            let text = std::fs::read_to_string(&outcomes_path)
                .map_err(|e| format!("reading {}: {e}", outcomes_path.display()))?;
            let (records, valid) = parse_jsonl_prefix::<Outcome>(&text)
                .map_err(|e| format!("corrupt outcome log {}: {e}", outcomes_path.display()))?;
            valid_bytes = valid as u64;
            for o in records {
                completed.insert(o.index, o);
            }
        }
        let preloaded = completed.len();
        let writer = open_outcomes_append(&dir, valid_bytes)?;
        Ok(Checkpoint { dir, manifest, completed, preloaded, writer })
    }

    /// The scan directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stored manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// True when the contract at `index` already has a recorded outcome.
    pub fn is_completed(&self, index: usize) -> bool {
        self.completed.contains_key(&index)
    }

    /// Outcomes inherited from previous runs of this scan.
    pub fn preloaded(&self) -> usize {
        self.preloaded
    }

    /// Total recorded outcomes (previous runs + this one).
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Records one outcome: appends a JSONL line and flushes it before
    /// updating the in-memory set, so a crash between the two leaves the
    /// durable log ahead of (never behind) the resume logic.
    pub fn record(&mut self, outcome: &Outcome) -> Result<(), String> {
        let line = serde_json::to_string(outcome).map_err(|e| e.to_string())?;
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("appending outcome log: {e}"))?;
        self.completed.insert(outcome.index, outcome.clone());
        Ok(())
    }

    /// All completed outcomes, index-sorted.
    pub fn merged(&self) -> impl Iterator<Item = &Outcome> {
        self.completed.values()
    }

    /// The deterministic merged output: index-sorted [`VerdictRecord`]
    /// JSON lines. Byte-identical across cold, warm, and
    /// interrupted+resumed runs of the same scan.
    pub fn merged_verdicts_jsonl(&self) -> String {
        let mut out = String::new();
        for o in self.completed.values() {
            let v = VerdictRecord::from_outcome(o);
            out.push_str(&serde_json::to_string(&v).expect("verdict serializes"));
            out.push('\n');
        }
        out
    }

    /// Writes `merged.jsonl` into the scan directory and returns its
    /// path.
    pub fn write_merged(&self) -> Result<PathBuf, String> {
        let path = self.dir.join(MERGED_FILE);
        std::fs::write(&path, self.merged_verdicts_jsonl())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(path)
    }
}

/// Opens the outcome log for appending, first truncating it to
/// `valid_bytes` (cutting off a crash-torn tail).
fn open_outcomes_append(dir: &Path, valid_bytes: u64) -> Result<BufWriter<File>, String> {
    let path = dir.join(OUTCOMES_FILE);
    if path.exists() {
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        file.set_len(valid_bytes)
            .map_err(|e| format!("truncating {}: {e}", path.display()))?;
    }
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("opening {}: {e}", path.display()))?;
    Ok(BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(index: usize) -> Outcome {
        Outcome {
            index,
            id: format!("c{index}"),
            status: Status::DecompileFailed { reason: "r".into() },
            elapsed_ms: index as u64,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ethainter-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> Manifest {
        Manifest::new(&ethainter::Config::default(), "mem:test".into())
    }

    #[test]
    fn create_record_resume_skips_completed() {
        let dir = tmp_dir("roundtrip");
        {
            let mut cp = Checkpoint::create(&dir, manifest()).unwrap();
            cp.record(&outcome(0)).unwrap();
            cp.record(&outcome(2)).unwrap();
        }
        let cp = Checkpoint::resume(&dir, &manifest()).unwrap();
        assert_eq!(cp.preloaded(), 2);
        assert!(cp.is_completed(0));
        assert!(!cp.is_completed(1));
        assert!(cp.is_completed(2));
        let merged: Vec<usize> = cp.merged().map(|o| o.index).collect();
        assert_eq!(merged, vec![0, 2], "merged output is index-sorted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_mismatched_manifest() {
        let dir = tmp_dir("mismatch");
        drop(Checkpoint::create(&dir, manifest()).unwrap());
        let other = Manifest::new(&ethainter::Config::no_passes(), "mem:test".into());
        assert!(Checkpoint::resume(&dir, &other).is_err());
        let other_src = Manifest::new(&ethainter::Config::default(), "mem:other".into());
        assert!(Checkpoint::resume(&dir, &other_src).is_err());
        assert!(Checkpoint::resume(&dir, &manifest()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_dropped_and_rewritten() {
        let dir = tmp_dir("torn");
        {
            let mut cp = Checkpoint::create(&dir, manifest()).unwrap();
            cp.record(&outcome(0)).unwrap();
            cp.record(&outcome(1)).unwrap();
        }
        let log = dir.join(OUTCOMES_FILE);
        let text = std::fs::read_to_string(&log).unwrap();
        std::fs::write(&log, &text[..text.len() - 7]).unwrap();

        let mut cp = Checkpoint::resume(&dir, &manifest()).unwrap();
        assert_eq!(cp.preloaded(), 1, "torn record does not count as completed");
        assert!(!cp.is_completed(1));
        cp.record(&outcome(1)).unwrap();
        drop(cp);
        // The log parses cleanly end to end after the repair.
        let text = std::fs::read_to_string(&log).unwrap();
        for line in text.lines() {
            let _: Outcome = serde_json::from_str(line).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_verdicts_are_deterministic_and_timing_free() {
        let dir = tmp_dir("verdicts");
        let mut cp = Checkpoint::create(&dir, manifest()).unwrap();
        cp.record(&outcome(1)).unwrap();
        cp.record(&outcome(0)).unwrap();
        let merged = cp.merged_verdicts_jsonl();
        assert!(!merged.contains("elapsed_ms"));
        let first: VerdictRecord = serde_json::from_str(merged.lines().next().unwrap()).unwrap();
        assert_eq!(first.index, 0, "sorted by index regardless of record order");
        let path = cp.write_merged().unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), merged);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
