//! # store — content-addressed results, streaming corpora, resume
//!
//! The persistence layer under the batch driver, closing the gap
//! between "analyze a population in memory" and the paper's
//! whole-chain-scale scans: work already done is never redone, inputs
//! never need to fit in RAM, and a killed scan continues where it
//! stopped.
//!
//! Three pieces, composable but independently usable:
//!
//! - [`cache`] — a **content-addressed analysis cache**. The key is
//!   Keccak-256 over (bytecode hash ‖ [`ethainter::Config::fingerprint`]
//!   ‖ [`ethainter::ANALYZER_VERSION`]); the value is the contract's
//!   [`driver::Status`]. Persisted as an append-only JSONL segment with
//!   an in-memory index: a re-run of an unchanged scan is pure O(1)
//!   lookups, and any config or analyzer change silently keys into
//!   fresh territory instead of replaying stale verdicts.
//! - [`source`] — the [`ContractSource`] streaming trait with adapters
//!   for in-memory lists, the [`corpus`] generator (one contract
//!   resident at a time), directories of hex files, JSONL manifests,
//!   and concatenations thereof. Each source carries a stable
//!   *descriptor* naming its stream.
//! - [`checkpoint`] — per-scan directories: a [`Manifest`] (analyzer
//!   version + config fingerprint + source descriptor, validated on
//!   resume), a line-flushed outcome log whose crash-torn tail is
//!   detected and repaired, and a deterministic index-sorted
//!   `merged.jsonl` of [`VerdictRecord`]s that is byte-identical
//!   whether a scan ran cold, warm, or interrupted-then-resumed.
//! - [`shared`] — a **thread-safe, single-flight** view of the cache
//!   ([`SharedCache`]) for concurrent consumers (`ethainter serve`
//!   workers): N simultaneous requests for the same key cost exactly
//!   one fresh analysis; everyone else blocks briefly and hits.
//!
//! [`scan::Scanner`] wires them together over [`driver::analyze_batch`]
//! with bounded memory (resume filter → cache lookup → chunked fresh
//! analysis).
//!
//! ## Example
//!
//! ```
//! use store::{Checkpoint, ContractSource, Manifest, MemorySource, Scanner};
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = ethainter::Config::default();
//! let source = MemorySource::new(vec![("stop".into(), vec![0x00])]);
//! let manifest = Manifest::new(&config, source.descriptor());
//! let mut cp = Checkpoint::create(&dir, manifest).unwrap();
//! let summary = Scanner::default().scan(source, &mut cp, |_| {}, |_| {}).unwrap();
//! assert_eq!(summary.recorded(), 1);
//! assert!(cp.is_completed(0));
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod scan;
pub mod shared;
pub mod source;

pub use cache::{cache_key, CacheKey, CacheStats, CachedResult, ResultStore};
pub use shared::{GetOrCompute, SharedCache};
pub use checkpoint::{Checkpoint, Manifest, VerdictRecord};
pub use scan::{ScanSummary, Scanner};
pub use source::{
    parse_hex, ChainedSource, ContractSource, CorpusSource, HexDirSource, JsonlManifestSource,
    MemorySource, SourceContract,
};
