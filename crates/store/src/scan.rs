//! The scan orchestrator: streams a [`ContractSource`] through the
//! batch driver with the result cache and checkpoint log in the loop.
//!
//! Per contract, in stream order:
//!
//! 1. **resume filter** — if the checkpoint already holds an outcome for
//!    this index, skip it entirely (no decompile, no cache lookup);
//! 2. **cache lookup** — a hit materializes the outcome for free and is
//!    recorded immediately;
//! 3. **fresh analysis** — misses accumulate into a bounded chunk that
//!    runs through [`driver::analyze_batch`] (full parallelism, timeout,
//!    and panic isolation), after which each outcome is recorded,
//!    cached, and handed to the sink.
//!
//! Memory is bounded by the chunk size plus the cache index — never by
//! the population. Every recorded outcome is flushed to the checkpoint
//! log line-by-line before the scan advances, so a kill at any point
//! leaves a valid, resumable prefix.

use crate::cache::{cache_key, CacheKey, CachedResult, ResultStore};
use crate::checkpoint::Checkpoint;
use crate::source::ContractSource;
use driver::{DriverConfig, Outcome, Status};
use std::time::Instant;

/// A cache miss queued for a driver run: (global index, id, code) plus
/// the precomputed cache key and the µs its derivation + lookup took,
/// when caching is on.
type PendingItem = (usize, String, Vec<u8>, Option<CacheKey>, u64);

/// Stamps the scanner-side `cache_lookup_us` phase onto an analyzed
/// status and re-derives `total_us`, keeping the
/// `total_us == phase_sum()` invariant after the last phase lands.
fn stamp_cache_lookup(status: &mut Status, lookup_us: u64) {
    if let Status::Analyzed { timings, .. } = status {
        timings.cache_lookup_us = lookup_us;
        timings.stamp_total();
    }
}

/// Scan policy: driver settings, analysis config, chunking, and an
/// optional record budget for this invocation.
pub struct Scanner<'a> {
    /// Parallelism and per-contract isolation budget.
    pub driver: DriverConfig,
    /// Analysis configuration (also the config half of cache keys).
    pub analysis: ethainter::Config,
    /// Contracts resident at once on the fresh-analysis path.
    pub chunk: usize,
    /// Stop after recording this many outcomes in this invocation
    /// (cache hits included, resume-skips excluded). `None` = run to
    /// stream exhaustion. This is how the CI smoke job "interrupts" a
    /// scan deterministically.
    pub limit: Option<usize>,
    /// The content-addressed result cache, when enabled.
    pub cache: Option<&'a mut ResultStore>,
}

/// What one scan invocation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Contracts seen in the stream (including skipped ones).
    pub seen: usize,
    /// Contracts skipped because the checkpoint already had them.
    pub skipped_completed: usize,
    /// Outcomes materialized from the cache.
    pub cache_hits: usize,
    /// Outcomes computed by fresh analysis.
    pub fresh: usize,
    /// Source items that could not be read (`Err` from the source);
    /// they are reported to the sink's error channel by the CLI, not
    /// recorded as outcomes.
    pub source_errors: usize,
    /// True when `limit` stopped the scan before stream exhaustion.
    pub interrupted: bool,
    /// Wall-clock milliseconds for this invocation.
    pub wall_ms: u64,
}

impl ScanSummary {
    /// Outcomes recorded this invocation (hits + fresh).
    pub fn recorded(&self) -> usize {
        self.cache_hits + self.fresh
    }
}

impl Default for Scanner<'_> {
    fn default() -> Self {
        Scanner {
            driver: DriverConfig::default(),
            analysis: ethainter::Config::default(),
            chunk: 64,
            limit: None,
            cache: None,
        }
    }
}

impl Scanner<'_> {
    /// Runs the scan: every contract the stream yields ends up with
    /// exactly one recorded outcome (this run or a previous one), unless
    /// `limit` interrupts first. `sink` observes each outcome recorded
    /// *this* run, in recording order; `on_source_error` observes
    /// unreadable source items.
    pub fn scan<S: ContractSource>(
        &mut self,
        mut source: S,
        checkpoint: &mut Checkpoint,
        mut sink: impl FnMut(&Outcome),
        mut on_source_error: impl FnMut(String),
    ) -> Result<ScanSummary, String> {
        let started = Instant::now();
        let chunk_size = self.chunk.max(1);
        let mut summary = ScanSummary::default();
        let mut pending: Vec<PendingItem> = Vec::new();
        let mut index = 0usize;

        loop {
            if self.limit_reached(&summary, pending.len()) {
                summary.interrupted = true;
                break;
            }
            let Some(item) = source.next() else { break };
            let i = index;
            index += 1;
            summary.seen += 1;
            let item = match item {
                Ok(item) => item,
                Err(e) => {
                    summary.source_errors += 1;
                    on_source_error(e);
                    continue;
                }
            };
            if checkpoint.is_completed(i) {
                summary.skipped_completed += 1;
                continue;
            }
            // Key derivation + index probe is its own timed phase
            // (`cache_lookup_us`), charged to the outcome whether the
            // probe hits (the whole cost of a warm replay) or misses
            // (overhead on top of the fresh analysis).
            let mut lookup_us = 0u64;
            let key = match self.cache.as_deref_mut() {
                Some(cache) => {
                    let sp_lookup = telemetry::span("store.cache_lookup");
                    let key = cache_key(&item.bytecode, &self.analysis);
                    let hit = cache.get(&key);
                    lookup_us = sp_lookup.finish_us();
                    if let Some(hit) = hit {
                        let mut status = hit.status;
                        stamp_cache_lookup(&mut status, lookup_us);
                        let outcome = Outcome {
                            index: i,
                            id: item.id,
                            status,
                            elapsed_ms: hit.elapsed_ms,
                        };
                        checkpoint.record(&outcome)?;
                        sink(&outcome);
                        summary.cache_hits += 1;
                        continue;
                    }
                    Some(key)
                }
                None => None,
            };
            pending.push((i, item.id, item.bytecode, key, lookup_us));
            if pending.len() >= chunk_size {
                self.flush(&mut pending, checkpoint, &mut summary, &mut sink)?;
            }
        }
        if !pending.is_empty() {
            self.flush(&mut pending, checkpoint, &mut summary, &mut sink)?;
        }
        if let Some(cache) = self.cache.as_deref_mut() {
            cache.persist_stats()?;
        }
        summary.wall_ms = started.elapsed().as_millis() as u64;
        Ok(summary)
    }

    /// True when this invocation's record budget is exhausted — counting
    /// queued misses, so the scan stops pulling exactly at the limit
    /// instead of overshooting by a chunk.
    fn limit_reached(&self, summary: &ScanSummary, pending: usize) -> bool {
        match self.limit {
            Some(limit) => summary.recorded() + pending >= limit,
            None => false,
        }
    }

    /// Runs the queued misses through the driver, then records, caches,
    /// and emits each outcome at its global index.
    fn flush(
        &mut self,
        pending: &mut Vec<PendingItem>,
        checkpoint: &mut Checkpoint,
        summary: &mut ScanSummary,
        sink: &mut impl FnMut(&Outcome),
    ) -> Result<(), String> {
        let batch: Vec<(usize, Option<CacheKey>, u64)> =
            pending.iter().map(|(i, _, _, key, us)| (*i, *key, *us)).collect();
        let items: Vec<(String, Vec<u8>)> = std::mem::take(pending)
            .into_iter()
            .map(|(_, id, code, _, _)| (id, code))
            .collect();
        let report = driver::analyze_batch(items, &self.driver, &self.analysis);
        debug_assert_eq!(report.outcomes.len(), batch.len());
        for (mut outcome, (global, key, lookup_us)) in report.outcomes.into_iter().zip(batch) {
            outcome.index = global;
            if key.is_some() {
                stamp_cache_lookup(&mut outcome.status, lookup_us);
            }
            checkpoint.record(&outcome)?;
            if let (Some(cache), Some(key)) = (self.cache.as_deref_mut(), key) {
                cache.put(
                    key,
                    CachedResult {
                        status: outcome.status.clone(),
                        elapsed_ms: outcome.elapsed_ms,
                    },
                )?;
            }
            sink(&outcome);
            summary.fresh += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Manifest;
    use crate::source::MemorySource;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ethainter-scan-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Trivial single-opcode contracts: fast to analyze, distinct keys.
    fn items(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n).map(|i| (format!("c{i}"), vec![0x60, i as u8, 0x00])).collect()
    }

    #[test]
    fn scan_records_every_contract_once() {
        let dir = tmp_dir("all");
        let mut cp =
            Checkpoint::create(&dir, Manifest::new(&ethainter::Config::default(), "m".into()))
                .unwrap();
        let mut scanner = Scanner { chunk: 3, ..Scanner::default() };
        let mut emitted = Vec::new();
        let summary = scanner
            .scan(MemorySource::new(items(8)), &mut cp, |o| emitted.push(o.index), |_| {})
            .unwrap();
        assert_eq!(summary.seen, 8);
        assert_eq!(summary.fresh, 8);
        assert_eq!(summary.recorded(), 8);
        assert!(!summary.interrupted);
        assert_eq!(cp.completed_count(), 8);
        emitted.sort_unstable();
        assert_eq!(emitted, (0..8).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn limit_interrupts_exactly_and_resume_finishes() {
        let dir = tmp_dir("limit");
        let manifest = Manifest::new(&ethainter::Config::default(), "m".into());
        {
            let mut cp = Checkpoint::create(&dir, manifest.clone()).unwrap();
            let mut scanner =
                Scanner { chunk: 2, limit: Some(5), ..Scanner::default() };
            let summary = scanner
                .scan(MemorySource::new(items(12)), &mut cp, |_| {}, |_| {})
                .unwrap();
            assert!(summary.interrupted);
            assert_eq!(summary.recorded(), 5, "stops exactly at the limit");
        }
        let mut cp = Checkpoint::resume(&dir, &manifest).unwrap();
        assert_eq!(cp.preloaded(), 5);
        let mut scanner = Scanner { chunk: 4, ..Scanner::default() };
        let summary = scanner
            .scan(MemorySource::new(items(12)), &mut cp, |_| {}, |_| {})
            .unwrap();
        assert_eq!(summary.skipped_completed, 5);
        assert_eq!(summary.fresh, 7);
        assert_eq!(cp.completed_count(), 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_rescan_is_all_cache_hits() {
        let cache_dir = tmp_dir("warm-cache");
        let mut cache = ResultStore::open(&cache_dir).unwrap();
        let manifest = Manifest::new(&ethainter::Config::default(), "m".into());

        let cold_dir = tmp_dir("warm-cold");
        let mut cp = Checkpoint::create(&cold_dir, manifest.clone()).unwrap();
        let mut scanner =
            Scanner { chunk: 4, cache: Some(&mut cache), ..Scanner::default() };
        let cold = scanner
            .scan(MemorySource::new(items(10)), &mut cp, |_| {}, |_| {})
            .unwrap();
        assert_eq!(cold.fresh, 10);
        assert_eq!(cold.cache_hits, 0);
        let cold_merged = cp.merged_verdicts_jsonl();

        let warm_dir = tmp_dir("warm-warm");
        let mut cp2 = Checkpoint::create(&warm_dir, manifest).unwrap();
        let mut scanner =
            Scanner { chunk: 4, cache: Some(&mut cache), ..Scanner::default() };
        let warm = scanner
            .scan(MemorySource::new(items(10)), &mut cp2, |_| {}, |_| {})
            .unwrap();
        assert_eq!(warm.fresh, 0, "warm re-run performs zero fresh analyses");
        assert_eq!(warm.cache_hits, 10);
        assert_eq!(cp2.merged_verdicts_jsonl(), cold_merged, "hits replay identical verdicts");

        let stats = cache.stats();
        assert_eq!(stats.total_hits, 10);
        assert_eq!(stats.total_misses, 10);
        for d in [cache_dir, cold_dir, warm_dir] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn source_errors_are_counted_not_fatal() {
        struct Flaky(usize);
        impl Iterator for Flaky {
            type Item = Result<crate::source::SourceContract, String>;
            fn next(&mut self) -> Option<Self::Item> {
                self.0 += 1;
                match self.0 {
                    1 => Some(Ok(crate::source::SourceContract {
                        id: "ok".into(),
                        bytecode: vec![0x00],
                    })),
                    2 => Some(Err("unreadable".into())),
                    _ => None,
                }
            }
        }
        impl ContractSource for Flaky {
            fn descriptor(&self) -> String {
                "flaky".into()
            }
        }
        let dir = tmp_dir("flaky");
        let mut cp =
            Checkpoint::create(&dir, Manifest::new(&ethainter::Config::default(), "f".into()))
                .unwrap();
        let mut errors = Vec::new();
        let summary = Scanner::default()
            .scan(Flaky(0), &mut cp, |_| {}, |e| errors.push(e))
            .unwrap();
        assert_eq!(summary.source_errors, 1);
        assert_eq!(summary.fresh, 1);
        assert_eq!(errors, vec!["unreadable".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
