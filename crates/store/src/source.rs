//! Streaming corpus sources: iterators of `(id, bytecode)` contracts
//! with a stable textual descriptor, so the driver can scan populations
//! larger than RAM and a scan manifest can name its input precisely
//! enough for `--resume` to refuse a mismatched one.
//!
//! Adapters:
//!
//! - [`MemorySource`] — an in-memory list (CLI file arguments, tests);
//! - [`CorpusSource`] — the generator, streamed via [`corpus::stream`]
//!   (one contract resident at a time);
//! - [`HexDirSource`] — a directory of `.hex`/`.bin` files, read lazily
//!   in sorted order;
//! - [`JsonlManifestSource`] — a JSONL manifest of
//!   `{"id": …, "bytecode": "0x…"}` records, read line by line;
//! - [`ChainedSource`] — concatenation of the above (files + corpus in
//!   one scan).

use corpus::PopulationConfig;
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// One contract pulled from a source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceContract {
    /// Stable identifier (file name, `family#id`, manifest id…).
    pub id: String,
    /// Runtime bytecode.
    pub bytecode: Vec<u8>,
}

/// A streaming source of contracts. `Iterator` supplies the stream
/// (yielding `Err` for unreadable items without aborting the scan
/// decision upstream); [`ContractSource::descriptor`] supplies a stable
/// identity recorded in scan manifests — two invocations that would
/// yield different streams must produce different descriptors.
pub trait ContractSource: Iterator<Item = Result<SourceContract, String>> {
    /// Stable textual identity of this source's stream.
    fn descriptor(&self) -> String;
}

// ---------------------------------------------------------------------------
// In-memory
// ---------------------------------------------------------------------------

/// A source over an in-memory list. The descriptor hashes ids and
/// bytecodes, so editing any input file between a scan and its resume is
/// detected.
pub struct MemorySource {
    items: std::vec::IntoIter<SourceContract>,
    descriptor: String,
}

impl MemorySource {
    /// Wraps `(id, bytecode)` pairs.
    pub fn new(items: Vec<(String, Vec<u8>)>) -> MemorySource {
        let mut material = Vec::new();
        for (id, code) in &items {
            material.extend_from_slice(id.as_bytes());
            material.push(0);
            material.extend_from_slice(code);
            material.push(0);
        }
        let digest = evm::keccak256(&material);
        let hex: String = digest.iter().take(8).map(|b| format!("{b:02x}")).collect();
        let descriptor = format!("mem:{}:{hex}", items.len());
        let items = items
            .into_iter()
            .map(|(id, bytecode)| SourceContract { id, bytecode })
            .collect::<Vec<_>>()
            .into_iter();
        MemorySource { items, descriptor }
    }
}

impl Iterator for MemorySource {
    type Item = Result<SourceContract, String>;
    fn next(&mut self) -> Option<Self::Item> {
        self.items.next().map(Ok)
    }
}

impl ContractSource for MemorySource {
    fn descriptor(&self) -> String {
        self.descriptor.clone()
    }
}

// ---------------------------------------------------------------------------
// Generated corpus
// ---------------------------------------------------------------------------

/// The corpus generator as a streaming source: contracts are produced
/// one at a time by [`corpus::stream`], so population size only bounds
/// the stream length, not resident memory.
pub struct CorpusSource {
    stream: std::iter::Take<corpus::PopulationStream>,
    cfg: PopulationConfig,
}

impl CorpusSource {
    /// Streams `cfg.size` unique contracts for `cfg`.
    pub fn new(cfg: PopulationConfig) -> CorpusSource {
        CorpusSource { stream: corpus::stream(&cfg).take(cfg.size), cfg }
    }
}

impl Iterator for CorpusSource {
    type Item = Result<SourceContract, String>;
    fn next(&mut self) -> Option<Self::Item> {
        self.stream.next().map(|c| {
            Ok(SourceContract { id: format!("{}#{}", c.family, c.id), bytecode: c.bytecode })
        })
    }
}

impl ContractSource for CorpusSource {
    fn descriptor(&self) -> String {
        // The scale suffix appears only for non-default scales, so
        // descriptors of pre-existing (small) populations — and hence
        // their scan manifests — stay byte-identical for `--resume`.
        match self.cfg.scale {
            corpus::Scale::Small => {
                format!("corpus:size={}:seed={}", self.cfg.size, self.cfg.seed)
            }
            scale => format!(
                "corpus:size={}:seed={}:scale={scale:?}",
                self.cfg.size, self.cfg.seed
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Directory of hex files
// ---------------------------------------------------------------------------

/// A directory of `.hex`/`.bin` bytecode files, streamed in sorted
/// (deterministic) file-name order; each file is read only when the
/// iterator reaches it.
pub struct HexDirSource {
    dir: PathBuf,
    files: std::vec::IntoIter<PathBuf>,
    count: usize,
}

impl HexDirSource {
    /// Lists `dir` (non-recursively) for `.hex`/`.bin` files.
    pub fn new(dir: impl AsRef<Path>) -> Result<HexDirSource, String> {
        let dir = dir.as_ref().to_path_buf();
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| format!("reading {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("hex") | Some("bin")
                )
            })
            .collect();
        files.sort();
        let count = files.len();
        Ok(HexDirSource { dir, files: files.into_iter(), count })
    }
}

impl Iterator for HexDirSource {
    type Item = Result<SourceContract, String>;
    fn next(&mut self) -> Option<Self::Item> {
        let path = self.files.next()?;
        let id = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        Some(
            std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))
                .and_then(|text| parse_hex(text.trim()))
                .map(|bytecode| SourceContract { id, bytecode }),
        )
    }
}

impl ContractSource for HexDirSource {
    fn descriptor(&self) -> String {
        format!("hexdir:{}:{}", self.dir.display(), self.count)
    }
}

// ---------------------------------------------------------------------------
// JSONL manifest
// ---------------------------------------------------------------------------

/// A JSONL manifest streamed line by line: each record is
/// `{"id": "...", "bytecode": "0x..."}`. Blank lines are skipped; a
/// malformed line yields one `Err` item and the stream continues.
pub struct JsonlManifestSource {
    path: PathBuf,
    lines: std::io::Lines<std::io::BufReader<std::fs::File>>,
    line_no: usize,
}

#[derive(serde::Deserialize)]
struct ManifestRecord {
    id: String,
    bytecode: String,
}

impl JsonlManifestSource {
    /// Opens the manifest for streaming.
    pub fn new(path: impl AsRef<Path>) -> Result<JsonlManifestSource, String> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::open(&path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        Ok(JsonlManifestSource {
            path,
            lines: std::io::BufReader::new(file).lines(),
            line_no: 0,
        })
    }
}

impl Iterator for JsonlManifestSource {
    type Item = Result<SourceContract, String>;
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => {
                    return Some(Err(format!("reading {}: {e}", self.path.display())))
                }
            };
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            return Some(
                serde_json::from_str::<ManifestRecord>(&line)
                    .map_err(|e| {
                        format!("{} line {}: {e}", self.path.display(), self.line_no)
                    })
                    .and_then(|r| {
                        parse_hex(&r.bytecode)
                            .map(|bytecode| SourceContract { id: r.id, bytecode })
                    }),
            );
        }
    }
}

impl ContractSource for JsonlManifestSource {
    fn descriptor(&self) -> String {
        format!("jsonl:{}", self.path.display())
    }
}

// ---------------------------------------------------------------------------
// Concatenation
// ---------------------------------------------------------------------------

/// Concatenates sources, streaming each to exhaustion in order (e.g.
/// explicit files followed by a generated corpus).
pub struct ChainedSource {
    sources: Vec<Box<dyn ContractSource>>,
    current: usize,
}

impl ChainedSource {
    /// Chains `sources` in order.
    pub fn new(sources: Vec<Box<dyn ContractSource>>) -> ChainedSource {
        ChainedSource { sources, current: 0 }
    }
}

impl Iterator for ChainedSource {
    type Item = Result<SourceContract, String>;
    fn next(&mut self) -> Option<Self::Item> {
        while self.current < self.sources.len() {
            match self.sources[self.current].next() {
                Some(item) => return Some(item),
                None => self.current += 1,
            }
        }
        None
    }
}

impl ContractSource for ChainedSource {
    fn descriptor(&self) -> String {
        self.sources.iter().map(|s| s.descriptor()).collect::<Vec<_>>().join("+")
    }
}

/// Decodes hex bytecode with an optional `0x` prefix.
pub fn parse_hex(text: &str) -> Result<Vec<u8>, String> {
    let hexish = text.strip_prefix("0x").unwrap_or(text);
    if !hexish.len().is_multiple_of(2) {
        return Err("odd-length hex bytecode".into());
    }
    (0..hexish.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&hexish[i..i + 2], 16)
                .map_err(|e| format!("bad hex bytecode: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ethainter-source-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_source_streams_and_fingerprints() {
        let a = MemorySource::new(vec![("x".into(), vec![1, 2])]);
        let b = MemorySource::new(vec![("x".into(), vec![1, 3])]);
        assert_ne!(a.descriptor(), b.descriptor(), "bytecode edits change the descriptor");
        let items: Vec<_> = a.map(|r| r.unwrap()).collect();
        assert_eq!(items, vec![SourceContract { id: "x".into(), bytecode: vec![1, 2] }]);
    }

    #[test]
    fn corpus_source_matches_generate() {
        let cfg = PopulationConfig { size: 12, seed: 5, ..Default::default() };
        let pop = corpus::Population::generate(&cfg);
        let streamed: Vec<_> = CorpusSource::new(cfg).map(|r| r.unwrap()).collect();
        assert_eq!(streamed.len(), 12);
        for (s, c) in streamed.iter().zip(&pop.contracts) {
            assert_eq!(s.bytecode, c.bytecode);
            assert_eq!(s.id, format!("{}#{}", c.family, c.id));
        }
    }

    #[test]
    fn hex_dir_source_reads_sorted() {
        let dir = tmp_dir("hexdir");
        std::fs::write(dir.join("b.hex"), "0x6001\n").unwrap();
        std::fs::write(dir.join("a.bin"), "6000").unwrap();
        std::fs::write(dir.join("ignored.txt"), "zz").unwrap();
        let src = HexDirSource::new(&dir).unwrap();
        assert!(src.descriptor().contains(":2"));
        let items: Vec<_> = src.map(|r| r.unwrap()).collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].id, "a.bin");
        assert_eq!(items[0].bytecode, vec![0x60, 0x00]);
        assert_eq!(items[1].id, "b.hex");
        assert_eq!(items[1].bytecode, vec![0x60, 0x01]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_manifest_streams_and_reports_bad_lines() {
        let dir = tmp_dir("jsonl");
        let path = dir.join("manifest.jsonl");
        std::fs::write(
            &path,
            "{\"id\":\"one\",\"bytecode\":\"0x6000\"}\n\nnot json\n{\"id\":\"two\",\"bytecode\":\"6001\"}\n",
        )
        .unwrap();
        let src = JsonlManifestSource::new(&path).unwrap();
        let items: Vec<_> = src.collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_ref().unwrap().id, "one");
        assert!(items[1].is_err());
        assert_eq!(items[2].as_ref().unwrap().bytecode, vec![0x60, 0x01]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chained_source_concatenates_and_joins_descriptors() {
        let a = MemorySource::new(vec![("a".into(), vec![0])]);
        let b = MemorySource::new(vec![("b".into(), vec![1])]);
        let chained = ChainedSource::new(vec![Box::new(a), Box::new(b)]);
        assert!(chained.descriptor().contains('+'));
        let ids: Vec<String> = chained.map(|r| r.unwrap().id).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }
}
