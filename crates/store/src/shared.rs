//! A thread-safe, single-flight view of the result cache.
//!
//! [`ResultStore`] is single-writer by construction (`&mut self` on
//! every lookup, one append-only segment writer). Server mode needs the
//! opposite shape: many worker threads answering overlapping requests
//! out of **one** cache directory. [`SharedCache`] wraps the store in a
//! mutex and adds the property the concurrency actually requires:
//! **single-flight computation**. When N threads ask for the same key
//! at once, exactly one runs the analysis; the rest block on a condvar
//! and are answered from the cache the moment the runner inserts — so a
//! burst of identical submissions costs one fresh analysis, not N.
//!
//! The analysis itself runs *outside* the lock: only the index probe,
//! the in-flight claim, and the final insert are serialized, so
//! distinct keys analyze concurrently with no coordination beyond the
//! brief map accesses.
//!
//! Hit/miss accounting flows through the wrapped store unchanged, which
//! means the global telemetry counters
//! (`ethainter_cache_{hits,misses}_total`) tick live under concurrent
//! load — the `/metrics` endpoint reports cache temperature in real
//! time, and a waiter answered by a runner's insert is correctly
//! counted as a hit.

use crate::cache::{CacheKey, CacheStats, CachedResult, ResultStore};
use std::collections::HashSet;
use std::path::Path;
use std::sync::{Condvar, Mutex, MutexGuard};

struct Inner {
    store: ResultStore,
    /// Keys currently being computed by some thread. An entry here is a
    /// promise that the runner will insert (or give up) and notify.
    in_flight: HashSet<CacheKey>,
}

/// A mutex-protected [`ResultStore`] with single-flight
/// [`get_or_compute`](SharedCache::get_or_compute) — the cache shape
/// `ethainter serve` workers share.
pub struct SharedCache {
    inner: Mutex<Inner>,
    woken: Condvar,
}

/// What [`SharedCache::get_or_compute`] did for one request.
#[derive(Debug)]
pub struct GetOrCompute {
    /// The result — cached or freshly computed.
    pub result: CachedResult,
    /// True when *this* call ran the computation; false for a cache hit
    /// (including hits satisfied by another thread's concurrent run).
    pub fresh: bool,
    /// Set when the fresh result could not be appended to the segment.
    /// The result itself is still valid — persistence failure must not
    /// fail the request that computed it.
    pub put_error: Option<String>,
}

/// Removes the in-flight claim even if the computation unwinds, so a
/// panicking analysis can never strand waiters on the condvar.
struct InFlightClaim<'a> {
    cache: &'a SharedCache,
    key: CacheKey,
}

impl Drop for InFlightClaim<'_> {
    fn drop(&mut self) {
        let mut g = self.cache.lock();
        g.in_flight.remove(&self.key);
        self.cache.woken.notify_all();
    }
}

impl SharedCache {
    /// Opens (creating if needed) the cache directory, exactly like
    /// [`ResultStore::open`].
    pub fn open(dir: impl AsRef<Path>) -> Result<SharedCache, String> {
        Ok(SharedCache {
            inner: Mutex::new(Inner {
                store: ResultStore::open(dir)?,
                in_flight: HashSet::new(),
            }),
            woken: Condvar::new(),
        })
    }

    /// Locks the inner state, shrugging off poisoning: the store is only
    /// mutated through complete `get`/`put` calls, and a worker panic
    /// (already contained by the driver sandbox) must not take the cache
    /// down for every other request.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A plain counted lookup (no single-flight claim).
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedResult> {
        self.lock().store.get(key)
    }

    /// A plain insert (no single-flight bookkeeping). Nondeterministic
    /// statuses are dropped, as in [`ResultStore::put`].
    pub fn insert(&self, key: CacheKey, result: CachedResult) -> Result<(), String> {
        self.lock().store.put(key, result)
    }

    /// Answers `key` from the cache, or runs `compute` **exactly once**
    /// across all concurrent callers with the same key.
    ///
    /// The first thread to miss claims the key and computes outside the
    /// lock; threads arriving meanwhile block until the runner inserts,
    /// then re-probe and hit. If the computed status is
    /// nondeterministic (timeout/panic — never cached), waiters re-probe,
    /// still miss, and the next one becomes a runner: retry semantics,
    /// matching [`ResultStore::put`]'s refusal to replay such results.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> CachedResult,
    ) -> GetOrCompute {
        {
            let mut g = self.lock();
            loop {
                if let Some(hit) = g.store.get(&key) {
                    return GetOrCompute { result: hit, fresh: false, put_error: None };
                }
                if g.in_flight.insert(key) {
                    break; // we are the runner; the miss above is ours
                }
                // Another thread is computing this key: wait for its
                // insert, then re-probe. (The extra miss a waiter counts
                // before sleeping is honest — it did probe and miss.)
                g = self.woken.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
        let claim = InFlightClaim { cache: self, key };
        let result = compute();
        let put_error = self.lock().store.put(key, result.clone()).err();
        drop(claim); // release + notify only after the insert is visible
        GetOrCompute { result, fresh: true, put_error }
    }

    /// Current statistics of the wrapped store.
    pub fn stats(&self) -> CacheStats {
        self.lock().store.stats()
    }

    /// Per-status entry counts (`analyzed` / `decompile_failed`).
    pub fn status_breakdown(&self) -> (usize, usize) {
        self.lock().store.status_breakdown()
    }

    /// Distinct keys in the index.
    pub fn len(&self) -> usize {
        self.lock().store.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lock().store.is_empty()
    }

    /// Folds session counters into the directory's persistent stats —
    /// the graceful-shutdown flush.
    pub fn persist_stats(&self) -> Result<(), String> {
        self.lock().store.persist_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::cache_key;
    use driver::Status;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ethainter-shared-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn analyzed(findings: usize) -> Status {
        Status::Analyzed {
            findings,
            composite: 0,
            blocks: 1,
            stmts: 1,
            rounds: 1,
            facts: ethainter::FactCounts::default(),
            lint: Vec::new(),
            timings: ethainter::PhaseTimings::default(),
            witness: None,
        }
    }

    #[test]
    fn second_call_hits_without_recomputing() {
        let dir = tmp_dir("twice");
        let cache = SharedCache::open(&dir).unwrap();
        let key = cache_key(b"\x00", &ethainter::Config::default());
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            CachedResult { status: analyzed(2), elapsed_ms: 5 }
        };
        let first = cache.get_or_compute(key, compute);
        assert!(first.fresh);
        assert!(first.put_error.is_none());
        let second = cache.get_or_compute(key, || unreachable!("must hit"));
        assert!(!second.fresh);
        assert_eq!(second.result.status, analyzed(2));
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nondeterministic_results_are_returned_but_not_replayed() {
        let dir = tmp_dir("nondet");
        let cache = SharedCache::open(&dir).unwrap();
        let key = cache_key(b"\x01", &ethainter::Config::default());
        let r = cache.get_or_compute(key, || CachedResult {
            status: Status::TimedOut,
            elapsed_ms: 1,
        });
        assert!(r.fresh);
        assert_eq!(r.result.status, Status::TimedOut);
        // The next caller recomputes — a timeout must be retried.
        let r2 = cache.get_or_compute(key, || CachedResult {
            status: analyzed(0),
            elapsed_ms: 2,
        });
        assert!(r2.fresh, "timeouts are never replayed from cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_compute_does_not_strand_waiters() {
        let dir = tmp_dir("panic");
        let cache = Arc::new(SharedCache::open(&dir).unwrap());
        let key = cache_key(b"\x02", &ethainter::Config::default());
        let c = Arc::clone(&cache);
        let t = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.get_or_compute(key, || panic!("analysis blew up"))
            }));
        });
        t.join().unwrap();
        // The claim guard released the key — this call must not block.
        let r = cache.get_or_compute(key, || CachedResult {
            status: analyzed(1),
            elapsed_ms: 3,
        });
        assert!(r.fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
