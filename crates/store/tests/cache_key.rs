//! Cache-key stability properties: equal (bytecode, config) pairs
//! always key identically, and every single-switch config change —
//! including `optimize_ir` and `range_guards` — moves to a different
//! key, so no stale verdict can ever be replayed for a config it was
//! not computed under.

use ethainter::{Config, Engine, StorageModel};
use proptest::collection::vec;
use proptest::prelude::*;
use store::cache_key;

fn arb_config() -> impl Strategy<Value = Config> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(guards, storage, conservative, freeze, opt, range, sparse, witness)| Config {
            guard_modeling: guards,
            storage_taint: storage,
            storage_model: if conservative {
                StorageModel::Conservative
            } else {
                StorageModel::Precise
            },
            freeze_guards: freeze,
            optimize_ir: opt,
            range_guards: range,
            engine: if sparse { Engine::Sparse } else { Engine::Dense },
            witness,
        })
}

/// Every config that differs from `cfg` in exactly one field.
fn single_flips(cfg: &Config) -> Vec<(&'static str, Config)> {
    vec![
        ("guard_modeling", Config { guard_modeling: !cfg.guard_modeling, ..*cfg }),
        ("storage_taint", Config { storage_taint: !cfg.storage_taint, ..*cfg }),
        (
            "storage_model",
            Config {
                storage_model: match cfg.storage_model {
                    StorageModel::Precise => StorageModel::Conservative,
                    StorageModel::Conservative => StorageModel::Precise,
                },
                ..*cfg
            },
        ),
        ("freeze_guards", Config { freeze_guards: !cfg.freeze_guards, ..*cfg }),
        ("optimize_ir", Config { optimize_ir: !cfg.optimize_ir, ..*cfg }),
        ("range_guards", Config { range_guards: !cfg.range_guards, ..*cfg }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Determinism: an independently reconstructed (bytecode, config)
    /// pair produces the identical key, and the hex form round-trips.
    #[test]
    fn equal_inputs_produce_equal_keys(
        code in vec(any::<u8>(), 0..256),
        cfg in arb_config(),
    ) {
        let rebuilt = Config { ..cfg };
        let k1 = cache_key(&code, &cfg);
        let k2 = cache_key(&code.clone(), &rebuilt);
        prop_assert_eq!(k1, k2);
        prop_assert_eq!(store::CacheKey::from_hex(&k1.to_hex()).unwrap(), k1);
        prop_assert_eq!(cfg.fingerprint(), rebuilt.fingerprint());
    }

    /// Sensitivity: flipping any *single* config field changes the key
    /// (for the same bytecode), and all seven keys — the original plus
    /// its six single-field neighbours — are pairwise distinct.
    #[test]
    fn any_single_flag_flip_changes_the_key(
        code in vec(any::<u8>(), 0..256),
        cfg in arb_config(),
    ) {
        let base = cache_key(&code, &cfg);
        let mut keys = vec![("base", base)];
        for (field, flipped) in single_flips(&cfg) {
            let k = cache_key(&code, &flipped);
            prop_assert_ne!(k, base, "flipping {} must change the key", field);
            prop_assert_ne!(
                flipped.fingerprint(),
                cfg.fingerprint(),
                "flipping {} must change the fingerprint",
                field
            );
            keys.push((field, k));
        }
        for (i, (fa, ka)) in keys.iter().enumerate() {
            for (fb, kb) in keys.iter().skip(i + 1) {
                prop_assert_ne!(ka, kb, "{} and {} collide", fa, fb);
            }
        }
    }

    /// The bytecode is part of the address: perturbing one byte (or
    /// appending one) changes the key under the same config.
    #[test]
    fn bytecode_changes_change_the_key(
        code in vec(any::<u8>(), 1..256),
        cfg in arb_config(),
        at in any::<usize>(),
    ) {
        let base = cache_key(&code, &cfg);
        let mut flipped = code.clone();
        let i = at % flipped.len();
        flipped[i] ^= 0x01;
        prop_assert_ne!(cache_key(&flipped, &cfg), base);
        let mut extended = code.clone();
        extended.push(0x00);
        prop_assert_ne!(cache_key(&extended, &cfg), base);
    }

    /// The one deliberate *insensitivity*: the fixpoint engine cannot
    /// change verdicts (differential guarantee), so flipping it must NOT
    /// move the key — a cache populated under one engine stays warm
    /// after `--engine dense` ⇄ `--engine sparse`.
    #[test]
    fn engine_flip_keeps_the_key(
        code in vec(any::<u8>(), 0..256),
        cfg in arb_config(),
    ) {
        let other = Config {
            engine: match cfg.engine {
                Engine::Dense => Engine::Sparse,
                Engine::Sparse => Engine::Dense,
            },
            ..cfg
        };
        prop_assert_eq!(cache_key(&code, &other), cache_key(&code, &cfg));
        prop_assert_eq!(other.fingerprint(), cfg.fingerprint());
    }

    /// The other deliberate insensitivity: `witness` only attaches
    /// provenance riders (which the store strips before persisting
    /// anything), so flipping it must NOT move the key — a cache
    /// populated without witnesses stays warm when `--witness` turns on.
    #[test]
    fn witness_flip_keeps_the_key(
        code in vec(any::<u8>(), 0..256),
        cfg in arb_config(),
    ) {
        let other = Config { witness: !cfg.witness, ..cfg };
        prop_assert_eq!(cache_key(&code, &other), cache_key(&code, &cfg));
        prop_assert_eq!(other.fingerprint(), cfg.fingerprint());
    }
}
