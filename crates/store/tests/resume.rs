//! The ISSUE acceptance criteria, end to end over a ≥500-contract
//! generated population:
//!
//! - a **kill-and-resume** scan (interrupted deterministically via the
//!   record limit, then resumed from the checkpoint directory) merges
//!   to byte-identical JSONL verdicts vs. an uninterrupted cold run;
//! - a **warm re-run** of the unchanged scan against the populated
//!   cache performs zero fresh analyses — every contract is a cache
//!   hit, and the store reports a 100% session hit rate.

use corpus::PopulationConfig;
use store::{Checkpoint, ContractSource, Manifest, ResultStore, Scanner};

const POPULATION: usize = 500;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ethainter-resume-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn population() -> PopulationConfig {
    PopulationConfig { size: POPULATION, seed: 0xC0FFEE, ..PopulationConfig::default() }
}

fn source() -> store::CorpusSource {
    store::CorpusSource::new(population())
}

fn scanner(cache: Option<&mut ResultStore>) -> Scanner<'_> {
    Scanner {
        // Generous budget so no template times out in debug builds —
        // timeouts are non-deterministic and would break byte-identity.
        driver: driver::DriverConfig { jobs: 0, timeout: std::time::Duration::from_secs(300) },
        chunk: 64,
        cache,
        ..Scanner::default()
    }
}

#[test]
fn interrupted_then_resumed_scan_matches_cold_run_over_500_contracts() {
    let manifest = Manifest::new(&ethainter::Config::default(), source().descriptor());

    // Uninterrupted cold run — the ground truth, cache enabled so the
    // warm-path assertions below run against a fully populated store.
    let cache_dir = tmp_dir("cache");
    let mut cache = ResultStore::open(&cache_dir).unwrap();
    let cold_dir = tmp_dir("cold");
    let mut cold_cp = Checkpoint::create(&cold_dir, manifest.clone()).unwrap();
    let cold = scanner(Some(&mut cache))
        .scan(source(), &mut cold_cp, |_| {}, |_| {})
        .unwrap();
    assert_eq!(cold.seen, POPULATION);
    assert_eq!(cold.fresh, POPULATION, "cold run analyzes everything");
    assert_eq!(cold.cache_hits, 0);
    let cold_merged = cold_cp.merged_verdicts_jsonl();
    assert_eq!(cold_merged.lines().count(), POPULATION);

    // Interrupted run: no cache (every outcome must be recomputed, so
    // identity is a property of the analysis, not of replay), killed
    // deterministically at 200 records.
    let kill_dir = tmp_dir("killed");
    {
        let mut cp = Checkpoint::create(&kill_dir, manifest.clone()).unwrap();
        let partial = Scanner { limit: Some(200), ..scanner(None) }
            .scan(source(), &mut cp, |_| {}, |_| {})
            .unwrap();
        assert!(partial.interrupted);
        assert_eq!(partial.recorded(), 200, "limit interrupts exactly");
        // The checkpoint object is dropped here mid-scan — the "kill".
    }

    // Resume from the on-disk log alone and finish the stream.
    let mut cp = Checkpoint::resume(&kill_dir, &manifest).unwrap();
    assert_eq!(cp.preloaded(), 200, "resume replays the recorded prefix");
    let resumed = scanner(None).scan(source(), &mut cp, |_| {}, |_| {}).unwrap();
    assert_eq!(resumed.skipped_completed, 200, "completed work is not redone");
    assert_eq!(resumed.fresh, POPULATION - 200);
    assert_eq!(cp.completed_count(), POPULATION);
    assert_eq!(
        cp.merged_verdicts_jsonl(),
        cold_merged,
        "interrupted+resumed merged verdicts are byte-identical to the cold run"
    );

    // Warm re-run of the unchanged scan: zero fresh analyses, 100%
    // session hit rate, and — again — byte-identical merged output.
    let warm_dir = tmp_dir("warm");
    let mut warm_cp = Checkpoint::create(&warm_dir, manifest).unwrap();
    let warm = scanner(Some(&mut cache))
        .scan(source(), &mut warm_cp, |_| {}, |_| {})
        .unwrap();
    assert_eq!(warm.fresh, 0, "warm re-run performs zero fresh analyses");
    assert_eq!(warm.cache_hits, POPULATION, "every contract is a cache hit");
    assert_eq!(warm_cp.merged_verdicts_jsonl(), cold_merged);

    // The scan folds its session counters into the persisted lifetime
    // stats (what `ethainter cache stats` reports): the cold run's 500
    // misses plus the warm run's 500 hits — a 100% hit rate for the
    // warm invocation.
    let stats = cache.stats();
    assert_eq!(stats.entries, POPULATION);
    assert_eq!(stats.total_hits, POPULATION as u64);
    assert_eq!(stats.total_misses, POPULATION as u64);
    assert_eq!(warm.cache_hits, warm.recorded(), "100% hit rate on the warm run");

    for dir in [cache_dir, cold_dir, kill_dir, warm_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn reopened_cache_survives_process_restart() {
    // Simulate a restart: populate the store, drop it, reopen from disk,
    // and warm-scan — the segment index alone must carry the hits.
    let manifest = Manifest::new(&ethainter::Config::default(), "restart".into());
    let cache_dir = tmp_dir("restart-cache");
    let items: Vec<(String, Vec<u8>)> =
        (0..20).map(|i| (format!("c{i}"), vec![0x60, i as u8, 0x00])).collect();

    {
        let mut cache = ResultStore::open(&cache_dir).unwrap();
        let dir = tmp_dir("restart-cold");
        let mut cp = Checkpoint::create(&dir, manifest.clone()).unwrap();
        let summary = scanner(Some(&mut cache))
            .scan(store::MemorySource::new(items.clone()), &mut cp, |_| {}, |_| {})
            .unwrap();
        assert_eq!(summary.fresh, 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut cache = ResultStore::open(&cache_dir).unwrap();
    assert_eq!(cache.len(), 20, "segment replay rebuilds the index");
    let dir = tmp_dir("restart-warm");
    let mut cp = Checkpoint::create(&dir, manifest).unwrap();
    let summary = scanner(Some(&mut cache))
        .scan(store::MemorySource::new(items), &mut cp, |_| {}, |_| {})
        .unwrap();
    assert_eq!(summary.fresh, 0);
    assert_eq!(summary.cache_hits, 20);
    assert_eq!(cache.stats().total_misses, 20, "lifetime counters span the reopen");
    for d in [cache_dir, dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn warm_hits_survive_engine_switch() {
    // `Config::fingerprint()` deliberately excludes `engine`: the dense
    // and sparse fixpoint engines are differentially guaranteed to
    // produce identical verdicts, so a cache populated under one must
    // stay warm under the other (`--engine dense` ⇄ `--engine sparse`
    // never re-analyzes an unchanged corpus).
    let dense = ethainter::Config { engine: ethainter::Engine::Dense, ..Default::default() };
    let sparse = ethainter::Config { engine: ethainter::Engine::Sparse, ..Default::default() };
    let pop = PopulationConfig { size: 40, seed: 0xE1417, ..PopulationConfig::default() };
    let src = || store::CorpusSource::new(pop);

    let cache_dir = tmp_dir("engine-cache");
    let mut cache = ResultStore::open(&cache_dir).unwrap();

    // Populate under the dense engine.
    let dense_dir = tmp_dir("engine-dense");
    let mut cp = Checkpoint::create(&dense_dir, Manifest::new(&dense, src().descriptor())).unwrap();
    let cold = Scanner { analysis: dense, ..scanner(Some(&mut cache)) }
        .scan(src(), &mut cp, |_| {}, |_| {})
        .unwrap();
    assert_eq!(cold.fresh, 40);
    assert_eq!(cold.cache_hits, 0);
    let dense_verdicts = cp.merged_verdicts_jsonl();

    // Re-scan under the sparse engine: zero fresh analyses, and the
    // replayed verdicts are byte-identical.
    let sparse_dir = tmp_dir("engine-sparse");
    let mut cp =
        Checkpoint::create(&sparse_dir, Manifest::new(&sparse, src().descriptor())).unwrap();
    let warm = Scanner { analysis: sparse, ..scanner(Some(&mut cache)) }
        .scan(src(), &mut cp, |_| {}, |_| {})
        .unwrap();
    assert_eq!(warm.fresh, 0, "engine switch must not invalidate the cache");
    assert_eq!(warm.cache_hits, 40);
    assert_eq!(cp.merged_verdicts_jsonl(), dense_verdicts);

    for d in [cache_dir, dense_dir, sparse_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn witness_mode_changes_no_persistent_artifact() {
    // `--witness` attaches provenance riders to live outcomes, but the
    // store strips them (with the timings) before anything persistent:
    // two scans of the same population, one with witnesses and one
    // without, must produce byte-identical merged verdicts AND
    // byte-identical cache segment files. Each scan gets its own cold
    // cache so the segments are written (not replayed) in both runs.
    let plain = ethainter::Config::default();
    let with_witness = ethainter::Config { witness: true, ..Default::default() };
    let pop = PopulationConfig { size: 40, seed: 0x817_AE55, ..PopulationConfig::default() };
    let src = || store::CorpusSource::new(pop);
    // Segment records carry the wall-clock `elapsed_ms` of the original
    // analysis, which legitimately varies between live runs — normalize
    // it so the comparison pins everything the witness flag could have
    // leaked (the status payloads) and nothing it couldn't (the clock).
    let segment = |dir: &std::path::Path| -> String {
        let text = std::fs::read_to_string(dir.join("segment.jsonl")).unwrap();
        text.lines()
            .map(|l| {
                let mut v: serde_json::Value = serde_json::from_str(l).unwrap();
                if let serde_json::Value::Object(fields) = &mut v {
                    for (k, val) in fields.iter_mut() {
                        if k == "elapsed_ms" {
                            *val = serde_json::Value::UInt(0);
                        }
                    }
                }
                serde_json::to_string(&v).unwrap()
            })
            .collect::<Vec<_>>()
            .join("\n")
    };

    let plain_cache_dir = tmp_dir("wit-plain-cache");
    let plain_dir = tmp_dir("wit-plain");
    let mut plain_cache = ResultStore::open(&plain_cache_dir).unwrap();
    let mut cp =
        Checkpoint::create(&plain_dir, Manifest::new(&plain, src().descriptor())).unwrap();
    Scanner { analysis: plain, ..scanner(Some(&mut plain_cache)) }
        .scan(src(), &mut cp, |_| {}, |_| {})
        .unwrap();
    let plain_verdicts = cp.merged_verdicts_jsonl();
    let plain_segment = segment(&plain_cache_dir);

    let wit_cache_dir = tmp_dir("wit-on-cache");
    let wit_dir = tmp_dir("wit-on");
    let mut wit_cache = ResultStore::open(&wit_cache_dir).unwrap();
    let mut cp2 =
        Checkpoint::create(&wit_dir, Manifest::new(&with_witness, src().descriptor())).unwrap();
    let mut saw_witness = false;
    Scanner { analysis: with_witness, ..scanner(Some(&mut wit_cache)) }
        .scan(
            src(),
            &mut cp2,
            |o| {
                if let driver::Status::Analyzed { witness: Some(w), findings, .. } = &o.status {
                    saw_witness = true;
                    assert_eq!(w.len(), *findings, "one witness per finding");
                }
            },
            |_| {},
        )
        .unwrap();
    assert!(saw_witness, "the population must produce at least one witnessed finding");

    assert_eq!(cp2.merged_verdicts_jsonl(), plain_verdicts, "merged.jsonl is witness-blind");
    assert_eq!(segment(&wit_cache_dir), plain_segment, "cache segments are witness-blind");

    for d in [plain_cache_dir, plain_dir, wit_cache_dir, wit_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
