//! Concurrent cache sharing: many client threads submitting
//! overlapping bytecodes against **one** cache directory must produce
//! exactly one fresh analysis per unique key, with every duplicate
//! answered from the shared cache and the global
//! `ethainter_cache_hits_total` counter incrementing live.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use store::{cache_key, CachedResult, SharedCache};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ethainter-conc-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Real analyses through the real pipeline: 8 threads × 12 requests
/// over 4 unique bytecodes, all racing from a barrier. Exactly 4 fresh
/// analyses may happen, every thread must observe identical verdicts,
/// and the hit counter must have ticked for every deduplicated request.
#[test]
fn overlapping_submissions_compute_each_unique_key_once() {
    const THREADS: usize = 8;
    const UNIQUE: usize = 4;

    let dir = tmp_dir("overlap");
    let cache = Arc::new(SharedCache::open(&dir).unwrap());
    let config = ethainter::Config::default();

    // Distinct single-function contracts — tiny but real bytecode.
    let bytecodes: Vec<Vec<u8>> = (0..UNIQUE)
        .map(|i| {
            let src = format!(
                "contract C{i} {{ uint v; function set(uint a) public {{ v = a + 0x{i:x}; }} }}"
            );
            minisol::compile_source(&src).unwrap().bytecode
        })
        .collect();

    let fresh_runs: Arc<Mutex<HashMap<usize, usize>>> = Arc::default();
    let hits_before =
        telemetry::metrics::counter("ethainter_cache_hits_total").get();
    let barrier = Arc::new(Barrier::new(THREADS));
    let total_requests = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let bytecodes = bytecodes.clone();
        let fresh_runs = Arc::clone(&fresh_runs);
        let barrier = Arc::clone(&barrier);
        let total_requests = Arc::clone(&total_requests);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut observed = Vec::new();
            // Each thread walks the keys three times, phase-shifted so
            // every thread contends on every key.
            for round in 0..3 {
                for i in 0..UNIQUE {
                    let which = (i + t + round) % UNIQUE;
                    let code = &bytecodes[which];
                    let key = cache_key(code, &config);
                    let out = cache.get_or_compute(key, || {
                        fresh_runs.lock().unwrap().entry(which).and_modify(|n| *n += 1).or_insert(1);
                        let status = driver::analyze_one(code, &config);
                        CachedResult { status, elapsed_ms: 0 }
                    });
                    assert!(out.put_error.is_none(), "{:?}", out.put_error);
                    total_requests.fetch_add(1, Ordering::SeqCst);
                    observed.push((
                        which,
                        serde_json::to_string(&out.result.status.without_timings()).unwrap(),
                    ));
                }
            }
            observed
        }));
    }

    let mut verdicts: HashMap<usize, String> = HashMap::new();
    for h in handles {
        for (which, status_json) in h.join().unwrap() {
            match verdicts.entry(which) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(status_json);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(
                        e.get(),
                        &status_json,
                        "every observer of key {which} sees identical verdict bytes"
                    );
                }
            }
        }
    }

    let runs = fresh_runs.lock().unwrap();
    assert_eq!(runs.len(), UNIQUE, "every unique key was analyzed");
    for (which, n) in runs.iter() {
        assert_eq!(*n, 1, "key {which} must be analyzed exactly once, saw {n}");
    }
    assert_eq!(cache.len(), UNIQUE);

    // Every request beyond the UNIQUE fresh ones was a live hit on the
    // shared telemetry counter.
    let requests = total_requests.load(Ordering::SeqCst);
    assert_eq!(requests, THREADS * 3 * UNIQUE);
    let hits_after = telemetry::metrics::counter("ethainter_cache_hits_total").get();
    let hits = hits_after - hits_before;
    assert_eq!(
        hits as usize,
        requests - UNIQUE,
        "all {requests} requests minus {UNIQUE} fresh analyses must be counted hits"
    );

    // The segment survives reopening with all entries intact.
    drop(cache);
    let reopened = SharedCache::open(&dir).unwrap();
    assert_eq!(reopened.len(), UNIQUE);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Distinct keys must not serialize behind each other's computations:
/// with one slow key in flight, a different key completes while the
/// slow one is still running.
#[test]
fn distinct_keys_compute_concurrently() {
    let dir = tmp_dir("parallel");
    let cache = Arc::new(SharedCache::open(&dir).unwrap());
    let config = ethainter::Config::default();
    let slow_key = cache_key(b"\x00", &config);
    let fast_key = cache_key(b"\x01", &config);

    let slow_started = Arc::new(Barrier::new(2));
    let release_slow = Arc::new(Barrier::new(2));

    let c = Arc::clone(&cache);
    let (s1, r1) = (Arc::clone(&slow_started), Arc::clone(&release_slow));
    let slow = std::thread::spawn(move || {
        c.get_or_compute(slow_key, || {
            s1.wait(); // slow computation is definitely in flight…
            r1.wait(); // …and stays there until the fast one finished
            CachedResult { status: driver::analyze_one(b"\x00", &config), elapsed_ms: 0 }
        })
    });

    slow_started.wait();
    let fast = cache.get_or_compute(fast_key, || CachedResult {
        status: driver::analyze_one(b"\x01", &config),
        elapsed_ms: 0,
    });
    assert!(fast.fresh, "fast key computed while slow key was in flight");
    release_slow.wait();
    assert!(slow.join().unwrap().fresh);
    let _ = std::fs::remove_dir_all(&dir);
}
