//! Tests for the static-analysis pass layer: the dataflow engine,
//! DCE/constprop, interval analysis, storage summaries, and the IR
//! validator — against both hand-built programs and real
//! minisol-compiled bytecode.

use decompiler::passes::dataflow::{solve, Analysis, Direction, Lattice, VarSet};
use decompiler::passes::{constprop, intervals, liveness, storage, validate};
use decompiler::tac::{Block, BlockId, Op, Program, PublicFunction, Stmt, StmtId, Var};
use decompiler::{decompile, optimize, PassConfig};
use evm::opcode::Opcode;
use evm::{selector, U256};

fn compile(src: &str) -> Vec<u8> {
    minisol::compile_source(src).unwrap().bytecode
}

fn sel(sig: &str) -> u32 {
    u32::from_be_bytes(selector(sig))
}

// ---- Hand-built program helpers -------------------------------------

struct Prog {
    p: Program,
}

impl Prog {
    fn new(n_blocks: usize) -> Prog {
        let mut p = Program::default();
        for _ in 0..n_blocks {
            p.blocks.push(Block::default());
        }
        Prog { p }
    }

    fn var(&mut self) -> Var {
        let v = Var(self.p.n_vars);
        self.p.n_vars += 1;
        v
    }

    fn param(&mut self, b: usize) -> Var {
        let v = self.var();
        self.p.blocks[b].params.push(v);
        v
    }

    fn stmt(&mut self, b: usize, op: Op, def: Option<Var>, uses: Vec<Var>) -> StmtId {
        let id = StmtId(self.p.stmts.len() as u32);
        self.p.stmts.push(Stmt { id, block: BlockId(b as u32), pc: id.0 as usize, op, def, uses });
        self.p.blocks[b].stmts.push(id);
        id
    }

    fn edge(&mut self, a: usize, b: usize) {
        self.p.blocks[a].succs.push(BlockId(b as u32));
        self.p.blocks[b].preds.push(BlockId(a as u32));
    }
}

// ---- Dataflow engine -------------------------------------------------

/// Forward "reached blocks" analysis: fact = set of block ids seen so
/// far along any path (encoded in a VarSet keyed by block index).
struct Reached;

impl Analysis for Reached {
    type Fact = VarSet;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn bottom(&self, p: &Program) -> VarSet {
        VarSet::empty(p.blocks.len() as u32)
    }
    fn boundary(&self, p: &Program) -> VarSet {
        VarSet::empty(p.blocks.len() as u32)
    }
    fn transfer(&self, _p: &Program, block: BlockId, fact: &mut VarSet) {
        fact.insert(Var(block.0));
    }
}

#[test]
fn forward_engine_accumulates_paths_through_a_loop() {
    // 0 → 1 → 2 → 1 (loop), 1 → 3
    let mut t = Prog::new(4);
    t.edge(0, 1);
    t.edge(1, 2);
    t.edge(2, 1);
    t.edge(1, 3);
    let sol = solve(&t.p, &Reached);
    // Block 3's input has seen 0, 1, and (via the loop) 2.
    for b in [0u32, 1, 2] {
        assert!(sol.input[3].contains(Var(b)), "block 3 input missing B{b}");
    }
    assert!(!sol.input[0].contains(Var(3)), "entry cannot have seen the exit");
}

#[test]
fn varset_operations() {
    let mut s = VarSet::empty(130);
    assert!(s.is_empty());
    assert!(s.insert(Var(0)));
    assert!(s.insert(Var(129)));
    assert!(!s.insert(Var(129)), "double insert must report no change");
    assert_eq!(s.len(), 2);
    assert!(s.contains(Var(129)) && !s.contains(Var(64)));
    s.remove(Var(0));
    assert!(!s.contains(Var(0)));
    let mut t = VarSet::empty(130);
    t.insert(Var(5));
    assert!(t.join(&s), "union with new elements changes the set");
    assert!(!t.join(&s), "re-union is a no-op");
    assert!(t.contains(Var(129)) && t.contains(Var(5)));
}

// ---- Liveness + DCE --------------------------------------------------

#[test]
fn dce_removes_unused_pure_chain_and_keeps_effects() {
    let mut t = Prog::new(1);
    let a = t.var();
    let b = t.var();
    let c = t.var();
    let k = t.var();
    let v = t.var();
    t.stmt(0, Op::Const(U256::from(7u64)), Some(a), vec![]);
    t.stmt(0, Op::Copy, Some(b), vec![a]); // dead chain head
    t.stmt(0, Op::Un(Opcode::IsZero), Some(c), vec![b]); // dead chain tail
    t.stmt(0, Op::Const(U256::ONE), Some(k), vec![]);
    t.stmt(0, Op::Const(U256::from(2u64)), Some(v), vec![]);
    t.stmt(0, Op::SStore, None, vec![k, v]); // effect: must survive
    t.stmt(0, Op::Stop, None, vec![]);
    let removed = liveness::eliminate_dead_code(&mut t.p);
    // a, b, c all die (a only fed the dead chain); k, v, SStore, Stop stay.
    assert_eq!(removed, 3);
    assert_eq!(t.p.stmts.len(), 4);
    assert!(t.p.iter_stmts().any(|s| s.op == Op::SStore));
    // Ids were renumbered densely and backlinks hold.
    assert!(validate::validate(&t.p).is_empty(), "DCE broke IR invariants");
}

#[test]
fn dce_keeps_unused_returndatasize() {
    // RETURNDATASIZE presence is the unchecked-staticcall detector's
    // "checked" marker; an unused one must not be deleted.
    let mut t = Prog::new(1);
    let r = t.var();
    t.stmt(0, Op::Env(Opcode::ReturnDataSize), Some(r), vec![]);
    t.stmt(0, Op::Stop, None, vec![]);
    let removed = liveness::eliminate_dead_code(&mut t.p);
    assert_eq!(removed, 0);
    assert!(t.p.iter_stmts().any(|s| s.op == Op::Env(Opcode::ReturnDataSize)));
}

#[test]
fn dce_removes_dead_params_and_their_binding_copies() {
    // B0 binds two params of B1; only one is read in B1.
    let mut t = Prog::new(2);
    let x = t.var();
    let y = t.var();
    let p_used = t.param(1);
    let p_dead = t.param(1);
    t.stmt(0, Op::Env(Opcode::CallValue), Some(x), vec![]);
    t.stmt(0, Op::Env(Opcode::Caller), Some(y), vec![]);
    t.stmt(0, Op::Copy, Some(p_used), vec![x]);
    t.stmt(0, Op::Copy, Some(p_dead), vec![y]);
    t.stmt(0, Op::Jump, None, vec![]);
    t.edge(0, 1);
    let k = t.var();
    t.stmt(1, Op::Const(U256::ONE), Some(k), vec![]);
    t.stmt(1, Op::SStore, None, vec![k, p_used], );
    t.stmt(1, Op::Stop, None, vec![]);

    let removed = liveness::eliminate_dead_code(&mut t.p);
    // The dead param's Copy and the Caller feeding it both go.
    assert_eq!(removed, 2);
    assert_eq!(t.p.blocks[1].params, vec![p_used]);
    assert!(validate::validate(&t.p).is_empty());
}

#[test]
fn liveness_propagates_across_blocks() {
    let mut t = Prog::new(2);
    let x = t.var();
    let p = t.param(1);
    t.stmt(0, Op::Env(Opcode::CallValue), Some(x), vec![]);
    t.stmt(0, Op::Copy, Some(p), vec![x]);
    t.stmt(0, Op::Jump, None, vec![]);
    t.edge(0, 1);
    t.stmt(1, Op::SelfDestruct, None, vec![p]);
    let sol = liveness::live_sets(&t.p);
    // Backward: input[0] is B0's live-out, which must contain the param.
    assert!(sol.input[0].contains(p), "param consumed downstream must be live out of B0");
}

// ---- Constant propagation -------------------------------------------

#[test]
fn constprop_folds_across_block_params() {
    // Both predecessors bind the same constant to B2's param; an Add of
    // two such params folds even though the builder's per-block view
    // could not see it.
    let mut t = Prog::new(4);
    let p2 = t.param(3);
    let c0 = t.var();
    let c1 = t.var();
    let cond = t.var();
    t.stmt(0, Op::Env(Opcode::CallValue), Some(cond), vec![]);
    t.stmt(0, Op::JumpI, None, vec![cond]);
    t.edge(0, 1);
    t.edge(0, 2);
    t.stmt(1, Op::Const(U256::from(5u64)), Some(c0), vec![]);
    t.stmt(1, Op::Copy, Some(p2), vec![c0]);
    t.stmt(1, Op::Jump, None, vec![]);
    t.edge(1, 3);
    t.stmt(2, Op::Const(U256::from(5u64)), Some(c1), vec![]);
    t.stmt(2, Op::Copy, Some(p2), vec![c1]);
    t.stmt(2, Op::Jump, None, vec![]);
    t.edge(2, 3);
    let ten = t.var();
    let k = t.var();
    t.stmt(3, Op::Bin(Opcode::Add), Some(ten), vec![p2, p2]);
    t.stmt(3, Op::Const(U256::ZERO), Some(k), vec![]);
    t.stmt(3, Op::SStore, None, vec![k, ten]);
    t.stmt(3, Op::Stop, None, vec![]);

    let folded = constprop::propagate(&mut t.p);
    assert_eq!(folded, 1);
    let add = t.p.iter_stmts().find(|s| s.def == Some(ten)).unwrap();
    assert_eq!(add.op, Op::Const(U256::from(10u64)));
    assert!(add.uses.is_empty());
}

#[test]
fn constprop_does_not_fold_disagreeing_params() {
    let mut t = Prog::new(4);
    let p2 = t.param(3);
    let c0 = t.var();
    let c1 = t.var();
    let cond = t.var();
    t.stmt(0, Op::Env(Opcode::CallValue), Some(cond), vec![]);
    t.stmt(0, Op::JumpI, None, vec![cond]);
    t.edge(0, 1);
    t.edge(0, 2);
    t.stmt(1, Op::Const(U256::from(5u64)), Some(c0), vec![]);
    t.stmt(1, Op::Copy, Some(p2), vec![c0]);
    t.stmt(1, Op::Jump, None, vec![]);
    t.edge(1, 3);
    t.stmt(2, Op::Const(U256::from(6u64)), Some(c1), vec![]);
    t.stmt(2, Op::Copy, Some(p2), vec![c1]);
    t.stmt(2, Op::Jump, None, vec![]);
    t.edge(2, 3);
    let out = t.var();
    let k = t.var();
    t.stmt(3, Op::Bin(Opcode::Add), Some(out), vec![p2, p2]);
    t.stmt(3, Op::Const(U256::ZERO), Some(k), vec![]);
    t.stmt(3, Op::SStore, None, vec![k, out]);
    t.stmt(3, Op::Stop, None, vec![]);
    assert_eq!(constprop::propagate(&mut t.p), 0);
}

#[test]
fn constprop_extends_the_builder_fold_table() {
    // MOD is not in the builder's fold table; feed it via params so the
    // builder could not have folded it anyway, and check the pass does.
    let mut t = Prog::new(1);
    let a = t.var();
    let b = t.var();
    let m = t.var();
    let k = t.var();
    t.stmt(0, Op::Const(U256::from(17u64)), Some(a), vec![]);
    t.stmt(0, Op::Const(U256::from(5u64)), Some(b), vec![]);
    t.stmt(0, Op::Bin(Opcode::Mod), Some(m), vec![a, b]);
    t.stmt(0, Op::Const(U256::ZERO), Some(k), vec![]);
    t.stmt(0, Op::SStore, None, vec![k, m]);
    t.stmt(0, Op::Stop, None, vec![]);
    assert_eq!(constprop::propagate(&mut t.p), 1);
    let s = t.p.iter_stmts().find(|s| s.def == Some(m)).unwrap();
    assert_eq!(s.op, Op::Const(U256::from(2u64)));
}

// ---- Interval analysis ----------------------------------------------

#[test]
fn intervals_prove_masked_value_bounds() {
    // v = CALLDATALOAD & 0xff  →  [0, 255];  v < 0x100 is proven true.
    let mut t = Prog::new(1);
    let cd_off = t.var();
    let cd = t.var();
    let mask = t.var();
    let masked = t.var();
    let bound = t.var();
    let cmp = t.var();
    t.stmt(0, Op::Const(U256::ZERO), Some(cd_off), vec![]);
    t.stmt(0, Op::CallDataLoad, Some(cd), vec![cd_off]);
    t.stmt(0, Op::Const(U256::from(0xffu64)), Some(mask), vec![]);
    t.stmt(0, Op::Bin(Opcode::And), Some(masked), vec![cd, mask]);
    t.stmt(0, Op::Const(U256::from(0x100u64)), Some(bound), vec![]);
    t.stmt(0, Op::Bin(Opcode::Lt), Some(cmp), vec![masked, bound]);
    t.stmt(0, Op::Stop, None, vec![]);
    let iv = intervals::analyze(&t.p);
    assert_eq!(iv.of(masked).hi, U256::from(0xffu64));
    assert_eq!(iv.of(cmp).singleton(), Some(U256::ONE), "Lt must be proven true");
}

#[test]
fn intervals_kill_statically_decided_branches() {
    // JumpI on a constant-true condition: the fallthrough edge is dead.
    let mut t = Prog::new(3);
    let c = t.var();
    t.stmt(0, Op::Const(U256::ONE), Some(c), vec![]);
    t.stmt(0, Op::JumpI, None, vec![c]);
    t.edge(0, 1); // taken
    t.edge(0, 2); // fallthrough
    t.stmt(1, Op::Stop, None, vec![]);
    t.stmt(2, Op::Stop, None, vec![]);
    let iv = intervals::analyze(&t.p);
    assert_eq!(iv.dead_edges, vec![(BlockId(0), 1)]);

    // And the mirror: constant-false kills the taken edge.
    let mut f = Prog::new(3);
    let z = f.var();
    f.stmt(0, Op::Const(U256::ZERO), Some(z), vec![]);
    f.stmt(0, Op::JumpI, None, vec![z]);
    f.edge(0, 1);
    f.edge(0, 2);
    f.stmt(1, Op::Stop, None, vec![]);
    f.stmt(2, Op::Stop, None, vec![]);
    assert_eq!(intervals::analyze(&f.p).dead_edges, vec![(BlockId(0), 0)]);
}

#[test]
fn intervals_widen_loop_counters_instead_of_diverging() {
    // i' = i + 1 in a loop: the envelope must reach ⊤, not iterate 2^256
    // times. The analysis terminating at all is most of the assertion.
    let mut t = Prog::new(3);
    let i0 = t.var();
    let i = t.param(1);
    let one = t.var();
    let i2 = t.var();
    let cond = t.var();
    t.stmt(0, Op::Const(U256::ZERO), Some(i0), vec![]);
    t.stmt(0, Op::Copy, Some(i), vec![i0]);
    t.stmt(0, Op::Jump, None, vec![]);
    t.edge(0, 1);
    t.stmt(1, Op::Const(U256::ONE), Some(one), vec![]);
    t.stmt(1, Op::Bin(Opcode::Add), Some(i2), vec![i, one]);
    t.stmt(1, Op::Copy, Some(i), vec![i2]);
    t.stmt(1, Op::Env(Opcode::CallValue), Some(cond), vec![]);
    t.stmt(1, Op::JumpI, None, vec![cond]);
    t.edge(1, 1);
    t.edge(1, 2);
    t.stmt(2, Op::Stop, None, vec![]);
    let iv = intervals::analyze(&t.p);
    assert_eq!(iv.of(i).lo, U256::ZERO);
    assert_eq!(iv.of(i).hi, U256::MAX, "unstable loop counter must widen to top");
}

// ---- Storage summaries ----------------------------------------------

#[test]
fn storage_summaries_attribute_slots_to_functions() {
    let code = compile(
        r#"contract C {
            uint a;
            uint b;
            mapping(address => uint) m;
            function ra() public returns (uint) { return a; }
            function wb(uint v) public { b = v; }
            function wm(uint v) public { m[msg.sender] = v; }
        }"#,
    );
    let p = decompile(&code);
    let sums = storage::summarize(&p);
    let find = |s: u32| sums.iter().find(|f| f.selector == s).unwrap();

    let ra = find(sel("ra()"));
    assert!(ra.reads.contains(&U256::ZERO), "ra() reads slot 0: {ra:?}");
    assert!(ra.writes.is_empty(), "ra() writes nothing: {ra:?}");

    let wb = find(sel("wb(uint256)"));
    assert!(wb.writes.contains(&U256::ONE), "wb() writes slot 1: {wb:?}");
    assert!(!wb.may_write(U256::ZERO) || wb.unknown_writes);

    let wm = find(sel("wm(uint256)"));
    assert!(
        wm.write_mappings.contains(&U256::from(2u64)),
        "wm() writes mapping at base slot 2: {wm:?}"
    );
}

// ---- The optimize() pipeline on real bytecode ------------------------

#[test]
fn optimize_shrinks_real_contracts_and_preserves_invariants() {
    let code = compile(
        r#"contract C {
            uint x;
            address owner;
            function set(uint v) public { if (msg.sender == address(owner)) { x = v; } }
            function get() public returns (uint) { return x; }
            function burn() public { selfdestruct(msg.sender); }
        }"#,
    );
    let mut p = decompile(&code);
    let funcs_before = p.functions.clone();
    let blocks_before = p.blocks.len();
    let stats = optimize(&mut p, &PassConfig::default());
    assert!(stats.stmts_after < stats.stmts_before, "pipeline should remove something");
    assert_eq!(stats.stmts_after, p.len());
    assert_eq!(p.blocks.len(), blocks_before, "CFG shape must be preserved");
    assert_eq!(p.functions, funcs_before, "function table must be preserved");
    assert!(validate::validate(&p).is_empty(), "optimized IR must stay well-formed");
}

#[test]
fn optimize_skips_incomplete_programs() {
    let code = compile("contract C { uint x; function f(uint v) public { x = v; } }");
    let mut p = decompiler::decompile_with_limits(&code, decompiler::Limits { max_blocks: 1, max_stmts: 4 });
    assert!(p.incomplete);
    let before = p.len();
    let stats = optimize(&mut p, &PassConfig::default());
    assert_eq!(p.len(), before);
    assert_eq!(stats.removed, 0);
}

// ---- Validator -------------------------------------------------------

#[test]
fn validator_accepts_compiler_output() {
    let code = compile(
        r#"contract C {
            uint x;
            mapping(address => uint) m;
            function f(uint v) public { x = v; m[msg.sender] = v; }
            function g() public returns (uint) { return x + m[msg.sender]; }
        }"#,
    );
    let p = decompile(&code);
    assert!(p.warnings.is_empty() && !p.incomplete);
    assert_eq!(validate::validate(&p), Vec::<String>::new());
}

#[test]
fn validator_flags_missing_terminator() {
    let mut t = Prog::new(1);
    let v = t.var();
    t.stmt(0, Op::Const(U256::ZERO), Some(v), vec![]);
    let bad = validate::validate(&t.p);
    assert!(bad.iter().any(|m| m.contains("non-terminator")), "{bad:?}");
}

#[test]
fn validator_flags_mid_block_terminator() {
    let mut t = Prog::new(1);
    t.stmt(0, Op::Stop, None, vec![]);
    t.stmt(0, Op::Stop, None, vec![]);
    let bad = validate::validate(&t.p);
    assert!(bad.iter().any(|m| m.contains("not last")), "{bad:?}");
}

#[test]
fn validator_flags_use_before_def() {
    let mut t = Prog::new(1);
    let ghost = t.var();
    t.stmt(0, Op::SelfDestruct, None, vec![ghost]);
    let bad = validate::validate(&t.p);
    assert!(bad.iter().any(|m| m.contains("before any local def")), "{bad:?}");
}

#[test]
fn validator_flags_double_definition() {
    let mut t = Prog::new(1);
    let v = t.var();
    t.stmt(0, Op::Const(U256::ZERO), Some(v), vec![]);
    t.stmt(0, Op::Const(U256::ONE), Some(v), vec![]);
    t.stmt(0, Op::Stop, None, vec![]);
    let bad = validate::validate(&t.p);
    assert!(bad.iter().any(|m| m.contains("definition sites")), "{bad:?}");
}

#[test]
fn validator_flags_asymmetric_edges() {
    let mut t = Prog::new(2);
    t.stmt(0, Op::Jump, None, vec![]);
    t.stmt(1, Op::Stop, None, vec![]);
    t.p.blocks[0].succs.push(BlockId(1)); // no matching pred entry
    let bad = validate::validate(&t.p);
    assert!(bad.iter().any(|m| m.contains("predecessor entries")), "{bad:?}");
}

#[test]
fn validator_flags_unreachable_function_entry() {
    let mut t = Prog::new(2);
    t.stmt(0, Op::Stop, None, vec![]);
    t.stmt(1, Op::Stop, None, vec![]);
    // Block 1 is disconnected, yet claimed as a function entry.
    t.p.functions.push(PublicFunction { selector: 0xdeadbeef, entry: BlockId(1) });
    let bad = validate::validate(&t.p);
    assert!(bad.iter().any(|m| m.contains("unreachable from the dispatcher")), "{bad:?}");
}

#[test]
fn validator_flags_out_of_range_statement_id() {
    let mut t = Prog::new(1);
    t.stmt(0, Op::Stop, None, vec![]);
    t.p.blocks[0].stmts.push(StmtId(99));
    let bad = validate::validate(&t.p);
    assert!(bad.iter().any(|m| m.contains("out of range")), "{bad:?}");
}
