//! Decompiler integration tests against real minisol-compiled bytecode.

use decompiler::{decompile, decompile_with_limits, Dominators, Limits, Op, Stmt, Var};
use evm::opcode::Opcode;
use evm::{selector, U256};

fn compile(src: &str) -> Vec<u8> {
    minisol::compile_source(src).unwrap().bytecode
}

fn sel(sig: &str) -> u32 {
    u32::from_be_bytes(selector(sig))
}

#[test]
fn discovers_all_public_functions() {
    let code = compile(
        r#"contract C {
            uint x;
            function a() public { x = 1; }
            function b(uint v) public { x = v; }
            function c() public returns (uint) { return x; }
        }"#,
    );
    let p = decompile(&code);
    let sels: Vec<u32> = p.functions.iter().map(|f| f.selector).collect();
    assert!(sels.contains(&sel("a()")), "missing a()");
    assert!(sels.contains(&sel("b(uint256)")), "missing b(uint256)");
    assert!(sels.contains(&sel("c()")), "missing c()");
    assert_eq!(p.functions.len(), 3);
}

#[test]
fn internal_functions_are_not_public() {
    let code = compile(
        r#"contract C {
            uint x;
            function inner() internal { x = 2; }
            function outer() public { inner(); }
        }"#,
    );
    let p = decompile(&code);
    assert_eq!(p.functions.len(), 1);
    assert_eq!(p.functions[0].selector, sel("outer()"));
}

#[test]
fn all_jumps_resolve_for_compiler_output() {
    let code = compile(
        r#"contract C {
            uint x;
            function f(uint n) public {
                uint i = 0;
                while (i < n) { x += i; i += 1; }
            }
            function g() internal returns (uint) { return x; }
            function h() public returns (uint) { return g() + g(); }
        }"#,
    );
    let p = decompile(&code);
    assert!(
        p.warnings.iter().all(|w| !w.contains("unresolved")),
        "unresolved jumps: {:?}",
        p.warnings
    );
    assert!(!p.incomplete);
}

#[test]
fn mapping_access_becomes_hash2() {
    let code = compile(
        r#"contract C {
            mapping(address => bool) users;
            function add(address u) public { users[u] = true; }
        }"#,
    );
    let p = decompile(&code);
    let hash2 = p.iter_stmts().filter(|s| s.op == Op::Hash2).count();
    assert!(hash2 >= 1, "mapping idiom not recognized:\n{p}");
    let h = p.iter_stmts().find(|s| s.op == Op::Hash2).unwrap();
    let slot_def = p.def_site(h.uses[1]).unwrap();
    assert_eq!(slot_def.op, Op::Const(U256::ZERO));
}

#[test]
fn nested_mapping_hashes_compose() {
    let code = compile(
        r#"contract C {
            mapping(address => mapping(address => uint)) m;
            function set(address a, address b, uint v) public { m[a][b] = v; }
        }"#,
    );
    let p = decompile(&code);
    let hashes: Vec<&Stmt> = p.iter_stmts().filter(|s| s.op == Op::Hash2).collect();
    assert!(hashes.len() >= 2);
    let inner_defs: Vec<Var> = hashes.iter().filter_map(|s| s.def).collect();
    assert!(
        hashes.iter().any(|h| h.uses.iter().any(|u| inner_defs.contains(u))),
        "no composed hash found"
    );
}

#[test]
fn selfdestruct_statement_present() {
    let code = compile(
        r#"contract C {
            address owner;
            function kill() public { selfdestruct(owner); }
        }"#,
    );
    let p = decompile(&code);
    assert!(p.iter_stmts().any(|s| s.op == Op::SelfDestruct));
}

#[test]
fn victim_contract_decompiles_cleanly() {
    let code = compile(
        r#"contract Victim {
            mapping(address => bool) admins;
            mapping(address => bool) users;
            address owner;
            modifier onlyAdmins() { require(admins[msg.sender]); _; }
            modifier onlyUsers() { require(users[msg.sender]); _; }
            function registerSelf() public { users[msg.sender] = true; }
            function referUser(address user) public onlyUsers { users[user] = true; }
            function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
            function changeOwner(address o) public onlyAdmins { owner = o; }
            function kill() public onlyAdmins { selfdestruct(owner); }
        }"#,
    );
    let p = decompile(&code);
    assert_eq!(p.functions.len(), 5);
    assert!(p.warnings.iter().all(|w| !w.contains("unresolved")));
    let caller_vars: Vec<Var> = p
        .iter_stmts()
        .filter(|s| s.op == Op::Env(Opcode::Caller))
        .filter_map(|s| s.def)
        .collect();
    assert!(
        p.iter_stmts()
            .filter(|s| s.op == Op::Hash2)
            .any(|s| caller_vars.contains(&s.uses[0])),
        "sender-keyed lookup not visible"
    );
}

#[test]
fn block_ownership_maps_selfdestruct_to_kill() {
    let code = compile(
        r#"contract C {
            uint x;
            function safe() public { x = 1; }
            function kill() public { selfdestruct(msg.sender); }
        }"#,
    );
    let p = decompile(&code);
    let sd = p.iter_stmts().find(|s| s.op == Op::SelfDestruct).unwrap();
    let owners = &p.block_functions[sd.block.0 as usize];
    assert!(owners.contains(&sel("kill()")));
    assert!(!owners.contains(&sel("safe()")));
}

#[test]
fn guard_block_dominates_guarded_body() {
    let code = compile(
        r#"contract C {
            address owner;
            function kill() public {
                require(msg.sender == owner);
                selfdestruct(owner);
            }
        }"#,
    );
    let p = decompile(&code);
    let dom = Dominators::compute(&p);
    let jumpi = p
        .iter_stmts()
        .filter(|s| s.op == Op::JumpI)
        .find(|s| {
            p.def_site(s.uses[0])
                .map(|d| matches!(d.op, Op::Bin(Opcode::Eq)))
                .unwrap_or(false)
        })
        .expect("guard JUMPI present");
    let sd = p.iter_stmts().find(|s| s.op == Op::SelfDestruct).unwrap();
    let guard_block = &p.blocks[jumpi.block.0 as usize];
    assert!(
        guard_block.succs.iter().any(|&s| dom.dominates(s, sd.block)),
        "guard does not dominate the sink"
    );
}

#[test]
fn truncated_bytecode_does_not_panic() {
    let code = compile("contract C { function f() public {} }");
    for cut in 0..code.len() {
        let _ = decompile(&code[..cut]);
    }
}

#[test]
fn garbage_bytecode_is_tolerated() {
    let garbage: Vec<u8> = (0..=255u8).collect();
    let _ = decompile(&garbage);
}

#[test]
fn budget_exhaustion_is_reported() {
    let code = compile(
        r#"contract C {
            uint x;
            function f(uint n) public {
                uint i = 0;
                while (i < n) { x += i; i += 1; }
            }
        }"#,
    );
    let p = decompile_with_limits(&code, Limits { max_blocks: 2, max_stmts: 10_000 });
    assert!(p.incomplete);
}

#[test]
fn copy_statements_bind_block_params() {
    let code = compile(
        r#"contract C {
            uint x;
            function f(uint a) public returns (uint) {
                if (a > 1) { x = a; }
                return x;
            }
        }"#,
    );
    let p = decompile(&code);
    for (i, b) in p.blocks.iter().enumerate() {
        for &param in &b.params {
            if !b.preds.is_empty() {
                let has_def =
                    p.iter_stmts().any(|s| s.op == Op::Copy && s.def == Some(param));
                assert!(has_def, "param {param} of B{i} unbound");
            }
        }
    }
}

#[test]
fn staticcall_statement_carries_buffer_operands() {
    let code = compile(
        r#"contract C {
            uint result;
            function check(address w, uint input) public {
                result = staticcall_unchecked(w, input);
            }
        }"#,
    );
    let p = decompile(&code);
    let call = p
        .iter_stmts()
        .find(|s| matches!(s.op, Op::Call { kind: Opcode::StaticCall }))
        .expect("staticcall present");
    assert_eq!(call.uses.len(), 6);
    let in_off = p.def_site(call.uses[2]).unwrap();
    let out_off = p.def_site(call.uses[4]).unwrap();
    assert_eq!(in_off.op, Op::Const(U256::ZERO));
    assert_eq!(out_off.op, Op::Const(U256::ZERO));
}
