//! Property test: the iterative dominator computation against a naive
//! oracle (a dominates b iff removing a disconnects b from the entry).

use decompiler::dom::Dominators;
use decompiler::tac::{Block, BlockId, Program};
use proptest::prelude::*;

fn make_program(n: usize, edges: &[(usize, usize)]) -> Program {
    let mut p = Program::default();
    for _ in 0..n {
        p.blocks.push(Block::default());
    }
    for &(a, b) in edges {
        p.blocks[a].succs.push(BlockId(b as u32));
        p.blocks[b].preds.push(BlockId(a as u32));
    }
    p
}

/// Reachability from `from`, optionally with one node removed.
fn reachable(n: usize, edges: &[(usize, usize)], from: usize, removed: Option<usize>) -> Vec<bool> {
    let mut seen = vec![false; n];
    if Some(from) == removed {
        return seen;
    }
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(x) = stack.pop() {
        for &(a, b) in edges {
            if a == x && Some(b) != removed && !seen[b] {
                seen[b] = true;
                stack.push(b);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn dominators_match_cut_vertex_oracle(
        n in 2usize..9,
        raw_edges in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let p = make_program(n, &edges);
        let dom = Dominators::compute(&p);
        let base = reachable(n, &edges, 0, None);

        for a in 0..n {
            for b in 0..n {
                if !base[b] || !base[a] {
                    // Unreachable nodes dominate/are dominated by nothing.
                    prop_assert!(
                        !dom.dominates(BlockId(a as u32), BlockId(b as u32))
                            || (a == b && base[a]),
                        "unreachable dominance {a}->{b}"
                    );
                    continue;
                }
                // Oracle: a dominates b iff b == a, or removing a makes b
                // unreachable from the entry.
                let without_a = reachable(n, &edges, 0, Some(a));
                let oracle = a == b || !without_a[b];
                prop_assert_eq!(
                    dom.dominates(BlockId(a as u32), BlockId(b as u32)),
                    oracle,
                    "dominates({}, {}) with edges {:?}", a, b, edges
                );
            }
        }
    }
}
