//! # decompiler — EVM bytecode → three-address code
//!
//! A Gigahorse-style decompiler (paper §5: Ethainter runs on the
//! Gigahorse toolchain's functional 3-address IR). Reconstructs control
//! flow from stack-machine bytecode by abstract-stack interpretation with
//! context cloning, discovers public functions from the selector
//! dispatcher, recognizes Solidity's `keccak256(key ++ slot)` mapping
//! idiom as first-class [`tac::Op::Hash2`] statements, and computes
//! dominators for guard inference.
//!
//! The [`passes`] module adds a static-analysis layer over the emitted
//! TAC: a generic worklist dataflow engine, constant propagation and
//! dead-code elimination (run by the analysis before its fixpoint),
//! interval analysis for branch pruning, per-function storage summaries,
//! and an IR well-formedness validator.
//!
//! # Examples
//!
//! ```
//! let src = "contract C { function f() public {} }";
//! let compiled = minisol::compile_source(src).unwrap();
//! let program = decompiler::decompile(&compiled.bytecode);
//! assert_eq!(program.functions.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod defuse;
pub mod dom;
pub mod passes;
pub mod tac;

pub use builder::{decompile, decompile_with_limits, Limits};
pub use defuse::DefUse;
pub use dom::Dominators;
pub use passes::{optimize, validate::validate, PassConfig, PassStats};
pub use tac::{Block, BlockId, Op, Program, PublicFunction, Stmt, StmtId, Var};
