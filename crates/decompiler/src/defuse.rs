//! Def→use-site index over a [`Program`]'s variables.
//!
//! Built once in a single pass and shared by consumers that need sparse
//! propagation: the Ethainter worklist engine pushes exactly the use
//! sites of a variable whose abstract value changed, instead of
//! re-scanning every statement. Kept in the decompiler so every client
//! of the TAC (analysis engines, passes, future tools) indexes the IR
//! the same way.

use crate::tac::{Program, StmtId, Var};

/// Immutable def-site / use-site index, one entry per variable.
///
/// Definitions and uses are recorded in program (statement-id) order.
/// Block parameters have one defining `Copy` per predecessor binding,
/// so `defs(v)` is a slice, not an option.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    defs: Vec<Vec<StmtId>>,
    uses: Vec<Vec<StmtId>>,
}

impl DefUse {
    /// Builds the index in one pass over the statements.
    pub fn build(p: &Program) -> DefUse {
        let n = p.n_vars as usize;
        let mut defs: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        let mut uses: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        for s in p.iter_stmts() {
            if let Some(d) = s.def {
                defs[d.0 as usize].push(s.id);
            }
            for &u in &s.uses {
                let slot = &mut uses[u.0 as usize];
                // A statement using the same variable twice (e.g.
                // `v = ADD(x, x)`) is still one use site.
                if slot.last() != Some(&s.id) {
                    slot.push(s.id);
                }
            }
        }
        DefUse { defs, uses }
    }

    /// Statements defining `v`, in program order.
    pub fn defs(&self, v: Var) -> &[StmtId] {
        &self.defs[v.0 as usize]
    }

    /// Statements using `v`, in program order (each site once).
    pub fn uses(&self, v: Var) -> &[StmtId] {
        &self.uses[v.0 as usize]
    }

    /// Number of variables indexed.
    pub fn n_vars(&self) -> usize {
        self.defs.len()
    }

    /// Consumes the index, returning the per-variable def-site table
    /// (for callers that already keep their own use-side structures).
    pub fn into_defs(self) -> Vec<Vec<StmtId>> {
        self.defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_linear_scan() {
        let src = r#"
        contract C {
            uint v;
            function f(uint a) public { v = a + a; }
            function g() public view returns (uint) { return v; }
        }"#;
        let compiled = minisol::compile_source(src).unwrap();
        let p = crate::decompile(&compiled.bytecode);
        let du = DefUse::build(&p);
        assert_eq!(du.n_vars(), p.n_vars as usize);
        for v in 0..p.n_vars {
            let var = Var(v);
            let scan_defs: Vec<StmtId> =
                p.iter_stmts().filter(|s| s.def == Some(var)).map(|s| s.id).collect();
            assert_eq!(du.defs(var), &scan_defs[..], "defs of v{v}");
            let scan_uses: Vec<StmtId> =
                p.iter_stmts().filter(|s| s.uses.contains(&var)).map(|s| s.id).collect();
            assert_eq!(du.uses(var), &scan_uses[..], "uses of v{v}");
        }
    }

    #[test]
    fn duplicate_operand_is_one_use_site() {
        let src = "contract C { uint v; function f(uint a) public { v = a * a; } }";
        let compiled = minisol::compile_source(src).unwrap();
        let p = crate::decompile(&compiled.bytecode);
        let du = DefUse::build(&p);
        for s in p.iter_stmts() {
            for &u in &s.uses {
                let sites = du.uses(u);
                assert_eq!(
                    sites.iter().filter(|&&id| id == s.id).count(),
                    1,
                    "statement {} listed more than once for v{}",
                    s.id,
                    u.0
                );
            }
        }
    }
}
