//! Three-address code (TAC): the decompiler's output representation,
//! consumed by the Ethainter analysis.
//!
//! The program is a set of basic blocks in a resolved control-flow graph.
//! Blocks are *context clones*: the same bytecode block reached with
//! distinct abstract stack shapes becomes distinct TAC blocks (Gigahorse's
//! context sensitivity). Values are in SSA-with-block-parameters form —
//! instead of phi nodes, a block declares parameter variables and each
//! predecessor ends with `Copy` statements binding them.

use evm::opcode::Opcode;
use evm::U256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A TAC variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A TAC basic-block id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A TAC statement id (global, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The operation a TAC statement performs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `def = <constant>`
    Const(U256),
    /// `def = uses[0]` (block-parameter binding).
    Copy,
    /// `def = op(uses[0], uses[1])` — arithmetic/comparison/logic.
    Bin(Opcode),
    /// `def = op(uses[0])` — `ISZERO`, `NOT`, `BALANCE`, `EXTCODESIZE`,
    /// `EXTCODEHASH`, `BLOCKHASH`.
    Un(Opcode),
    /// `def = op()` — environment reads: `CALLER`, `ORIGIN`, `CALLVALUE`,
    /// `ADDRESS`, `NUMBER`, `TIMESTAMP`, `CALLDATASIZE`, `GAS`,
    /// `RETURNDATASIZE`, `MSIZE`, `PC`, `CODESIZE`, …
    Env(Opcode),
    /// `def = CALLDATALOAD(uses[0])` — a taint source.
    CallDataLoad,
    /// `def = SHA3(mem[uses[0] .. uses[0]+uses[1]])` — unrecognized
    /// hash over a raw memory range.
    Sha3,
    /// `def = keccak256(uses[0] ++ uses[1])` — the recognized two-word
    /// mapping-element hash (Solidity storage layout).
    Hash2,
    /// `def = SLOAD(uses[0])`.
    SLoad,
    /// `SSTORE(key: uses[0], value: uses[1])`.
    SStore,
    /// `def = MLOAD(uses[0])`.
    MLoad,
    /// `MSTORE(offset: uses[0], value: uses[1])`.
    MStore,
    /// Message call; `kind` ∈ {CALL, CALLCODE, DELEGATECALL, STATICCALL}.
    /// Uses: `[gas, target, value?, in_off, in_len, out_off, out_len]`
    /// (`value` present only for CALL/CALLCODE). Defines the success flag.
    Call {
        /// Which call opcode.
        kind: Opcode,
    },
    /// `SELFDESTRUCT(uses[0])` — a taint sink.
    SelfDestruct,
    /// Unconditional jump (successors on the block).
    Jump,
    /// Conditional jump; `uses[0]` is the condition.
    JumpI,
    /// `RETURN(uses[0], uses[1])`.
    Return,
    /// `REVERT(uses[0], uses[1])`.
    Revert,
    /// `STOP`.
    Stop,
    /// `LOGn(uses...)`.
    Log(u8),
    /// `CALLDATACOPY(dest_off, src_off, len)` — bulk taint source.
    CallDataCopy,
    /// Anything else, kept opaque.
    Other(Opcode),
}

/// One TAC statement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stmt {
    /// Dense id.
    pub id: StmtId,
    /// Owning block.
    pub block: BlockId,
    /// Originating bytecode offset.
    pub pc: usize,
    /// Operation.
    pub op: Op,
    /// Defined variable, if the operation produces a value.
    pub def: Option<Var>,
    /// Operand variables.
    pub uses: Vec<Var>,
}

/// A TAC basic block (a context clone of a bytecode block).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Block {
    /// Bytecode offset this clone starts at.
    pub pc_start: usize,
    /// Block-parameter variables bound by predecessor `Copy`s.
    pub params: Vec<Var>,
    /// Statement ids, in order.
    pub stmts: Vec<StmtId>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A public (dispatched) function discovered from the selector dispatcher.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicFunction {
    /// 4-byte selector value.
    pub selector: u32,
    /// Entry block of the function body.
    pub entry: BlockId,
}

/// The decompiled program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Blocks, indexed by [`BlockId`]. Block 0 is the contract entry.
    pub blocks: Vec<Block>,
    /// Statements, indexed by [`StmtId`].
    pub stmts: Vec<Stmt>,
    /// Number of variables allocated.
    pub n_vars: u32,
    /// Discovered public functions.
    pub functions: Vec<PublicFunction>,
    /// For each block, the selectors of public functions it belongs to
    /// (reachable from that function's entry).
    pub block_functions: Vec<Vec<u32>>,
    /// Non-fatal analysis notes (unresolved jumps, clone-budget cutoffs).
    pub warnings: Vec<String>,
    /// True when the decompiler hit its clone/step budget and the CFG may
    /// be incomplete (analysis treats such contracts as timeouts).
    pub incomplete: bool,
}

impl Program {
    /// The statement with id `s`.
    pub fn stmt(&self, s: StmtId) -> &Stmt {
        &self.stmts[s.0 as usize]
    }

    /// The block with id `b`.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Iterates all statements in program order.
    pub fn iter_stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.stmts.iter()
    }

    /// The defining statement of a variable, if any.
    pub fn def_site(&self, v: Var) -> Option<&Stmt> {
        // Built densely: cache-friendly linear scan is fine for tests;
        // the analysis builds its own indexes.
        self.stmts.iter().find(|s| s.def == Some(v))
    }

    /// Total statement count.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Renders one statement the way [`Program`]'s `Display` does —
    /// `v7 = CallDataLoad(v6)` / `SStore(v2, v9)` — the one-line form
    /// shared by the program listing, the dot export, and the taint
    /// witness renderer in `ethainter explain`.
    pub fn stmt_text(&self, s: StmtId) -> String {
        let s = self.stmt(s);
        let uses: Vec<String> = s.uses.iter().map(|u| u.to_string()).collect();
        match s.def {
            Some(d) => format!("{d} = {:?}({})", s.op, uses.join(", ")),
            None => format!("{:?}({})", s.op, uses.join(", ")),
        }
    }
}

impl Program {
    /// Renders the CFG in Graphviz dot format (blocks as nodes labelled
    /// with their statements, edges as control flow) — for debugging and
    /// documentation.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph cfg {\n  node [shape=box, fontname=monospace];\n");
        for (i, b) in self.blocks.iter().enumerate() {
            let mut label = format!("B{i} @0x{:x}\\l", b.pc_start);
            for &sid in &b.stmts {
                let _ = write!(label, "{}\\l", self.stmt_text(sid));
            }
            let label = label.replace('"', "'");
            let _ = writeln!(out, "  B{i} [label=\"{label}\"];");
            for succ in &b.succs {
                let _ = writeln!(out, "  B{i} -> {succ};");
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            let params: Vec<String> = b.params.iter().map(|p| p.to_string()).collect();
            writeln!(f, "B{i}({}):  // pc 0x{:x}", params.join(", "), b.pc_start)?;
            for &sid in &b.stmts {
                writeln!(f, "  {}", self.stmt_text(sid))?;
            }
            let succs: Vec<String> = b.succs.iter().map(|s| s.to_string()).collect();
            writeln!(f, "  -> [{}]", succs.join(", "))?;
        }
        Ok(())
    }
}
