//! CFG reconstruction: abstract-stack interpretation of EVM bytecode
//! with context cloning (the Gigahorse approach, in miniature).
//!
//! EVM bytecode has no explicit control flow — `JUMP` targets are stack
//! values. We symbolically execute each block over an abstract stack of
//! constants and variables, cloning a block per distinct *stack shape*
//! (the vector of constant-vs-dynamic positions, constants included).
//! Return addresses pushed by callers are constants in the shape, so
//! internal subroutines are naturally analyzed per call site —
//! call-site sensitivity for free. Dynamic stack positions become block
//! parameters bound by `Copy` statements in each predecessor (SSA with
//! block arguments instead of phis).

use crate::tac::*;
use evm::opcode::{disassemble, Instruction, Opcode};
use evm::U256;
use std::collections::HashMap;

/// Resource budget for decompilation; exceeding it marks the output
/// [`Program::incomplete`] (the paper's 120 s timeout analogue).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum TAC blocks (context clones).
    pub max_blocks: usize,
    /// Maximum TAC statements.
    pub max_stmts: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_blocks: 4000, max_stmts: 200_000 }
    }
}

/// An abstract stack value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AVal {
    Const(U256),
    Dyn(Var),
}

impl AVal {
    fn shape(&self) -> Option<U256> {
        match self {
            AVal::Const(v) => Some(*v),
            AVal::Dyn(_) => None,
        }
    }
}

type Shape = Vec<Option<U256>>;

struct Builder {
    insns: HashMap<usize, Instruction>,
    leaders: Vec<usize>,
    jumpdests: HashMap<usize, bool>,
    program: Program,
    ctx_map: HashMap<(usize, Shape), BlockId>,
    /// entry stacks for created blocks (consts + params)
    entry_stacks: Vec<Vec<AVal>>,
    worklist: Vec<BlockId>,
    limits: Limits,
}

/// Decompiles runtime bytecode to TAC with default limits.
pub fn decompile(code: &[u8]) -> Program {
    decompile_with_limits(code, Limits::default())
}

/// Decompiles with an explicit resource budget.
pub fn decompile_with_limits(code: &[u8], limits: Limits) -> Program {
    let insns = disassemble(code);
    let mut leaders = vec![0usize];
    let mut jumpdests = HashMap::new();
    for (i, insn) in insns.iter().enumerate() {
        match insn.opcode {
            Opcode::JumpDest => {
                leaders.push(insn.offset);
                jumpdests.insert(insn.offset, true);
            }
            Opcode::JumpI => {
                if let Some(next) = insns.get(i + 1) {
                    leaders.push(next.offset);
                }
            }
            _ => {}
        }
    }
    leaders.sort_unstable();
    leaders.dedup();

    let mut b = Builder {
        insns: insns.into_iter().map(|i| (i.offset, i)).collect(),
        leaders,
        jumpdests,
        program: Program::default(),
        ctx_map: HashMap::new(),
        entry_stacks: Vec::new(),
        worklist: Vec::new(),
        limits,
    };

    if !b.insns.is_empty() {
        let entry = b.get_block(0, Vec::new());
        debug_assert_eq!(entry, BlockId(0));
        while let Some(block) = b.worklist.pop() {
            if b.program.blocks.len() > b.limits.max_blocks
                || b.program.stmts.len() > b.limits.max_stmts
            {
                b.program.incomplete = true;
                b.program
                    .warnings
                    .push("decompile budget exhausted; CFG incomplete".to_string());
                break;
            }
            b.analyze_block(block);
        }
    }

    let program = b.finish();
    // Clean decompilations must satisfy every IR invariant; programs
    // with warnings (stack underflow, unresolved jumps) or a blown
    // budget legitimately violate them (unterminated blocks) and are
    // already flagged for the analysis to handle.
    #[cfg(debug_assertions)]
    if !program.incomplete && program.warnings.is_empty() {
        let violations = crate::passes::validate::validate(&program);
        debug_assert!(
            violations.is_empty(),
            "decompiler emitted ill-formed IR: {violations:?}"
        );
    }
    program
}

impl Builder {
    fn fresh_var(&mut self) -> Var {
        let v = Var(self.program.n_vars);
        self.program.n_vars += 1;
        v
    }

    /// Gets or creates the TAC clone of the bytecode block at `pc` for
    /// the given entry-stack shape.
    fn get_block(&mut self, pc: usize, shape: Shape) -> BlockId {
        if let Some(&id) = self.ctx_map.get(&(pc, shape.clone())) {
            return id;
        }
        let id = BlockId(self.program.blocks.len() as u32);
        let mut params = Vec::new();
        let mut entry = Vec::with_capacity(shape.len());
        for slot in &shape {
            match slot {
                Some(c) => entry.push(AVal::Const(*c)),
                None => {
                    let v = Var(self.program.n_vars);
                    self.program.n_vars += 1;
                    params.push(v);
                    entry.push(AVal::Dyn(v));
                }
            }
        }
        self.program.blocks.push(Block {
            pc_start: pc,
            params,
            stmts: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        });
        self.entry_stacks.push(entry);
        self.ctx_map.insert((pc, shape), id);
        self.worklist.push(id);
        id
    }

    fn emit(&mut self, block: BlockId, pc: usize, op: Op, def: Option<Var>, uses: Vec<Var>) -> StmtId {
        let id = StmtId(self.program.stmts.len() as u32);
        self.program.stmts.push(Stmt { id, block, pc, op, def, uses });
        self.program.blocks[block.0 as usize].stmts.push(id);
        id
    }

    /// Materializes an abstract value as a variable (emitting a `Const`
    /// statement when needed).
    fn materialize(&mut self, block: BlockId, pc: usize, v: AVal) -> Var {
        match v {
            AVal::Dyn(var) => var,
            AVal::Const(c) => {
                let var = self.fresh_var();
                self.emit(block, pc, Op::Const(c), Some(var), Vec::new());
                var
            }
        }
    }

    /// Connects `pred → succ`, emitting parameter-binding copies in the
    /// predecessor for each dynamic stack slot.
    fn add_edge(&mut self, pred: BlockId, succ: BlockId, exit_stack: &[AVal], pc: usize) {
        self.program.blocks[pred.0 as usize].succs.push(succ);
        self.program.blocks[succ.0 as usize].preds.push(pred);
        // Bind succ params to pred's dynamic stack values, in order.
        let params = self.program.blocks[succ.0 as usize].params.clone();
        let mut pi = 0usize;
        for v in exit_stack {
            if let AVal::Dyn(src) = v {
                if pi < params.len() {
                    let dst = params[pi];
                    self.emit(pred, pc, Op::Copy, Some(dst), vec![*src]);
                    pi += 1;
                }
            }
        }
        debug_assert_eq!(pi, params.len(), "param/shape mismatch");
    }

    /// True if `pc` starts a new block (other than the current one).
    fn is_leader(&self, pc: usize) -> bool {
        self.leaders.binary_search(&pc).is_ok()
    }

    #[allow(clippy::too_many_lines)]
    fn analyze_block(&mut self, block: BlockId) {
        let mut pc = self.program.blocks[block.0 as usize].pc_start;
        let mut stack: Vec<AVal> = self.entry_stacks[block.0 as usize].clone();
        // Abstract memory: constant offset → value, valid within the block.
        let mut mem: HashMap<u64, AVal> = HashMap::new();

        macro_rules! underflow {
            () => {{
                self.program
                    .warnings
                    .push(format!("stack underflow at pc 0x{pc:x}"));
                return;
            }};
        }

        loop {
            let Some(insn) = self.insns.get(&pc).cloned() else {
                // Ran off the end: implicit STOP.
                self.emit(block, pc, Op::Stop, None, Vec::new());
                return;
            };
            let op = insn.opcode;
            let next_pc = insn.next_offset();

            use Opcode::*;
            match op {
                Push(_) => {
                    stack.push(AVal::Const(insn.immediate.unwrap_or(U256::ZERO)));
                }
                Dup(n) => {
                    let n = n as usize;
                    if stack.len() < n {
                        underflow!();
                    }
                    let v = stack[stack.len() - n];
                    stack.push(v);
                }
                Swap(n) => {
                    let n = n as usize;
                    if stack.len() < n + 1 {
                        underflow!();
                    }
                    let top = stack.len() - 1;
                    stack.swap(top, top - n);
                }
                Pop => {
                    if stack.pop().is_none() {
                        underflow!();
                    }
                }
                JumpDest => {}
                // Binary operations (with constant folding).
                Add | Mul | Sub | Div | SDiv | Mod | SMod | Exp | SignExtend | Lt | Gt
                | SLt | SGt | Eq | And | Or | Xor | Byte | Shl | Shr | Sar => {
                    let Some(a) = stack.pop() else { underflow!() };
                    let Some(b) = stack.pop() else { underflow!() };
                    if let (AVal::Const(ca), AVal::Const(cb)) = (a, b) {
                        if let Some(folded) = fold(op, ca, cb) {
                            stack.push(AVal::Const(folded));
                            pc = next_pc;
                            continue;
                        }
                    }
                    let ua = self.materialize(block, pc, a);
                    let ub = self.materialize(block, pc, b);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Bin(op), Some(def), vec![ua, ub]);
                    stack.push(AVal::Dyn(def));
                }
                AddMod | MulMod => {
                    let Some(a) = stack.pop() else { underflow!() };
                    let Some(b) = stack.pop() else { underflow!() };
                    let Some(m) = stack.pop() else { underflow!() };
                    let ua = self.materialize(block, pc, a);
                    let ub = self.materialize(block, pc, b);
                    let um = self.materialize(block, pc, m);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Other(op), Some(def), vec![ua, ub, um]);
                    stack.push(AVal::Dyn(def));
                }
                IsZero | Not => {
                    let Some(a) = stack.pop() else { underflow!() };
                    if let AVal::Const(c) = a {
                        let folded = if op == IsZero {
                            U256::from(c.is_zero())
                        } else {
                            !c
                        };
                        stack.push(AVal::Const(folded));
                        pc = next_pc;
                        continue;
                    }
                    let ua = self.materialize(block, pc, a);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Un(op), Some(def), vec![ua]);
                    stack.push(AVal::Dyn(def));
                }
                Balance | ExtCodeSize | ExtCodeHash | BlockHash => {
                    let Some(a) = stack.pop() else { underflow!() };
                    let ua = self.materialize(block, pc, a);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Un(op), Some(def), vec![ua]);
                    stack.push(AVal::Dyn(def));
                }
                Address | Origin | Caller | CallValue | CallDataSize | CodeSize | GasPrice
                | ReturnDataSize | Coinbase | Timestamp | Number | Difficulty | GasLimit
                | Pc | MSize | Gas => {
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Env(op), Some(def), Vec::new());
                    stack.push(AVal::Dyn(def));
                }
                CallDataLoad => {
                    let Some(a) = stack.pop() else { underflow!() };
                    let ua = self.materialize(block, pc, a);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::CallDataLoad, Some(def), vec![ua]);
                    stack.push(AVal::Dyn(def));
                }
                CallDataCopy => {
                    let Some(d) = stack.pop() else { underflow!() };
                    let Some(s) = stack.pop() else { underflow!() };
                    let Some(l) = stack.pop() else { underflow!() };
                    let ud = self.materialize(block, pc, d);
                    let us = self.materialize(block, pc, s);
                    let ul = self.materialize(block, pc, l);
                    self.emit(block, pc, Op::CallDataCopy, None, vec![ud, us, ul]);
                    mem.clear();
                }
                CodeCopy | ExtCodeCopy | ReturnDataCopy => {
                    let pops = op.pops();
                    if stack.len() < pops {
                        underflow!();
                    }
                    let mut uses = Vec::with_capacity(pops);
                    for _ in 0..pops {
                        let v = stack.pop().expect("len checked");
                        let u = self.materialize(block, pc, v);
                        uses.push(u);
                    }
                    self.emit(block, pc, Op::Other(op), None, uses);
                    mem.clear();
                }
                Sha3 => {
                    let Some(off) = stack.pop() else { underflow!() };
                    let Some(len) = stack.pop() else { underflow!() };
                    // Recognize the Solidity mapping hash: SHA3 over two
                    // known memory words.
                    if let (AVal::Const(co), AVal::Const(cl)) = (off, len) {
                        if cl == U256::from(0x40u64) {
                            if let (Some(o), Some(w0), Some(w1)) = (
                                co.to_u64(),
                                co.to_u64().and_then(|o| mem.get(&o)).copied(),
                                co.to_u64().and_then(|o| mem.get(&(o + 0x20))).copied(),
                            ) {
                                let _ = o;
                                let u0 = self.materialize(block, pc, w0);
                                let u1 = self.materialize(block, pc, w1);
                                let def = self.fresh_var();
                                self.emit(block, pc, Op::Hash2, Some(def), vec![u0, u1]);
                                stack.push(AVal::Dyn(def));
                                pc = next_pc;
                                continue;
                            }
                        }
                    }
                    let uo = self.materialize(block, pc, off);
                    let ul = self.materialize(block, pc, len);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Sha3, Some(def), vec![uo, ul]);
                    stack.push(AVal::Dyn(def));
                }
                MLoad => {
                    let Some(off) = stack.pop() else { underflow!() };
                    if let AVal::Const(co) = off {
                        if let Some(v) = co.to_u64().and_then(|o| mem.get(&o)).copied() {
                            stack.push(v);
                            pc = next_pc;
                            continue;
                        }
                    }
                    let uo = self.materialize(block, pc, off);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::MLoad, Some(def), vec![uo]);
                    stack.push(AVal::Dyn(def));
                }
                MStore => {
                    let Some(off) = stack.pop() else { underflow!() };
                    let Some(val) = stack.pop() else { underflow!() };
                    match off.shape().and_then(|c| c.to_u64()) {
                        Some(o) => {
                            mem.insert(o, val);
                        }
                        None => mem.clear(),
                    }
                    let uo = self.materialize(block, pc, off);
                    let uv = self.materialize(block, pc, val);
                    self.emit(block, pc, Op::MStore, None, vec![uo, uv]);
                }
                MStore8 => {
                    let Some(off) = stack.pop() else { underflow!() };
                    let Some(val) = stack.pop() else { underflow!() };
                    mem.clear();
                    let uo = self.materialize(block, pc, off);
                    let uv = self.materialize(block, pc, val);
                    self.emit(block, pc, Op::Other(op), None, vec![uo, uv]);
                }
                SLoad => {
                    let Some(key) = stack.pop() else { underflow!() };
                    let uk = self.materialize(block, pc, key);
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::SLoad, Some(def), vec![uk]);
                    stack.push(AVal::Dyn(def));
                }
                SStore => {
                    let Some(key) = stack.pop() else { underflow!() };
                    let Some(val) = stack.pop() else { underflow!() };
                    let uk = self.materialize(block, pc, key);
                    let uv = self.materialize(block, pc, val);
                    self.emit(block, pc, Op::SStore, None, vec![uk, uv]);
                }
                Call | CallCode | DelegateCall | StaticCall => {
                    let pops = op.pops();
                    if stack.len() < pops {
                        underflow!();
                    }
                    let mut uses = Vec::with_capacity(pops);
                    for _ in 0..pops {
                        let v = stack.pop().expect("len checked");
                        let u = self.materialize(block, pc, v);
                        uses.push(u);
                    }
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Call { kind: op }, Some(def), uses);
                    stack.push(AVal::Dyn(def));
                    // The callee may write the output window; drop what we
                    // know about memory (conservative, per-block anyway).
                    mem.clear();
                }
                Create | Create2 => {
                    let pops = op.pops();
                    if stack.len() < pops {
                        underflow!();
                    }
                    let mut uses = Vec::with_capacity(pops);
                    for _ in 0..pops {
                        let v = stack.pop().expect("len checked");
                        let u = self.materialize(block, pc, v);
                        uses.push(u);
                    }
                    let def = self.fresh_var();
                    self.emit(block, pc, Op::Other(op), Some(def), uses);
                    stack.push(AVal::Dyn(def));
                    mem.clear();
                }
                Log(n) => {
                    let pops = op.pops();
                    if stack.len() < pops {
                        underflow!();
                    }
                    let mut uses = Vec::with_capacity(pops);
                    for _ in 0..pops {
                        let v = stack.pop().expect("len checked");
                        let u = self.materialize(block, pc, v);
                        uses.push(u);
                    }
                    self.emit(block, pc, Op::Log(n), None, uses);
                }
                Jump => {
                    let Some(target) = stack.pop() else { underflow!() };
                    match target {
                        AVal::Const(t) => {
                            let tpc = t.to_usize().unwrap_or(usize::MAX);
                            if self.jumpdests.contains_key(&tpc) {
                                let shape: Shape = stack.iter().map(AVal::shape).collect();
                                let succ = self.get_block(tpc, shape);
                                self.add_edge(block, succ, &stack, pc);
                                self.emit(block, pc, Op::Jump, None, Vec::new());
                            } else {
                                self.program
                                    .warnings
                                    .push(format!("jump to non-JUMPDEST 0x{tpc:x} at 0x{pc:x}"));
                                self.emit(block, pc, Op::Jump, None, Vec::new());
                            }
                        }
                        AVal::Dyn(v) => {
                            self.program
                                .warnings
                                .push(format!("unresolved jump target {v} at 0x{pc:x}"));
                            self.emit(block, pc, Op::Jump, None, vec![v]);
                        }
                    }
                    return;
                }
                JumpI => {
                    let Some(target) = stack.pop() else { underflow!() };
                    let Some(cond) = stack.pop() else { underflow!() };
                    let ucond = self.materialize(block, pc, cond);
                    let shape: Shape = stack.iter().map(AVal::shape).collect();
                    // Taken edge.
                    if let AVal::Const(t) = target {
                        let tpc = t.to_usize().unwrap_or(usize::MAX);
                        if self.jumpdests.contains_key(&tpc) {
                            let succ = self.get_block(tpc, shape.clone());
                            self.add_edge(block, succ, &stack, pc);
                        } else {
                            self.program
                                .warnings
                                .push(format!("jumpi to non-JUMPDEST 0x{tpc:x} at 0x{pc:x}"));
                        }
                    } else {
                        self.program
                            .warnings
                            .push(format!("unresolved jumpi target at 0x{pc:x}"));
                    }
                    // Fallthrough edge.
                    let succ = self.get_block(next_pc, shape);
                    self.add_edge(block, succ, &stack, pc);
                    self.emit(block, pc, Op::JumpI, None, vec![ucond]);
                    return;
                }
                Return | Revert => {
                    let Some(off) = stack.pop() else { underflow!() };
                    let Some(len) = stack.pop() else { underflow!() };
                    let uo = self.materialize(block, pc, off);
                    let ul = self.materialize(block, pc, len);
                    let kind = if op == Return { Op::Return } else { Op::Revert };
                    self.emit(block, pc, kind, None, vec![uo, ul]);
                    return;
                }
                Stop => {
                    self.emit(block, pc, Op::Stop, None, Vec::new());
                    return;
                }
                SelfDestruct => {
                    let Some(b) = stack.pop() else { underflow!() };
                    let ub = self.materialize(block, pc, b);
                    self.emit(block, pc, Op::SelfDestruct, None, vec![ub]);
                    return;
                }
                Invalid | Unknown(_) => {
                    self.emit(block, pc, Op::Other(op), None, Vec::new());
                    return;
                }
            }

            pc = next_pc;
            // Fallthrough into a leader: close the block with an edge.
            if self.is_leader(pc) {
                let shape: Shape = stack.iter().map(AVal::shape).collect();
                let succ = self.get_block(pc, shape);
                self.add_edge(block, succ, &stack, pc);
                self.emit(block, pc, Op::Jump, None, Vec::new());
                return;
            }
        }
    }

    /// Post-pass: discover public functions and block ownership.
    fn finish(mut self) -> Program {
        let selector_source = self.find_selector_vars();
        let mut functions = Vec::new();
        for b in 0..self.program.blocks.len() {
            let block = &self.program.blocks[b];
            let Some(&last) = block.stmts.last() else { continue };
            let last_stmt = self.program.stmt(last);
            if last_stmt.op != Op::JumpI {
                continue;
            }
            let cond = last_stmt.uses[0];
            // cond = Eq(x, c) where one side is a selector-derived var and
            // the other a small constant.
            let Some(def) = self.def_of(cond) else { continue };
            let Op::Bin(Opcode::Eq) = def.op else { continue };
            let (a, bv) = (def.uses[0], def.uses[1]);
            let const_of = |builder: &Self, v: Var| -> Option<U256> {
                builder.def_of(v).and_then(|s| match s.op {
                    Op::Const(c) => Some(c),
                    _ => None,
                })
            };
            let (sel, other) = match (const_of(&self, a), const_of(&self, bv)) {
                (Some(c), None) => (c, bv),
                (None, Some(c)) => (c, a),
                _ => continue,
            };
            let Some(sel_u64) = sel.to_u64() else { continue };
            if sel_u64 > u32::MAX as u64 {
                continue;
            }
            if !selector_source.contains(&other) {
                continue;
            }
            // Taken successor = function entry (JumpI's first added edge
            // was the taken one when resolved; the fallthrough is last).
            let succs = &self.program.blocks[b].succs;
            if succs.len() == 2 {
                functions.push(PublicFunction { selector: sel_u64 as u32, entry: succs[0] });
            }
        }
        functions.sort_by_key(|f| f.selector);
        functions.dedup_by_key(|f| (f.selector, f.entry));
        self.program.functions = functions;

        // Block ownership: BFS from each function entry.
        let n = self.program.blocks.len();
        let mut ownership: Vec<Vec<u32>> = vec![Vec::new(); n];
        for f in self.program.functions.clone() {
            let mut seen = vec![false; n];
            let mut stack = vec![f.entry];
            while let Some(b) = stack.pop() {
                if seen[b.0 as usize] {
                    continue;
                }
                seen[b.0 as usize] = true;
                ownership[b.0 as usize].push(f.selector);
                for &s in &self.program.blocks[b.0 as usize].succs {
                    stack.push(s);
                }
            }
        }
        self.program.block_functions = ownership;
        self.program
    }

    fn def_of(&self, v: Var) -> Option<&Stmt> {
        // Linear scan is fine at decompile time (called on few vars).
        self.program.stmts.iter().find(|s| s.def == Some(v))
    }

    /// Variables derived from `CALLDATALOAD(0) >> 0xe0` (the selector),
    /// following `Copy` chains forward.
    fn find_selector_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for s in &self.program.stmts {
            if let Op::Bin(Opcode::Shr) = s.op {
                let shift_const = self.def_of(s.uses[0]).and_then(|d| match d.op {
                    Op::Const(c) => Some(c),
                    _ => None,
                });
                let from_calldata = self
                    .def_of(s.uses[1])
                    .map(|d| matches!(d.op, Op::CallDataLoad))
                    .unwrap_or(false);
                if shift_const == Some(U256::from(0xe0u64)) && from_calldata {
                    out.push(s.def.expect("Shr defines"));
                }
            }
        }
        // Propagate through copies to fixpoint.
        loop {
            let mut added = false;
            for s in &self.program.stmts {
                if s.op == Op::Copy && out.contains(&s.uses[0]) {
                    let d = s.def.expect("Copy defines");
                    if !out.contains(&d) {
                        out.push(d);
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }
        out
    }
}

fn fold(op: Opcode, a: U256, b: U256) -> Option<U256> {
    use Opcode::*;
    Some(match op {
        Add => a.wrapping_add(b),
        Mul => a.wrapping_mul(b),
        Sub => a.wrapping_sub(b),
        Div => a / b,
        Exp => a.wrapping_pow(b),
        Lt => U256::from(a < b),
        Gt => U256::from(a > b),
        Eq => U256::from(a == b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => b << a,
        Shr => b >> a,
        _ => return None,
    })
}
