//! Dominator computation over the TAC CFG (Cooper–Harvey–Kennedy).
//!
//! Guard inference needs dominance: a `JUMPI` condition guards exactly
//! the statements its chosen successor dominates (paper §4.5: "if a check
//! dominates a use of a tainted variable, it is considered a guard").

use crate::tac::{BlockId, Program};

/// Immediate-dominator tree: `idom[b]` is `b`'s immediate dominator
/// (`None` for the entry and for unreachable blocks).
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    reachable: Vec<bool>,
}

impl Dominators {
    /// Computes dominators for `program` from entry block 0.
    pub fn compute(program: &Program) -> Dominators {
        let n = program.blocks.len();
        if n == 0 {
            return Dominators { idom: Vec::new(), reachable: Vec::new() };
        }
        // Reverse postorder over reachable blocks.
        let mut rpo: Vec<BlockId> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        seen[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = &program.blocks[b.0 as usize].succs;
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                rpo.push(b);
                stack.pop();
            }
        }
        rpo.reverse();
        let mut order = vec![usize::MAX; n]; // block -> rpo index
        for (i, &b) in rpo.iter().enumerate() {
            order[b.0 as usize] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds = &program.blocks[b.0 as usize].preds;
                let mut new_idom: Option<BlockId> = None;
                for &p in preds {
                    if idom[p.0 as usize].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // The entry's idom is conventionally itself; store None for the
        // public API (walking up stops there).
        idom[0] = None;
        Dominators { idom, reachable: seen }
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(b) || !self.is_reachable(a) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Immediate dominator of `b`.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.0 as usize).copied().flatten()
    }

    /// Dominator-tree children, indexed by block: `children()[b]` are
    /// the blocks whose immediate dominator is `b`. One O(blocks) pass;
    /// a DFS from `b` over this index enumerates exactly the set
    /// `{x : b dominates x}` without the per-query idom-chain walk
    /// `dominates` pays, which matters when collecting the dominated
    /// region of every guard in a program with hundreds of blocks.
    pub fn children(&self) -> Vec<Vec<BlockId>> {
        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); self.idom.len()];
        for (b, id) in self.idom.iter().enumerate() {
            if let Some(p) = id {
                children[p.0 as usize].push(BlockId(b as u32));
            }
        }
        children
    }

    /// True when `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable.get(b.0 as usize).copied().unwrap_or(false)
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    order: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    // Walk both up the (partial) dominator tree by rpo index.
    while a != b {
        while order[a.0 as usize] > order[b.0 as usize] {
            a = idom[a.0 as usize].unwrap_or(BlockId(0));
            if a == BlockId(0) {
                break;
            }
        }
        while order[b.0 as usize] > order[a.0 as usize] {
            b = idom[b.0 as usize].unwrap_or(BlockId(0));
            if b == BlockId(0) {
                break;
            }
        }
        if order[a.0 as usize] == order[b.0 as usize] && a != b {
            return BlockId(0);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tac::{Block, Program};

    /// Builds a program skeleton with the given edges.
    fn diamond() -> Program {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut p = Program::default();
        for _ in 0..4 {
            p.blocks.push(Block::default());
        }
        let edges = [(0u32, 1u32), (0, 2), (1, 3), (2, 3)];
        for (a, b) in edges {
            p.blocks[a as usize].succs.push(BlockId(b));
            p.blocks[b as usize].preds.push(BlockId(a));
        }
        p
    }

    #[test]
    fn diamond_join_dominated_by_entry_only() {
        let p = diamond();
        let dom = Dominators::compute(&p);
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
    }

    #[test]
    fn chain_dominance_is_transitive() {
        // 0 -> 1 -> 2
        let mut p = Program::default();
        for _ in 0..3 {
            p.blocks.push(Block::default());
        }
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            p.blocks[a as usize].succs.push(BlockId(b));
            p.blocks[b as usize].preds.push(BlockId(a));
        }
        let dom = Dominators::compute(&p);
        assert!(dom.dominates(BlockId(0), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(2), BlockId(2)));
        assert!(!dom.dominates(BlockId(2), BlockId(1)));
    }

    #[test]
    fn children_subtree_matches_dominates() {
        let mut p = diamond();
        p.blocks.push(Block::default()); // block 4: unreachable
        let dom = Dominators::compute(&p);
        let children = dom.children();
        for root in 0..p.blocks.len() as u32 {
            // DFS over the children index.
            let mut subtree = Vec::new();
            let mut stack = vec![BlockId(root)];
            while let Some(b) = stack.pop() {
                if b != BlockId(root) || dom.is_reachable(b) {
                    subtree.push(b);
                }
                stack.extend(&children[b.0 as usize]);
            }
            subtree.sort();
            // Reference: the per-query dominates predicate.
            let reference: Vec<BlockId> = (0..p.blocks.len() as u32)
                .map(BlockId)
                .filter(|&b| dom.dominates(BlockId(root), b))
                .collect();
            assert_eq!(subtree, reference, "subtree of B{root}");
        }
    }

    #[test]
    fn unreachable_blocks_are_not_dominated() {
        let mut p = diamond();
        p.blocks.push(Block::default()); // block 4: unreachable
        let dom = Dominators::compute(&p);
        assert!(!dom.is_reachable(BlockId(4)));
        assert!(!dom.dominates(BlockId(0), BlockId(4)));
    }

    #[test]
    fn loop_back_edge_keeps_header_dominating() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let mut p = Program::default();
        for _ in 0..4 {
            p.blocks.push(Block::default());
        }
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 1), (2, 3)] {
            p.blocks[a as usize].succs.push(BlockId(b));
            p.blocks[b as usize].preds.push(BlockId(a));
        }
        let dom = Dominators::compute(&p);
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(2), BlockId(3)));
    }
}
