//! A generic worklist dataflow engine over the TAC CFG.
//!
//! Analyses plug in as a [`Lattice`] of per-block facts plus a transfer
//! function; the engine iterates blocks to fixpoint in a direction-aware
//! order (reverse postorder forward, postorder backward) and hands back
//! the converged fact at every block boundary. Liveness
//! ([`super::liveness`]) runs on it backward; the engine is equally
//! usable forward (see the crate tests for a reaching-definitions-style
//! example).

use crate::tac::{BlockId, Program};

/// A join-semilattice of dataflow facts.
///
/// `join` merges a fact flowing in from a neighbouring block and
/// reports whether anything changed — the engine's convergence test.
/// The least element is supplied per-program by [`Analysis::bottom`]
/// (fact sizes usually depend on the program, e.g. bitsets over its
/// variables).
pub trait Lattice: Clone {
    /// Merges `other` into `self`; returns true when `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// Direction a dataflow analysis propagates facts in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow along control-flow edges (predecessors → block).
    Forward,
    /// Facts flow against control-flow edges (successors → block).
    Backward,
}

/// A dataflow analysis: fact type, direction, boundary fact, and the
/// per-block transfer function.
pub trait Analysis {
    /// The per-block fact.
    type Fact: Lattice;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The starting fact ("no information"). Must be the identity of
    /// [`Lattice::join`].
    fn bottom(&self, p: &Program) -> Self::Fact;

    /// The fact at the boundary: the entry block's input (forward) or
    /// every exit block's output (backward).
    fn boundary(&self, p: &Program) -> Self::Fact;

    /// Applies the block's statements to `fact` (in statement order for
    /// forward analyses, reverse order for backward ones — the analysis
    /// chooses; the engine only hands over the block).
    fn transfer(&self, p: &Program, block: BlockId, fact: &mut Self::Fact);
}

/// The converged facts at both edges of every block.
///
/// For a forward analysis `input[b]` is the fact flowing into `b` and
/// `output[b]` the fact after `b`'s transfer; for a backward analysis
/// `input[b]` is the fact at the block's *end* (joined from successors)
/// and `output[b]` the fact at its start.
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// Fact at each block's upstream edge (direction-relative).
    pub input: Vec<F>,
    /// Fact at each block's downstream edge (direction-relative).
    pub output: Vec<F>,
}

/// Runs `analysis` to fixpoint over `p`'s CFG with a worklist seeded in
/// direction-aware order.
pub fn solve<A: Analysis>(p: &Program, analysis: &A) -> Solution<A::Fact> {
    let n = p.blocks.len();
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(p)).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| analysis.bottom(p)).collect();
    if n == 0 {
        return Solution { input, output };
    }

    let forward = analysis.direction() == Direction::Forward;
    // Reverse postorder from the entry; backward analyses iterate it
    // reversed (≈ postorder), which converges in O(loop-depth) passes.
    let mut order = reverse_postorder(p);
    if !forward {
        order.reverse();
    }
    // Blocks unreachable from the entry still get processed (appended
    // last) so their facts are defined; they simply never join into
    // reachable ones in a forward analysis.
    let mut seen = vec![false; n];
    for &b in &order {
        seen[b.0 as usize] = true;
    }
    for (b, &s) in seen.iter().enumerate() {
        if !s {
            order.push(BlockId(b as u32));
        }
    }

    let boundary = analysis.boundary(p);
    if forward {
        input[0] = boundary.clone();
    } else {
        // Every block without successors is an exit.
        for (b, blk) in p.blocks.iter().enumerate() {
            if blk.succs.is_empty() {
                input[b] = boundary.clone();
            }
        }
    }

    let mut on_list = vec![true; n];
    let mut worklist: Vec<BlockId> = order.clone();
    let mut position = 0usize;
    while position < worklist.len() {
        let b = worklist[position];
        position += 1;
        on_list[b.0 as usize] = false;

        let bi = b.0 as usize;
        // Join upstream neighbours into the block's input fact.
        let upstream: &[BlockId] =
            if forward { &p.blocks[bi].preds } else { &p.blocks[bi].succs };
        for &u in upstream {
            let from = output[u.0 as usize].clone();
            input[bi].join(&from);
        }

        let mut fact = input[bi].clone();
        analysis.transfer(p, b, &mut fact);
        let changed = output[bi].join(&fact);
        if changed {
            let downstream: Vec<BlockId> =
                if forward { p.blocks[bi].succs.clone() } else { p.blocks[bi].preds.clone() };
            for d in downstream {
                if !on_list[d.0 as usize] {
                    on_list[d.0 as usize] = true;
                    worklist.push(d);
                }
            }
        }
    }

    Solution { input, output }
}

/// Reverse postorder over the blocks reachable from the entry.
pub fn reverse_postorder(p: &Program) -> Vec<BlockId> {
    let n = p.blocks.len();
    let mut post: Vec<BlockId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    if n == 0 {
        return post;
    }
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
    seen[0] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = &p.blocks[b.0 as usize].succs;
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !seen[s.0 as usize] {
                seen[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// A dense bitset over TAC variables — the fact type of set-based
/// analyses (liveness uses it for live-variable sets).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct VarSet {
    words: Vec<u64>,
}

impl VarSet {
    /// An empty set sized for `n_vars` variables.
    pub fn empty(n_vars: u32) -> VarSet {
        VarSet { words: vec![0; (n_vars as usize).div_ceil(64)] }
    }

    /// Inserts `v`; returns true if it was not present.
    pub fn insert(&mut self, v: crate::tac::Var) -> bool {
        let (w, b) = (v.0 as usize / 64, v.0 as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `v`.
    pub fn remove(&mut self, v: crate::tac::Var) {
        let (w, b) = (v.0 as usize / 64, v.0 as usize % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
        }
    }

    /// True when `v` is in the set.
    pub fn contains(&self, v: crate::tac::Var) -> bool {
        let (w, b) = (v.0 as usize / 64, v.0 as usize % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Unions `other` in; returns true when the set grew.
    pub fn union_with(&mut self, other: &VarSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | b;
            if merged != *a {
                *a = merged;
                changed = true;
            }
        }
        changed
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no variable is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl Lattice for VarSet {
    fn join(&mut self, other: &VarSet) -> bool {
        self.union_with(other)
    }
}
