//! IR well-formedness validator ("lint") for TAC programs.
//!
//! Checks the structural invariants every downstream consumer assumes:
//! dense consistent ids, block/statement backlinks, successor/predecessor
//! symmetry, exactly one trailing terminator per block, def-before-use
//! (every use is an own-block parameter or an earlier local definition —
//! strict, because the builder routes all cross-block values through
//! block parameters), unique definition sites, and dispatcher
//! reachability of every discovered public function.
//!
//! The validator only makes sense for *complete* decompilations: budget
//! cutoffs and stack underflows legitimately leave blocks unterminated.
//! [`decompile_with_limits`](crate::builder::decompile_with_limits)
//! asserts emptiness under `debug_assertions` for clean programs only;
//! the CLI `lint` subcommand reports whatever it finds.

use crate::tac::{BlockId, Op, Program};
use evm::opcode::Opcode;

/// True when the op ends a block (nothing may follow it).
fn is_terminator(op: &Op) -> bool {
    matches!(
        op,
        Op::Jump
            | Op::JumpI
            | Op::Return
            | Op::Revert
            | Op::Stop
            | Op::SelfDestruct
            | Op::Other(Opcode::Invalid)
            | Op::Other(Opcode::Unknown(_))
    )
}

/// Validates `p`, returning one human-readable message per violation
/// (empty = well-formed).
pub fn validate(p: &Program) -> Vec<String> {
    let mut bad = Vec::new();
    let n_blocks = p.blocks.len();
    let n_stmts = p.stmts.len();

    // --- id density and backlinks -----------------------------------
    for (i, s) in p.stmts.iter().enumerate() {
        if s.id.0 as usize != i {
            bad.push(format!("stmt at index {i} carries id {}", s.id));
        }
        if s.block.0 as usize >= n_blocks {
            bad.push(format!("{}: block backlink {} out of range", s.id, s.block));
        }
        if let Some(d) = s.def {
            if d.0 >= p.n_vars {
                bad.push(format!("{}: def {} ≥ n_vars {}", s.id, d, p.n_vars));
            }
        }
        for &u in &s.uses {
            if u.0 >= p.n_vars {
                bad.push(format!("{}: use {} ≥ n_vars {}", s.id, u, p.n_vars));
            }
        }
    }

    // --- each statement in exactly one block, at a consistent spot ---
    let mut owner = vec![usize::MAX; n_stmts];
    for (bi, block) in p.blocks.iter().enumerate() {
        for &sid in &block.stmts {
            let si = sid.0 as usize;
            if si >= n_stmts {
                bad.push(format!("B{bi}: statement id {sid} out of range"));
                continue;
            }
            if owner[si] != usize::MAX {
                bad.push(format!("{sid} listed by both B{} and B{bi}", owner[si]));
            }
            owner[si] = bi;
            if p.stmts[si].block.0 as usize != bi {
                bad.push(format!(
                    "{sid} listed in B{bi} but backlinks {}",
                    p.stmts[si].block
                ));
            }
        }
    }
    for (si, &o) in owner.iter().enumerate() {
        if o == usize::MAX {
            bad.push(format!("s{si} belongs to no block"));
        }
    }

    // --- CFG edge symmetry and range --------------------------------
    for (bi, block) in p.blocks.iter().enumerate() {
        for &s in &block.succs {
            if s.0 as usize >= n_blocks {
                bad.push(format!("B{bi}: successor {s} out of range"));
                continue;
            }
            let back = p.blocks[s.0 as usize]
                .preds
                .iter()
                .filter(|&&x| x.0 as usize == bi)
                .count();
            let fwd = block.succs.iter().filter(|&&x| x == s).count();
            if back != fwd {
                bad.push(format!(
                    "edge B{bi}→{s}: {fwd} successor entries vs {back} predecessor entries"
                ));
            }
        }
        for &pr in &block.preds {
            if pr.0 as usize >= n_blocks {
                bad.push(format!("B{bi}: predecessor {pr} out of range"));
            } else if !p.blocks[pr.0 as usize].succs.contains(&BlockId(bi as u32)) {
                bad.push(format!("B{bi}: predecessor {pr} lacks the forward edge"));
            }
        }
    }

    // --- exactly one terminator, trailing ---------------------------
    // Out-of-range ids were reported above; skip them here so the
    // validator stays total on arbitrarily broken inputs.
    for (bi, block) in p.blocks.iter().enumerate() {
        match block.stmts.last() {
            None => bad.push(format!("B{bi} is empty (no terminator)")),
            Some(&last) => {
                if let Some(s) = p.stmts.get(last.0 as usize) {
                    if !is_terminator(&s.op) {
                        bad.push(format!("B{bi} ends in non-terminator {:?}", s.op));
                    }
                }
            }
        }
        for &sid in block.stmts.iter().rev().skip(1) {
            let Some(s) = p.stmts.get(sid.0 as usize) else { continue };
            if is_terminator(&s.op) {
                bad.push(format!("B{bi}: terminator {:?} at {sid} is not last", s.op));
            }
        }
    }

    // --- definition sites --------------------------------------------
    // Params may have one defining Copy per incoming edge; every other
    // variable has exactly one def (or none, if it's never defined and
    // never used — impossible for used vars, checked below).
    let mut param_block = vec![None::<usize>; p.n_vars as usize];
    for (bi, block) in p.blocks.iter().enumerate() {
        for &v in &block.params {
            if v.0 >= p.n_vars {
                bad.push(format!("B{bi}: param {v} ≥ n_vars"));
                continue;
            }
            if let Some(other) = param_block[v.0 as usize] {
                bad.push(format!("{v} is a param of both B{other} and B{bi}"));
            }
            param_block[v.0 as usize] = Some(bi);
        }
    }
    let mut def_count = vec![0u32; p.n_vars as usize];
    for s in p.iter_stmts() {
        if let Some(d) = s.def {
            if d.0 >= p.n_vars {
                continue; // already reported
            }
            def_count[d.0 as usize] += 1;
            if let Some(pb) = param_block[d.0 as usize] {
                if s.op != Op::Copy {
                    bad.push(format!("{}: param {d} defined by non-Copy {:?}", s.id, s.op));
                } else if !p.blocks[pb].preds.contains(&s.block) {
                    bad.push(format!(
                        "{}: param {d} of B{pb} bound in {} which is not a predecessor",
                        s.id, s.block
                    ));
                }
            }
        }
    }
    for (v, &c) in def_count.iter().enumerate() {
        if param_block[v].is_none() && c > 1 {
            bad.push(format!("v{v} has {c} definition sites"));
        }
    }

    // --- def-before-use ----------------------------------------------
    // The builder routes every cross-block value through a block param,
    // so a use must be the block's own param or an earlier local def.
    let mut local_defined = vec![u32::MAX; p.n_vars as usize];
    for (bi, block) in p.blocks.iter().enumerate() {
        let stamp = bi as u32;
        for &v in &block.params {
            if v.0 < p.n_vars {
                local_defined[v.0 as usize] = stamp;
            }
        }
        for &sid in &block.stmts {
            let Some(s) = p.stmts.get(sid.0 as usize) else { continue };
            for &u in &s.uses {
                if u.0 < p.n_vars && local_defined[u.0 as usize] != stamp {
                    // Param-binding copies read the *predecessor's*
                    // values, which is this block by construction; the
                    // outlier is a use of something never visible here.
                    bad.push(format!("{sid} in B{bi}: use of {u} before any local def"));
                }
            }
            if let Some(d) = s.def {
                if d.0 < p.n_vars && param_block[d.0 as usize].is_none() {
                    local_defined[d.0 as usize] = stamp;
                }
            }
        }
    }

    // --- dispatcher reachability of public functions -----------------
    if !p.blocks.is_empty() {
        let mut reach = vec![false; n_blocks];
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            let bi = b.0 as usize;
            if bi >= n_blocks || reach[bi] {
                continue;
            }
            reach[bi] = true;
            for &s in &p.blocks[bi].succs {
                stack.push(s);
            }
        }
        for f in &p.functions {
            let e = f.entry.0 as usize;
            if e >= n_blocks {
                bad.push(format!("function {:#010x}: entry {} out of range", f.selector, f.entry));
            } else if !reach[e] {
                bad.push(format!(
                    "function {:#010x}: entry {} unreachable from the dispatcher",
                    f.selector, f.entry
                ));
            }
        }
    }

    bad
}
