//! Interprocedural effect/ordering summaries over the TAC CFG.
//!
//! For each dispatched [`PublicFunction`](crate::tac::PublicFunction),
//! collects its *effect sites* — external-call sites (`CALL`/`CALLCODE`/
//! `DELEGATECALL`/`STATICCALL`), storage-write sites, and storage-read
//! sites — with the storage key resolved through the constant analysis
//! and unique-def `Copy`/`Hash2` chains where possible. Sites in blocks
//! not owned by any function (dispatcher prologue, fallback paths) are
//! attributed to every function, since every call traverses them.
//!
//! On top of the raw sites, the module answers two *ordering* queries
//! the detector suite needs, both grounded in the dominator tree:
//!
//! * [`must_precede`] — statement `a` executes before statement `b` on
//!   every path reaching `b` (same block and earlier position, or `a`'s
//!   block strictly dominates `b`'s).
//! * [`reordered_writes`] — checks-effects-interactions violations: a
//!   storage write ordered *after* an external call, where the same
//!   slot or mapping base was read *before* the call (the read is the
//!   stale balance check a re-entrant caller exploits).
//!
//! Each call site also records whether its success flag is *checked* —
//! whether the call's result transitively (through `Copy`/`Bin`/`Un`
//! chains) constrains a `JumpI` condition or a storage write. Unchecked
//! `CALL` results in attacker-reachable code are the
//! `UncheckedCallReturn` detector's sink.
//!
//! `ethainter::analysis` consumes these summaries for the detector
//! suite v2 sink scans (reentrancy, unchecked call return); the
//! summaries themselves are engine-independent, so the dense and sparse
//! engines share one set of sites and verdicts stay byte-identical.

use crate::defuse::DefUse;
use crate::dom::Dominators;
use crate::tac::{Op, Program, StmtId};
use evm::{Opcode, U256};

use super::constprop;

/// A resolved storage key: a concrete slot, a mapping base, or unknown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKey {
    /// Constant storage slot.
    Slot(U256),
    /// Mapping family: `Hash2(_, base)` with a constant base.
    Mapping(U256),
    /// The constant analysis could not resolve the key. Consumers must
    /// widen (assume any slot) to stay sound.
    Unknown,
}

impl SlotKey {
    /// True when both keys resolve and denote the same slot or base.
    /// `Unknown` never aliases — callers handle widening explicitly.
    pub fn same_cell(self, other: SlotKey) -> bool {
        self != SlotKey::Unknown && self == other
    }
}

/// One external-call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The `Call` statement.
    pub stmt: StmtId,
    /// `Call` / `CallCode` / `DelegateCall` / `StaticCall`.
    pub kind: Opcode,
    /// True when the call's success flag transitively reaches a `JumpI`
    /// condition or a storage write (the result constrains control or
    /// state); false for fire-and-forget calls.
    pub checked: bool,
}

/// One storage-write (`SSTORE`) site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteSite {
    /// The `SStore` statement.
    pub stmt: StmtId,
    /// Resolved write key.
    pub key: SlotKey,
}

/// One storage-read (`SLOAD`) site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadSite {
    /// The `SLoad` statement.
    pub stmt: StmtId,
    /// Resolved read key.
    pub key: SlotKey,
}

/// Effect sites one public function may execute.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionEffects {
    /// The function's 4-byte selector.
    pub selector: u32,
    /// External-call sites, in statement order.
    pub calls: Vec<CallSite>,
    /// Storage-write sites, in statement order.
    pub writes: Vec<WriteSite>,
    /// Storage-read sites, in statement order.
    pub reads: Vec<ReadSite>,
}

/// Whole-program effect summary: per-function sites plus the global
/// site lists the ordering queries run over.
#[derive(Clone, Debug, Default)]
pub struct EffectSummary {
    /// Per-public-function effect sites.
    pub functions: Vec<FunctionEffects>,
    /// Every external-call site in the program, in statement order.
    pub calls: Vec<CallSite>,
    /// Every storage-write site in the program, in statement order.
    pub writes: Vec<WriteSite>,
    /// Every storage-read site in the program, in statement order.
    pub reads: Vec<ReadSite>,
}

/// A checks-effects-interactions violation candidate: storage write
/// `write` to `cell` is ordered after external call `call`, and `read`
/// loaded the same cell before the call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReorderedWrite {
    /// The external-call statement (the re-entry point).
    pub call: StmtId,
    /// The storage write that should have preceded the call.
    pub write: StmtId,
    /// The stale read the attacker exploits.
    pub read: StmtId,
    /// The slot or mapping base written late.
    pub cell: SlotKey,
}

/// True when `a` executes before `b` on every path that reaches `b`:
/// same block with an earlier position, or `a`'s block strictly
/// dominates `b`'s. Positions come from `block_pos` (see
/// [`block_positions`]).
pub fn must_precede(
    p: &Program,
    dom: &Dominators,
    block_pos: &[u32],
    a: StmtId,
    b: StmtId,
) -> bool {
    let (sa, sb) = (p.stmt(a), p.stmt(b));
    if sa.block == sb.block {
        block_pos[a.0 as usize] < block_pos[b.0 as usize]
    } else {
        dom.dominates(sa.block, sb.block)
    }
}

/// Position of every statement within its block (index into
/// `Block::stmts`), for same-block ordering in [`must_precede`].
pub fn block_positions(p: &Program) -> Vec<u32> {
    let mut pos = vec![0u32; p.stmts.len()];
    for b in &p.blocks {
        for (i, &s) in b.stmts.iter().enumerate() {
            pos[s.0 as usize] = i as u32;
        }
    }
    pos
}

/// Summarizes effect sites for every discovered public function and the
/// program as a whole.
pub fn summarize(p: &Program) -> EffectSummary {
    let consts = constprop::constants(p);
    let du = DefUse::build(p);

    // Resolve a storage key through unique-def Copy/Hash2 chains (the
    // same discipline as `storage::summarize`): a block parameter fed
    // different hashes by different predecessors stays `Unknown`.
    let resolve = |key: crate::tac::Var| -> SlotKey {
        if let Some(c) = consts[key.0 as usize] {
            return SlotKey::Slot(c);
        }
        let mut k = key;
        for _ in 0..16 {
            let [d] = du.defs(k)[..] else { return SlotKey::Unknown };
            let def = p.stmt(d);
            match def.op {
                Op::Copy => k = def.uses[0],
                Op::Hash2 => {
                    return match consts[def.uses[1].0 as usize] {
                        Some(base) => SlotKey::Mapping(base),
                        None => SlotKey::Unknown,
                    };
                }
                _ => return SlotKey::Unknown,
            }
        }
        SlotKey::Unknown
    };

    // Does the call's success flag transitively constrain a path or a
    // write? Bounded forward walk over use sites through value-copying
    // ops; anything else that consumes the flag (a hash, a call
    // argument) does not count as a check.
    let result_checked = |s: &crate::tac::Stmt| -> bool {
        let Some(flag) = s.def else { return false };
        let mut stack = vec![flag];
        let mut seen = vec![flag];
        while let Some(v) = stack.pop() {
            for &u in du.uses(v) {
                let user = p.stmt(u);
                match user.op {
                    Op::JumpI | Op::SStore => return true,
                    Op::Copy | Op::Bin(_) | Op::Un(_) => {
                        if let Some(d) = user.def {
                            if !seen.contains(&d) && seen.len() < 64 {
                                seen.push(d);
                                stack.push(d);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        false
    };

    let mut out = EffectSummary {
        functions: p
            .functions
            .iter()
            .map(|f| FunctionEffects { selector: f.selector, ..FunctionEffects::default() })
            .collect(),
        ..EffectSummary::default()
    };
    let index_of: std::collections::HashMap<u32, usize> =
        p.functions.iter().enumerate().map(|(i, f)| (f.selector, i)).collect();

    for s in p.iter_stmts() {
        enum Site {
            Call(CallSite),
            Write(WriteSite),
            Read(ReadSite),
        }
        let site = match s.op {
            Op::Call { kind } => {
                Site::Call(CallSite { stmt: s.id, kind, checked: result_checked(s) })
            }
            Op::SStore => Site::Write(WriteSite { stmt: s.id, key: resolve(s.uses[0]) }),
            Op::SLoad => Site::Read(ReadSite { stmt: s.id, key: resolve(s.uses[0]) }),
            _ => continue,
        };
        let owners = &p.block_functions[s.block.0 as usize];
        let targets: Vec<usize> = if owners.is_empty() {
            (0..out.functions.len()).collect()
        } else {
            owners.iter().filter_map(|sel| index_of.get(sel).copied()).collect()
        };
        match site {
            Site::Call(c) => {
                out.calls.push(c);
                for t in targets {
                    out.functions[t].calls.push(c);
                }
            }
            Site::Write(w) => {
                out.writes.push(w);
                for t in targets {
                    out.functions[t].writes.push(w);
                }
            }
            Site::Read(r) => {
                out.reads.push(r);
                for t in targets {
                    out.functions[t].reads.push(r);
                }
            }
        }
    }
    out
}

/// Finds checks-effects-interactions violations: for every
/// state-changing external call (`CALL`/`CALLCODE` — static and
/// delegate calls have their own detectors), every storage write of a
/// *resolved* cell that must execute after the call, paired with a read
/// of the same cell that must execute before it. One violation is
/// reported per `(call, cell)` pair — the first qualifying write and
/// read in statement order.
pub fn reordered_writes(
    p: &Program,
    dom: &Dominators,
    summary: &EffectSummary,
) -> Vec<ReorderedWrite> {
    let pos = block_positions(p);
    let mut out = Vec::new();
    for c in &summary.calls {
        if !matches!(c.kind, Opcode::Call | Opcode::CallCode) {
            continue;
        }
        let mut cells_done: Vec<SlotKey> = Vec::new();
        for w in &summary.writes {
            if w.key == SlotKey::Unknown
                || cells_done.contains(&w.key)
                || !must_precede(p, dom, &pos, c.stmt, w.stmt)
            {
                continue;
            }
            let read = summary
                .reads
                .iter()
                .find(|r| r.key.same_cell(w.key) && must_precede(p, dom, &pos, r.stmt, c.stmt));
            if let Some(r) = read {
                cells_done.push(w.key);
                out.push(ReorderedWrite { call: c.stmt, write: w.stmt, read: r.stmt, cell: w.key });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompile;

    fn program(src: &str) -> Program {
        let compiled = minisol::compile_source(src).unwrap();
        decompile(&compiled.bytecode)
    }

    #[test]
    fn summarizes_call_and_write_sites_per_function() {
        let p = program(
            r#"
            contract C {
                uint nonce;
                function ping(address to, uint amount) public {
                    require(send(to, amount));
                }
                function bump() public { nonce = nonce + 1; }
            }"#,
        );
        let sum = summarize(&p);
        assert_eq!(sum.calls.len(), 1);
        assert!(sum.calls[0].checked, "require(send(..)) checks the flag");
        assert!(sum.writes.iter().any(|w| w.key == SlotKey::Slot(U256::ZERO)));
        // The call belongs to `ping`'s summary only.
        let with_calls: Vec<_> =
            sum.functions.iter().filter(|f| !f.calls.is_empty()).collect();
        assert_eq!(with_calls.len(), 1);
    }

    #[test]
    fn unchecked_send_is_not_marked_checked() {
        let p = program(
            r#"
            contract C {
                function pay(address to, uint amount) public { send(to, amount); }
            }"#,
        );
        let sum = summarize(&p);
        assert_eq!(sum.calls.len(), 1);
        assert!(!sum.calls[0].checked, "bare send never constrains anything");
    }

    #[test]
    fn detects_write_after_call_of_previously_read_cell() {
        let p = program(
            r#"
            contract Bank {
                mapping(address => uint) balances;
                function withdraw() public {
                    uint bal = balances[msg.sender];
                    require(bal > 0x0);
                    require(send(msg.sender, bal));
                    balances[msg.sender] = 0x0;
                }
            }"#,
        );
        let sum = summarize(&p);
        let dom = Dominators::compute(&p);
        let viol = reordered_writes(&p, &dom, &sum);
        assert!(
            viol.iter().any(|v| v.cell == SlotKey::Mapping(U256::ZERO)),
            "expected a reordered write of mapping base 0, got {viol:?}"
        );
    }

    #[test]
    fn effects_before_interaction_is_clean() {
        let p = program(
            r#"
            contract Bank {
                mapping(address => uint) balances;
                function withdraw() public {
                    uint bal = balances[msg.sender];
                    require(bal > 0x0);
                    balances[msg.sender] = 0x0;
                    require(send(msg.sender, bal));
                }
            }"#,
        );
        let sum = summarize(&p);
        let dom = Dominators::compute(&p);
        let viol = reordered_writes(&p, &dom, &sum);
        assert!(viol.is_empty(), "write precedes the call, got {viol:?}");
    }
}
