//! Static-analysis passes over the TAC program.
//!
//! The pass pipeline sits between decompilation and the Ethainter
//! Datalog-style fixpoint: it shrinks and sharpens the IR so the
//! (quadratic-ish) taint/guard analysis sees fewer statements and more
//! constants. The module tree:
//!
//! * [`dataflow`] — a generic worklist engine (forward/backward) over a
//!   small lattice trait; the substrate the other passes build on.
//! * [`liveness`] — backward live-variable analysis and dead-code
//!   elimination (pure defs nobody reads, unused block parameters).
//! * [`constprop`] — cross-block constant propagation with a full EVM
//!   fold table; rewrites provably-constant computations to `Const`.
//! * [`intervals`] — unsigned value-range analysis; proves `JumpI`
//!   edges dead so the analysis can prune unreachable guard regions.
//! * [`storage`] — per-public-function storage read/write summaries for
//!   the detectors' sink inference.
//! * [`effects`] — interprocedural effect/ordering summaries (external
//!   call sites vs. storage-write sites ordered via the dominator
//!   tree), the substrate of the detector suite v2 sink scans.
//! * [`validate`] — the IR well-formedness linter, run at the end of
//!   every debug-build decompilation and by `ethainter lint`.
//!
//! Entry point: [`optimize`] runs constprop and DCE to a joint fixpoint
//! and reports [`PassStats`]; the analysis passes ([`intervals::analyze`],
//! [`storage::summarize`], [`validate::validate`]) are pure queries
//! callers invoke directly.

pub mod constprop;
pub mod dataflow;
pub mod effects;
pub mod intervals;
pub mod liveness;
pub mod storage;
pub mod validate;

use crate::tac::Program;

/// Which optimization passes [`optimize`] runs.
#[derive(Clone, Copy, Debug)]
pub struct PassConfig {
    /// Rewrite provably-constant computations to `Const`.
    pub constprop: bool,
    /// Delete pure definitions nobody reads and unused block params.
    pub dce: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig { constprop: true, dce: true }
    }
}

/// What the optimization pipeline did to a program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Statement count before any pass ran.
    pub stmts_before: usize,
    /// Statement count after the pipeline converged.
    pub stmts_after: usize,
    /// Statements rewritten to `Const` by constant propagation.
    pub folded: usize,
    /// Statements deleted by dead-code elimination.
    pub removed: usize,
    /// constprop→DCE rounds until nothing changed.
    pub rounds: usize,
}

impl PassStats {
    /// Fraction of statements eliminated, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.stmts_before == 0 {
            0.0
        } else {
            1.0 - self.stmts_after as f64 / self.stmts_before as f64
        }
    }
}

/// Runs the enabled optimization passes to a joint fixpoint: folding
/// constants exposes dead operand chains, and deleting them can expose
/// further agreement among block-parameter bindings, so the two
/// alternate until neither makes progress.
///
/// Incomplete programs (budget cutoffs) are left untouched — their IR
/// legitimately violates the invariants DCE relies on.
pub fn optimize(p: &mut Program, cfg: &PassConfig) -> PassStats {
    let mut stats = PassStats { stmts_before: p.len(), stmts_after: p.len(), ..Default::default() };
    if p.incomplete || (!cfg.constprop && !cfg.dce) {
        return stats;
    }
    loop {
        let mut progressed = false;
        if cfg.constprop {
            let folded = constprop::propagate(p);
            stats.folded += folded;
            progressed |= folded > 0;
        }
        if cfg.dce {
            let removed = liveness::eliminate_dead_code(p);
            stats.removed += removed;
            progressed |= removed > 0;
        }
        stats.rounds += 1;
        if !progressed || stats.rounds >= 16 {
            break;
        }
    }
    stats.stmts_after = p.len();
    stats
}
