//! Backward live-variable analysis and dead-code elimination.
//!
//! Liveness runs on the generic engine ([`super::dataflow`]); DCE sweeps
//! each block backward with the converged live-out set, deleting pure
//! definitions whose value is never consumed, plus block parameters
//! (and their predecessor-side binding `Copy`s) that no statement reads.
//! The CFG itself — blocks, successors, predecessors — is never touched,
//! so every control-flow fact the analysis derives is unchanged.

use crate::tac::{BlockId, Op, Program, Stmt, StmtId, Var};

use super::dataflow::{solve, Analysis, Direction, Solution, VarSet};

/// Live-variable analysis: a variable is live at a point when some path
/// from that point reads it before (and without) redefining it.
pub struct Liveness;

impl Analysis for Liveness {
    type Fact = VarSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, p: &Program) -> VarSet {
        VarSet::empty(p.n_vars)
    }

    fn boundary(&self, p: &Program) -> VarSet {
        VarSet::empty(p.n_vars)
    }

    fn transfer(&self, p: &Program, block: BlockId, fact: &mut VarSet) {
        for &sid in p.block(block).stmts.iter().rev() {
            let s = p.stmt(sid);
            if let Some(d) = s.def {
                fact.remove(d);
            }
            for &u in &s.uses {
                fact.insert(u);
            }
        }
    }
}

/// Computes per-block live sets: `input[b]` is live-out, `output[b]`
/// live-in (backward direction-relative naming; see [`Solution`]).
pub fn live_sets(p: &Program) -> Solution<VarSet> {
    solve(p, &Liveness)
}

/// True when deleting the statement cannot change any behaviour the
/// downstream analysis observes: no storage/memory/log/control effect,
/// and no detector keys off the statement's mere presence.
fn is_pure(op: &Op) -> bool {
    match op {
        Op::Const(_)
        | Op::Copy
        | Op::Bin(_)
        | Op::Un(_)
        | Op::CallDataLoad
        | Op::Sha3
        | Op::Hash2
        | Op::SLoad
        | Op::MLoad => true,
        // RETURNDATASIZE's presence is the "return value checked" marker
        // for the unchecked-staticcall detector — deleting an unused one
        // would flip that verdict, so it stays.
        Op::Env(o) => *o != evm::opcode::Opcode::ReturnDataSize,
        Op::SStore
        | Op::MStore
        | Op::Call { .. }
        | Op::SelfDestruct
        | Op::Jump
        | Op::JumpI
        | Op::Return
        | Op::Revert
        | Op::Stop
        | Op::Log(_)
        | Op::CallDataCopy
        | Op::Other(_) => false,
    }
}

/// Deletes dead pure statements and unused block parameters, iterating
/// liveness + sweep to a fixpoint. Returns the number of statements
/// removed. Statement ids are renumbered densely afterwards; pcs and the
/// CFG are preserved.
pub fn eliminate_dead_code(p: &mut Program) -> usize {
    let before = p.stmts.len();
    loop {
        let live = live_sets(p);
        let mut dead = vec![false; p.stmts.len()];
        let mut any = false;

        for (bi, block) in p.blocks.iter().enumerate() {
            // input[b] of a backward analysis is the block's live-out.
            let mut live_now = live.input[bi].clone();
            for &sid in block.stmts.iter().rev() {
                let s = &p.stmts[sid.0 as usize];
                let def_dead = s.def.map(|d| !live_now.contains(d)).unwrap_or(false);
                if def_dead && is_pure(&s.op) {
                    dead[sid.0 as usize] = true;
                    any = true;
                    continue;
                }
                if let Some(d) = s.def {
                    live_now.remove(d);
                }
                for &u in &s.uses {
                    live_now.insert(u);
                }
            }
        }

        // A parameter nothing reads (output[b] = live-in) can go; its
        // binding Copys in the predecessors are dead by the same liveness
        // facts and were marked above.
        for (bi, block) in p.blocks.iter_mut().enumerate() {
            let live_in = &live.output[bi];
            let n0 = block.params.len();
            block.params.retain(|&v| live_in.contains(v));
            if block.params.len() != n0 {
                any = true;
            }
        }

        if !any {
            break;
        }
        compact(p, &dead);
    }
    before - p.stmts.len()
}

/// Rebuilds `p.stmts` without the statements marked `dead`, renumbering
/// ids densely and rewriting each block's statement list.
fn compact(p: &mut Program, dead: &[bool]) {
    let mut remap: Vec<Option<StmtId>> = vec![None; p.stmts.len()];
    let mut kept: Vec<Stmt> = Vec::with_capacity(p.stmts.len());
    for (i, s) in p.stmts.drain(..).enumerate() {
        if !dead[i] {
            let new_id = StmtId(kept.len() as u32);
            remap[i] = Some(new_id);
            let mut s = s;
            s.id = new_id;
            kept.push(s);
        }
    }
    p.stmts = kept;
    for block in &mut p.blocks {
        block.stmts = block
            .stmts
            .iter()
            .filter_map(|sid| remap[sid.0 as usize])
            .collect();
    }
}

/// Convenience: the set of variables used anywhere in the program —
/// handy for tests asserting DCE left no unused pure defs behind.
pub fn used_vars(p: &Program) -> VarSet {
    let mut used = VarSet::empty(p.n_vars);
    for s in p.iter_stmts() {
        for &u in &s.uses {
            used.insert(u);
        }
    }
    used
}

/// Returns true when `v` is a parameter of some block.
pub fn is_param(p: &Program, v: Var) -> bool {
    p.blocks.iter().any(|b| b.params.contains(&v))
}
