//! Unsigned value-range (interval) analysis over TAC variables.
//!
//! Generalizes the constant facts: every variable gets a `[lo, hi]`
//! envelope of its possible runtime values, computed as a sparse fixpoint
//! over def sites (block parameters join the envelopes bound by every
//! predecessor). The payoff downstream is *branch pruning*: a `JumpI`
//! whose condition is proven always-true or always-false has a dead
//! successor edge, and `ethainter::analysis` uses those dead edges to
//! shrink the reachable region a guard fails to protect (fewer
//! false-positive findings behind statically-decided branches).
//!
//! Widening: intervals over `U256` have essentially unbounded ascending
//! chains (loop counters grow the hull every sweep), so after a few
//! stable sweeps any still-changing variable is widened straight to ⊤ =
//! `[0, U256::MAX]`. ⊤ is absorbing, so convergence is then immediate.

use crate::tac::{BlockId, Op, Program, Var};
use evm::opcode::Opcode;
use evm::U256;

/// An inclusive unsigned range of `U256` values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: U256,
    /// Largest possible value.
    pub hi: U256,
}

impl Interval {
    /// The full range ⊤ = `[0, U256::MAX]` — "no information".
    pub const TOP: Interval = Interval { lo: U256::ZERO, hi: U256::MAX };

    /// A single known value.
    pub fn point(v: U256) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The boolean range `[0, 1]`.
    pub fn boolean() -> Interval {
        Interval { lo: U256::ZERO, hi: U256::ONE }
    }

    /// True when the interval is a single value.
    pub fn singleton(&self) -> Option<U256> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// True when every value in the range is nonzero.
    pub fn proven_nonzero(&self) -> bool {
        self.lo > U256::ZERO
    }

    /// True when the only possible value is zero.
    pub fn proven_zero(&self) -> bool {
        self.hi.is_zero()
    }

    /// The convex hull of two intervals (the lattice join).
    pub fn hull(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }
}

/// The result of interval analysis.
#[derive(Clone, Debug, Default)]
pub struct Intervals {
    /// Per-variable envelope; `None` for variables with no reachable def
    /// (their value can never be observed).
    pub vars: Vec<Option<Interval>>,
    /// CFG edges proven never taken, as `(block, successor-index)`.
    /// Indices (not successor ids) disambiguate the case where a
    /// conditional jump's taken and fallthrough targets coincide.
    pub dead_edges: Vec<(BlockId, usize)>,
}

impl Intervals {
    /// The envelope of `v`, defaulting to ⊤ when unknown.
    pub fn of(&self, v: Var) -> Interval {
        self.vars
            .get(v.0 as usize)
            .copied()
            .flatten()
            .unwrap_or(Interval::TOP)
    }
}

/// Sweeps before per-variable widening kicks in. Minisol-scale programs
/// converge in 2–4 sweeps; anything still moving after this is a loop
/// counter and goes straight to ⊤.
const STABLE_SWEEPS: usize = 8;

/// Runs the analysis over `p`.
pub fn analyze(p: &Program) -> Intervals {
    let n = p.n_vars as usize;
    let mut iv: Vec<Option<Interval>> = vec![None; n];
    let mut defs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in p.iter_stmts() {
        if let Some(d) = s.def {
            defs[d.0 as usize].push(s.id.0);
        }
    }

    let mut sweep = 0usize;
    loop {
        let mut changed = false;
        for v in 0..n {
            if defs[v].is_empty() {
                continue;
            }
            let mut joined: Option<Interval> = None;
            for &d in &defs[v] {
                let s = &p.stmts[d as usize];
                let this = transfer(&s.op, &s.uses, &iv);
                joined = match (joined, this) {
                    (None, x) => x,
                    (x, None) => x,
                    (Some(a), Some(b)) => Some(a.hull(b)),
                };
            }
            if let Some(new) = joined {
                let old = iv[v];
                if old != Some(new) {
                    let widened = if sweep >= STABLE_SWEEPS && old.is_some() {
                        Interval::TOP
                    } else {
                        match old {
                            Some(o) => o.hull(new),
                            None => new,
                        }
                    };
                    if iv[v] != Some(widened) {
                        iv[v] = Some(widened);
                        changed = true;
                    }
                }
            }
        }
        sweep += 1;
        if !changed || sweep > STABLE_SWEEPS + n + 4 {
            break;
        }
    }

    // Branch pruning: a JumpI condition proven constant kills one edge.
    // The builder lays successors out as [taken, fallthrough] only when
    // both edges resolved, i.e. exactly two successors.
    let mut dead_edges = Vec::new();
    for (bi, block) in p.blocks.iter().enumerate() {
        if block.succs.len() != 2 {
            continue;
        }
        let Some(&last) = block.stmts.last() else { continue };
        let last = p.stmt(last);
        if last.op != Op::JumpI {
            continue;
        }
        let cond = match iv.get(last.uses[0].0 as usize).copied().flatten() {
            Some(c) => c,
            None => continue,
        };
        if cond.proven_nonzero() {
            dead_edges.push((BlockId(bi as u32), 1)); // fallthrough never taken
        } else if cond.proven_zero() {
            dead_edges.push((BlockId(bi as u32), 0)); // jump never taken
        }
    }

    Intervals { vars: iv, dead_edges }
}

/// The envelope a statement's def gets from its operands' envelopes.
/// Returns `None` when an operand has no envelope yet (sparse fixpoint:
/// the def stays undefined until its inputs resolve).
fn transfer(op: &Op, uses: &[Var], iv: &[Option<Interval>]) -> Option<Interval> {
    let get = |i: usize| -> Option<Interval> { iv[uses[i].0 as usize] };
    Some(match op {
        Op::Const(c) => Interval::point(*c),
        Op::Copy => get(0)?,
        Op::Bin(o) => {
            let a = get(0)?;
            let b = get(1)?;
            bin(*o, a, b)
        }
        Op::Un(Opcode::IsZero) => {
            let a = get(0)?;
            if a.proven_nonzero() {
                Interval::point(U256::ZERO)
            } else if a.proven_zero() {
                Interval::point(U256::ONE)
            } else {
                Interval::boolean()
            }
        }
        Op::Un(Opcode::Not) => match get(0)?.singleton() {
            Some(v) => Interval::point(!v),
            None => Interval::TOP,
        },
        // Everything else — environment reads, loads, hashes, call
        // results — is unconstrained.
        _ => Interval::TOP,
    })
}

/// Interval transfer for a binary op; `a` = `uses[0]` (first pop).
fn bin(op: Opcode, a: Interval, b: Interval) -> Interval {
    use Opcode::*;
    // Two known points fold exactly via EVM semantics.
    if let (Some(ca), Some(cb)) = (a.singleton(), b.singleton()) {
        if let Some(v) = super::constprop::fold_bin(op, ca, cb) {
            return Interval::point(v);
        }
    }
    match op {
        Add => match (a.hi.checked_add(b.hi), a.lo.checked_add(b.lo)) {
            (Some(hi), Some(lo)) => Interval { lo, hi },
            _ => Interval::TOP,
        },
        Sub => {
            if a.lo >= b.hi {
                // No wraparound possible anywhere in the range.
                Interval { lo: a.lo.wrapping_sub(b.hi), hi: a.hi.wrapping_sub(b.lo) }
            } else {
                Interval::TOP
            }
        }
        // Unsigned division never grows the numerator (DIV by 0 is 0).
        Div => Interval { lo: U256::ZERO, hi: a.hi },
        // MOD result is < modulus (and ≤ numerator); MOD by 0 is 0.
        Mod => {
            let hi = if b.hi.is_zero() {
                U256::ZERO
            } else {
                a.hi.min(b.hi.wrapping_sub(U256::ONE))
            };
            Interval { lo: U256::ZERO, hi }
        }
        // AND clears bits: result ≤ both operands.
        And => Interval { lo: U256::ZERO, hi: a.hi.min(b.hi) },
        // SHR is monotone in the value (b) and antitone in the shift (a).
        Shr => Interval { lo: b.lo >> a.hi, hi: b.hi >> a.lo },
        Lt => {
            if a.hi < b.lo {
                Interval::point(U256::ONE)
            } else if a.lo >= b.hi {
                Interval::point(U256::ZERO)
            } else {
                Interval::boolean()
            }
        }
        Gt => {
            if a.lo > b.hi {
                Interval::point(U256::ONE)
            } else if a.hi <= b.lo {
                Interval::point(U256::ZERO)
            } else {
                Interval::boolean()
            }
        }
        Eq => {
            // Disjoint ranges can never be equal.
            if a.hi < b.lo || b.hi < a.lo {
                Interval::point(U256::ZERO)
            } else {
                Interval::boolean()
            }
        }
        SLt | SGt => Interval::boolean(),
        _ => Interval::TOP,
    }
}
