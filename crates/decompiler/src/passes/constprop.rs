//! Sparse conditional-free constant propagation over the TAC program.
//!
//! The builder already folds constants it can see on the abstract stack;
//! this pass catches what survives block boundaries: values that become
//! constant only once block parameters are considered (every predecessor
//! binds the same constant) and operators the builder's fold table skips
//! (`MOD`, `SDIV`, `SLT`, `BYTE`, `SAR`, …). A statement whose operands
//! are all transitively constant is rewritten in place to `Op::Const`,
//! leaving its operand uses to die in the following DCE sweep.
//!
//! Verdict safety: taint sources (`CALLDATALOAD`, `CALLER`, `SLOAD`, …)
//! never produce constants, so any value this pass folds is provably
//! untainted — rewriting it to `Const` cannot erase a taint fact the
//! downstream analysis would have derived.

use crate::tac::{Op, Program, Var};
use evm::opcode::Opcode;
use evm::U256;

/// The per-variable constant value, if the variable is provably the same
/// constant on every path (`None` = unknown / not constant).
pub fn constants(p: &Program) -> Vec<Option<U256>> {
    let n = p.n_vars as usize;
    let mut consts: Vec<Option<U256>> = vec![None; n];
    // Def index: params have one defining Copy per incoming edge, other
    // vars exactly one def.
    let mut defs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in p.iter_stmts() {
        if let Some(d) = s.def {
            defs[d.0 as usize].push(s.id.0);
        }
    }
    loop {
        let mut changed = false;
        for v in 0..n {
            if consts[v].is_some() || defs[v].is_empty() {
                continue;
            }
            let mut val: Option<U256> = None;
            let mut ok = true;
            for &d in &defs[v] {
                let s = &p.stmts[d as usize];
                let this = eval(s.op.clone(), &s.uses, &consts);
                match (this, val) {
                    (Some(a), None) => val = Some(a),
                    (Some(a), Some(b)) if a == b => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                if let Some(c) = val {
                    consts[v] = Some(c);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    consts
}

/// Evaluates a statement's op over known operand constants.
fn eval(op: Op, uses: &[Var], consts: &[Option<U256>]) -> Option<U256> {
    let c = |i: usize| -> Option<U256> { consts[uses[i].0 as usize] };
    match op {
        Op::Const(v) => Some(v),
        Op::Copy => c(0),
        Op::Bin(o) => fold_bin(o, c(0)?, c(1)?),
        Op::Un(Opcode::IsZero) => Some(U256::from(c(0)?.is_zero())),
        Op::Un(Opcode::Not) => Some(!c(0)?),
        _ => None,
    }
}

/// EVM semantics for every binary operator, with the builder's operand
/// convention: `a` = `uses[0]` (first pop), `b` = `uses[1]`.
pub(super) fn fold_bin(op: Opcode, a: U256, b: U256) -> Option<U256> {
    use Opcode::*;
    Some(match op {
        Add => a.wrapping_add(b),
        Mul => a.wrapping_mul(b),
        Sub => a.wrapping_sub(b),
        Div => a / b,
        SDiv => a.sdiv(b),
        Mod => a % b,
        SMod => a.smod(b),
        Exp => a.wrapping_pow(b),
        SignExtend => b.signextend(a),
        Lt => U256::from(a < b),
        Gt => U256::from(a > b),
        SLt => U256::from(a.slt(b)),
        SGt => U256::from(a.sgt(b)),
        Eq => U256::from(a == b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Byte => b.byte_msb(a),
        Shl => b << a,
        Shr => b >> a,
        Sar => b.sar(a),
        _ => return None,
    })
}

/// Rewrites every `Bin`/`Un` statement with all-constant operands to the
/// folded `Op::Const`. Returns the number of statements folded.
pub fn propagate(p: &mut Program) -> usize {
    let consts = constants(p);
    let mut folded = 0usize;
    for s in &mut p.stmts {
        let foldable = matches!(s.op, Op::Bin(_) | Op::Un(Opcode::IsZero) | Op::Un(Opcode::Not));
        if !foldable || s.def.is_none() {
            continue;
        }
        if let Some(v) = eval(s.op.clone(), &s.uses, &consts) {
            s.op = Op::Const(v);
            s.uses.clear();
            folded += 1;
        }
    }
    folded
}
