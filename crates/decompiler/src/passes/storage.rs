//! Per-public-function storage access summaries.
//!
//! For each dispatched [`PublicFunction`](crate::tac::PublicFunction),
//! collects the constant storage slots and mapping bases it may read or
//! write, walking the blocks reachable from the function's entry. Keys
//! the constant analysis cannot resolve set the `unknown_*` flags, so a
//! consumer treating a summary as exhaustive stays sound by widening on
//! those flags.
//!
//! `ethainter::analysis` consumes the write summaries as a pre-filter
//! for owner-variable sink inference: a contract where no dispatched
//! function can possibly write a guard slot cannot have a tainted-owner
//! flow, and the per-statement scan is skipped.

use crate::tac::{Op, Program};
use evm::U256;

use super::constprop;

/// Storage accesses one public function may perform.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionStorage {
    /// The function's 4-byte selector.
    pub selector: u32,
    /// Constant slots read via `SLOAD`.
    pub reads: Vec<U256>,
    /// Constant slots written via `SSTORE`.
    pub writes: Vec<U256>,
    /// Mapping bases read (key is `Hash2(_, base)` with constant base).
    pub read_mappings: Vec<U256>,
    /// Mapping bases written.
    pub write_mappings: Vec<U256>,
    /// Some read key could not be resolved to a slot or mapping base.
    pub unknown_reads: bool,
    /// Some write key could not be resolved — consumers must assume the
    /// function can write *any* slot.
    pub unknown_writes: bool,
}

impl FunctionStorage {
    /// True when the function may write `slot` (conservatively true
    /// under `unknown_writes`).
    pub fn may_write(&self, slot: U256) -> bool {
        self.unknown_writes || self.writes.contains(&slot) || self.write_mappings.contains(&slot)
    }
}

/// Summarizes storage accesses for every discovered public function.
/// Statements in blocks not owned by any function (the dispatcher
/// prologue, fallback paths) are attributed to every function, since
/// every call traverses them.
pub fn summarize(p: &Program) -> Vec<FunctionStorage> {
    let consts = constprop::constants(p);
    let mut defs: Vec<Vec<u32>> = vec![Vec::new(); p.n_vars as usize];
    for s in p.iter_stmts() {
        if let Some(d) = s.def {
            defs[d.0 as usize].push(s.id.0);
        }
    }
    // Resolve an access key: Some((slot/base, is_mapping)) or None.
    // Copy chains are followed only through unique defs; a block
    // parameter fed different hashes by different predecessors stays
    // unresolved (sound: it sets the unknown flag).
    let resolve = |key: crate::tac::Var| -> Option<(U256, bool)> {
        if let Some(c) = consts[key.0 as usize] {
            return Some((c, false));
        }
        let mut k = key;
        for _ in 0..16 {
            let [d] = defs[k.0 as usize][..] else { return None };
            let def = &p.stmts[d as usize];
            match def.op {
                Op::Copy => k = def.uses[0],
                Op::Hash2 => {
                    let base = consts[def.uses[1].0 as usize]?;
                    return Some((base, true));
                }
                _ => return None,
            }
        }
        None
    };

    let mut out: Vec<FunctionStorage> = p
        .functions
        .iter()
        .map(|f| FunctionStorage { selector: f.selector, ..FunctionStorage::default() })
        .collect();
    if out.is_empty() {
        return out;
    }
    let index_of: std::collections::HashMap<u32, usize> =
        out.iter().enumerate().map(|(i, f)| (f.selector, i)).collect();

    for s in p.iter_stmts() {
        let (is_read, key) = match s.op {
            Op::SLoad => (true, s.uses[0]),
            Op::SStore => (false, s.uses[0]),
            _ => continue,
        };
        let owners = &p.block_functions[s.block.0 as usize];
        let targets: Vec<usize> = if owners.is_empty() {
            (0..out.len()).collect()
        } else {
            owners.iter().filter_map(|sel| index_of.get(sel).copied()).collect()
        };
        let resolved = resolve(key);
        for t in targets {
            let f = &mut out[t];
            match resolved {
                Some((slot, false)) => {
                    let list = if is_read { &mut f.reads } else { &mut f.writes };
                    if !list.contains(&slot) {
                        list.push(slot);
                    }
                }
                Some((base, true)) => {
                    let list =
                        if is_read { &mut f.read_mappings } else { &mut f.write_mappings };
                    if !list.contains(&base) {
                        list.push(base);
                    }
                }
                None => {
                    if is_read {
                        f.unknown_reads = true;
                    } else {
                        f.unknown_writes = true;
                    }
                }
            }
        }
    }
    for f in &mut out {
        f.reads.sort_unstable();
        f.writes.sort_unstable();
        f.read_mappings.sort_unstable();
        f.write_mappings.sort_unstable();
    }
    out
}
