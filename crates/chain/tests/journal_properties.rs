//! Property tests for the state journal: arbitrary interleavings of
//! mutations, snapshots, and rollbacks must behave exactly like a model
//! that clones full state snapshots.

use chain::State;
use evm::{Address, U256, World};
use proptest::prelude::*;
use std::collections::HashMap;

/// Operations the property explores.
#[derive(Clone, Debug)]
enum Op {
    SetStorage(u8, u8, u64),
    Transfer(u8, u8, u64),
    SetBalance(u8, u64),
    SelfDestruct(u8, u8),
    SetCode(u8, Vec<u8>),
    IncNonce(u8),
    Log(u8),
    Snapshot,
    /// Roll back to the i-th open snapshot (modulo how many exist).
    Revert(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u64>()).prop_map(|(a, k, v)| Op::SetStorage(a % 4, k % 4, v)),
        (any::<u8>(), any::<u8>(), 0u64..500).prop_map(|(a, b, v)| Op::Transfer(a % 4, b % 4, v)),
        (any::<u8>(), 0u64..1000).prop_map(|(a, v)| Op::SetBalance(a % 4, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::SelfDestruct(a % 4, b % 4)),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..4))
            .prop_map(|(a, c)| Op::SetCode(a % 4, c)),
        any::<u8>().prop_map(|a| Op::IncNonce(a % 4)),
        any::<u8>().prop_map(|a| Op::Log(a % 4)),
        Just(Op::Snapshot),
        any::<u8>().prop_map(Op::Revert),
    ]
}

/// A reference model: full deep snapshots.
#[derive(Clone, Default, PartialEq, Debug)]
struct Model {
    balances: HashMap<u8, U256>,
    storage: HashMap<(u8, u8), U256>,
    codes: HashMap<u8, Vec<u8>>,
    nonces: HashMap<u8, u64>,
    destroyed: Vec<u8>,
    logs: usize,
}

fn addr(i: u8) -> Address {
    Address::from_low_u64(i as u64 + 1)
}

fn apply_model(m: &mut Model, op: &Op) {
    match op {
        Op::SetStorage(a, k, v) => {
            m.storage.insert((*a, *k), U256::from(*v));
        }
        Op::Transfer(a, b, v) => {
            let fb = m.balances.get(a).copied().unwrap_or(U256::ZERO);
            let val = U256::from(*v);
            if fb >= val && !val.is_zero() {
                let tb = m.balances.get(b).copied().unwrap_or(U256::ZERO);
                m.balances.insert(*a, fb.wrapping_sub(val));
                // Self-transfer must not create money.
                if a == b {
                    m.balances.insert(*b, fb);
                } else {
                    m.balances.insert(*b, tb.wrapping_add(val));
                }
            }
        }
        Op::SetBalance(a, v) => {
            m.balances.insert(*a, U256::from(*v));
        }
        Op::SelfDestruct(a, b) => {
            let bal = m.balances.get(a).copied().unwrap_or(U256::ZERO);
            if a != b {
                let tb = m.balances.get(b).copied().unwrap_or(U256::ZERO);
                m.balances.insert(*a, U256::ZERO);
                m.balances.insert(*b, tb.wrapping_add(bal));
            }
            if !m.destroyed.contains(a) {
                m.destroyed.push(*a);
            }
        }
        Op::SetCode(a, c) => {
            m.codes.insert(*a, c.clone());
        }
        Op::IncNonce(a) => {
            *m.nonces.entry(*a).or_insert(0) += 1;
        }
        Op::Log(_) => m.logs += 1,
        Op::Snapshot | Op::Revert(_) => unreachable!("handled by driver"),
    }
}

fn apply_state(s: &mut State, op: &Op) {
    match op {
        Op::SetStorage(a, k, v) => {
            s.storage_set(addr(*a), U256::from(*k), U256::from(*v))
        }
        Op::Transfer(a, b, v) => {
            let _ = s.transfer(addr(*a), addr(*b), U256::from(*v));
        }
        Op::SetBalance(a, v) => s.set_balance(addr(*a), U256::from(*v)),
        Op::SelfDestruct(a, b) => s.selfdestruct(addr(*a), addr(*b)),
        Op::SetCode(a, c) => s.set_code(addr(*a), c.clone()),
        Op::IncNonce(a) => s.increment_nonce(addr(*a)),
        Op::Log(a) => s.log(addr(*a), vec![U256::ONE], vec![*a]),
        Op::Snapshot | Op::Revert(_) => unreachable!("handled by driver"),
    }
}

fn check_equal(s: &State, m: &Model) -> Result<(), TestCaseError> {
    for a in 0..4u8 {
        prop_assert_eq!(
            s.balance(addr(a)),
            m.balances.get(&a).copied().unwrap_or(U256::ZERO),
            "balance of {}", a
        );
        for k in 0..4u8 {
            prop_assert_eq!(
                s.storage_get(addr(a), U256::from(k)),
                m.storage.get(&(a, k)).copied().unwrap_or(U256::ZERO),
                "storage {}/{}", a, k
            );
        }
        prop_assert_eq!(s.nonce(addr(a)), m.nonces.get(&a).copied().unwrap_or(0));
        prop_assert_eq!(s.is_destroyed(addr(a)), m.destroyed.contains(&a), "destroyed {}", a);
        // code() returns empty for destroyed accounts.
        let want_code = if m.destroyed.contains(&a) {
            Vec::new()
        } else {
            m.codes.get(&a).cloned().unwrap_or_default()
        };
        prop_assert_eq!(s.code(addr(a)), want_code, "code of {}", a);
    }
    prop_assert_eq!(s.logs().len(), m.logs);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn journal_matches_snapshot_model(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut state = State::new();
        let mut model = Model::default();
        // Open snapshots: (journal checkpoint, model clone).
        let mut stack: Vec<(usize, Model)> = Vec::new();

        for op in &ops {
            match op {
                Op::Snapshot => {
                    let cp = state.snapshot();
                    stack.push((cp, model.clone()));
                }
                Op::Revert(i) => {
                    if stack.is_empty() {
                        continue;
                    }
                    let idx = (*i as usize) % stack.len();
                    let (cp, m) = stack[idx].clone();
                    stack.truncate(idx);
                    state.revert_to(cp);
                    model = m;
                }
                other => {
                    apply_state(&mut state, other);
                    apply_model(&mut model, other);
                }
            }
        }
        check_equal(&state, &model)?;
    }
}
