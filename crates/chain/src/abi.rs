//! Minimal Solidity ABI helpers: 4-byte selectors plus 32-byte-word
//! arguments (the static-argument subset the corpus uses).

use evm::{selector, Address, U256};

/// Encodes a call to `sig` (e.g. `"kill()"`, `"setOwner(address)"`)
/// with word-sized arguments.
///
/// # Examples
///
/// ```
/// use chain::abi::encode_call;
/// use evm::U256;
/// let data = encode_call("setOwner(address)", &[U256::from(0xbeefu64)]);
/// assert_eq!(data.len(), 4 + 32);
/// ```
pub fn encode_call(sig: &str, args: &[U256]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 32 * args.len());
    out.extend_from_slice(&selector(sig));
    for arg in args {
        out.extend_from_slice(&arg.to_be_bytes());
    }
    out
}

/// Encodes a call passing an address argument (convenience).
pub fn encode_call_addr(sig: &str, addr: Address) -> Vec<u8> {
    encode_call(sig, &[addr.to_u256()])
}

/// Decodes a single word-sized return value; `None` when the output is
/// shorter than 32 bytes.
pub fn decode_word(output: &[u8]) -> Option<U256> {
    if output.len() < 32 {
        return None;
    }
    Some(U256::from_be_slice(&output[..32]))
}

/// Splits calldata into `(selector, word args)`; ragged tail bytes are
/// zero-padded into a final word.
pub fn decode_call(data: &[u8]) -> Option<([u8; 4], Vec<U256>)> {
    if data.len() < 4 {
        return None;
    }
    let mut sel = [0u8; 4];
    sel.copy_from_slice(&data[..4]);
    let mut args = Vec::new();
    let mut rest = &data[4..];
    while !rest.is_empty() {
        let take = rest.len().min(32);
        let mut word = [0u8; 32];
        word[..take].copy_from_slice(&rest[..take]);
        args.push(U256::from_be_bytes(word));
        rest = &rest[take..];
    }
    Some((sel, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let data = encode_call("foo(uint256,uint256)", &[U256::from(1u64), U256::from(2u64)]);
        let (sel, args) = decode_call(&data).unwrap();
        assert_eq!(sel, selector("foo(uint256,uint256)"));
        assert_eq!(args, vec![U256::from(1u64), U256::from(2u64)]);
    }

    #[test]
    fn decode_word_requires_32_bytes() {
        assert_eq!(decode_word(&[0u8; 31]), None);
        assert_eq!(decode_word(&U256::from(9u64).to_be_bytes()), Some(U256::from(9u64)));
    }

    #[test]
    fn short_calldata_is_rejected() {
        assert!(decode_call(&[1, 2, 3]).is_none());
    }

    #[test]
    fn address_arg_is_right_aligned() {
        let a = Address::from_low_u64(0xbeef);
        let data = encode_call_addr("setOwner(address)", a);
        assert_eq!(data[4 + 31], 0xef);
        assert_eq!(data[4 + 30], 0xbe);
        assert_eq!(data[4], 0);
    }
}
