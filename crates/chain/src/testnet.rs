//! A single-node test network: deploys contracts, executes transactions,
//! mines (logical) blocks, and supports private forks — the substrate for
//! the Ethainter-Kill experiment (the paper used a private fork of the
//! Ropsten testnet).

use crate::state::{LogRecord, State};
use evm::interp::{execute, CallParams, Outcome, Trace};
use evm::{Address, U256, World};

/// Result of one executed transaction.
#[derive(Clone, Debug)]
pub struct Receipt {
    /// True when the transaction committed (return or selfdestruct).
    pub success: bool,
    /// Return or revert payload.
    pub output: Vec<u8>,
    /// Gas consumed.
    pub gas_used: u64,
    /// Full frame outcome.
    pub outcome: Outcome,
    /// Instruction trace (recorded when requested).
    pub trace: Trace,
}

/// A deterministic in-process Ethereum test network.
///
/// # Examples
///
/// ```
/// use chain::TestNet;
/// use evm::{Address, U256};
/// let mut net = TestNet::new();
/// let alice = net.funded_account(U256::from(1_000_000u64));
/// // Deploy a contract whose runtime code is a bare STOP.
/// let contract = net.deploy(alice, vec![0x00]);
/// let receipt = net.call(alice, contract, vec![], U256::ZERO);
/// assert!(receipt.success);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TestNet {
    state: State,
    block_number: u64,
    timestamp: u64,
    next_account_seed: u64,
    gas_limit: u64,
}

/// [`State`] plus the chain's block environment: the `World` handed to
/// the interpreter so `NUMBER`/`TIMESTAMP` observe the network clock
/// (and [`TestNet::warp_to`] actually changes executed behavior) while
/// everything stateful delegates to the journaled [`State`].
struct BlockEnv<'a> {
    state: &'a mut State,
    block_number: u64,
    timestamp: u64,
}

impl World for BlockEnv<'_> {
    fn balance(&self, address: Address) -> U256 {
        self.state.balance(address)
    }
    fn code(&self, address: Address) -> Vec<u8> {
        self.state.code(address)
    }
    fn storage_get(&self, address: Address, key: U256) -> U256 {
        self.state.storage_get(address, key)
    }
    fn storage_set(&mut self, address: Address, key: U256, value: U256) {
        self.state.storage_set(address, key, value)
    }
    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        self.state.transfer(from, to, value)
    }
    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        self.state.selfdestruct(address, beneficiary)
    }
    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        self.state.set_code(address, code)
    }
    fn nonce(&self, address: Address) -> u64 {
        self.state.nonce(address)
    }
    fn increment_nonce(&mut self, address: Address) {
        self.state.increment_nonce(address)
    }
    fn log(&mut self, address: Address, topics: Vec<U256>, data: Vec<u8>) {
        self.state.log(address, topics, data)
    }
    fn snapshot(&mut self) -> usize {
        self.state.snapshot()
    }
    fn revert_to(&mut self, snapshot: usize) {
        self.state.revert_to(snapshot)
    }
    fn block_number(&self) -> u64 {
        self.block_number
    }
    fn block_timestamp(&self) -> u64 {
        self.timestamp
    }
}

impl TestNet {
    /// A fresh, empty network.
    pub fn new() -> Self {
        TestNet {
            state: State::new(),
            block_number: 1,
            timestamp: 1_600_000_000,
            next_account_seed: 1,
            gas_limit: 10_000_000,
        }
    }

    /// Read access to the underlying state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Mutable access to the underlying state (genesis setup, tests).
    pub fn state_mut(&mut self) -> &mut State {
        &mut self.state
    }

    /// Current block number.
    pub fn block_number(&self) -> u64 {
        self.block_number
    }

    /// Current block timestamp.
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Fast-forwards the chain clock to `timestamp` (no effect if it is
    /// already past), advancing the block number accordingly — the
    /// deadline-probing primitive behind timestamp-dependence
    /// demonstrations.
    pub fn warp_to(&mut self, timestamp: u64) {
        if timestamp > self.timestamp {
            self.block_number += (timestamp - self.timestamp).div_ceil(13).max(1);
            self.timestamp = timestamp;
        }
    }

    /// Sets the per-transaction gas limit.
    pub fn set_gas_limit(&mut self, gas: u64) {
        self.gas_limit = gas;
    }

    /// Creates a fresh externally-owned account with `balance`.
    pub fn funded_account(&mut self, balance: U256) -> Address {
        let addr = Address::from_seed(self.next_account_seed);
        self.next_account_seed += 1;
        self.state.set_balance(addr, balance);
        self.state.commit();
        addr
    }

    /// Deploys `runtime_code` directly (no constructor), returning the
    /// new contract's address. Mirrors how analysis corpora are staged.
    pub fn deploy(&mut self, deployer: Address, runtime_code: Vec<u8>) -> Address {
        let nonce = self.state.nonce(deployer);
        self.state.increment_nonce(deployer);
        let address = Address::create(deployer, nonce);
        self.state.set_code(address, runtime_code);
        self.state.commit();
        self.block_number += 1;
        self.timestamp += 13;
        address
    }

    /// Deploys a contract by **executing its init code** (the real
    /// deployment path): the init frame runs against the new account,
    /// applies its constructor stores, and its return data becomes the
    /// runtime code.
    ///
    /// Returns `None` when the init code reverts or errors.
    pub fn deploy_init(&mut self, deployer: Address, init_code: Vec<u8>) -> Option<Address> {
        let snapshot = self.state.snapshot();
        let nonce = self.state.nonce(deployer);
        self.state.increment_nonce(deployer);
        let address = Address::create(deployer, nonce);
        self.state.set_code(address, init_code);
        let params = CallParams {
            caller: deployer,
            address,
            code_address: address,
            origin: deployer,
            value: U256::ZERO,
            data: Vec::new(),
            gas: self.gas_limit,
            is_static: false,
            depth: 0,
        };
        let mut trace = Trace::default();
        let mut env = BlockEnv {
            state: &mut self.state,
            block_number: self.block_number,
            timestamp: self.timestamp,
        };
        let exec = execute(&mut env, params, &mut trace);
        match exec.outcome {
            Outcome::Return(runtime) => {
                self.state.set_code(address, runtime);
                self.state.commit();
                self.block_number += 1;
                self.timestamp += 13;
                Some(address)
            }
            _ => {
                self.state.revert_to(snapshot);
                None
            }
        }
    }

    /// Deploys `runtime_code` at a caller-chosen address (corpus staging).
    pub fn deploy_at(&mut self, address: Address, runtime_code: Vec<u8>) {
        self.state.set_code(address, runtime_code);
        self.state.commit();
    }

    /// Executes a transaction without tracing.
    pub fn call(&mut self, from: Address, to: Address, data: Vec<u8>, value: U256) -> Receipt {
        self.execute_tx(from, to, data, value, false)
    }

    /// Executes a transaction, recording the instruction trace
    /// (used by Ethainter-Kill to verify `SELFDESTRUCT` execution).
    pub fn call_traced(
        &mut self,
        from: Address,
        to: Address,
        data: Vec<u8>,
        value: U256,
    ) -> Receipt {
        self.execute_tx(from, to, data, value, true)
    }

    fn execute_tx(
        &mut self,
        from: Address,
        to: Address,
        data: Vec<u8>,
        value: U256,
        traced: bool,
    ) -> Receipt {
        let snapshot = self.state.snapshot();
        self.state.increment_nonce(from);

        if !value.is_zero() && !self.state.transfer(from, to, value) {
            self.state.revert_to(snapshot);
            return Receipt {
                success: false,
                output: Vec::new(),
                gas_used: 0,
                outcome: Outcome::Error(evm::VmError::InsufficientBalance),
                trace: Trace::default(),
            };
        }

        let mut trace = if traced { Trace::recording() } else { Trace::default() };
        let params = CallParams {
            caller: from,
            address: to,
            code_address: to,
            origin: from,
            value,
            data,
            gas: self.gas_limit,
            is_static: false,
            depth: 0,
        };
        let mut env = BlockEnv {
            state: &mut self.state,
            block_number: self.block_number,
            timestamp: self.timestamp,
        };
        let exec = execute(&mut env, params, &mut trace);

        let (success, output) = match &exec.outcome {
            Outcome::Return(data) => (true, data.clone()),
            Outcome::SelfDestruct(_) => (true, Vec::new()),
            Outcome::Revert(data) => (false, data.clone()),
            Outcome::Error(_) => (false, Vec::new()),
        };
        if success {
            self.state.commit();
        } else {
            self.state.revert_to(snapshot);
        }
        self.block_number += 1;
        self.timestamp += 13;
        Receipt { success, output, gas_used: exec.gas_used, outcome: exec.outcome, trace }
    }

    /// Clones the network into a private fork: subsequent transactions on
    /// the fork leave this network untouched.
    pub fn fork(&self) -> TestNet {
        self.clone()
    }

    /// True once `address` has self-destructed.
    pub fn is_destroyed(&self, address: Address) -> bool {
        self.state.is_destroyed(address)
    }

    /// Balance convenience accessor.
    pub fn balance(&self, address: Address) -> U256 {
        self.state.balance(address)
    }

    /// Logs emitted so far.
    pub fn logs(&self) -> &[LogRecord] {
        self.state.logs()
    }
}

impl World for TestNet {
    fn balance(&self, address: Address) -> U256 {
        self.state.balance(address)
    }
    fn code(&self, address: Address) -> Vec<u8> {
        self.state.code(address)
    }
    fn storage_get(&self, address: Address, key: U256) -> U256 {
        self.state.storage_get(address, key)
    }
    fn storage_set(&mut self, address: Address, key: U256, value: U256) {
        self.state.storage_set(address, key, value)
    }
    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        self.state.transfer(from, to, value)
    }
    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        self.state.selfdestruct(address, beneficiary)
    }
    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        self.state.set_code(address, code)
    }
    fn nonce(&self, address: Address) -> u64 {
        self.state.nonce(address)
    }
    fn increment_nonce(&mut self, address: Address) {
        self.state.increment_nonce(address)
    }
    fn log(&mut self, address: Address, topics: Vec<U256>, data: Vec<u8>) {
        self.state.log(address, topics, data)
    }
    fn snapshot(&mut self) -> usize {
        self.state.snapshot()
    }
    fn revert_to(&mut self, snapshot: usize) {
        self.state.revert_to(snapshot)
    }
    fn block_number(&self) -> u64 {
        self.block_number
    }
    fn block_timestamp(&self) -> u64 {
        self.timestamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evm::asm::Asm;
    use evm::opcode::Opcode;

    #[test]
    fn value_transfer_to_eoa() {
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(100u64));
        let bob = net.funded_account(U256::ZERO);
        let r = net.call(alice, bob, vec![], U256::from(40u64));
        assert!(r.success);
        assert_eq!(net.balance(bob), U256::from(40u64));
        assert_eq!(net.balance(alice), U256::from(60u64));
    }

    #[test]
    fn insufficient_balance_fails_without_side_effects() {
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(10u64));
        let bob = net.funded_account(U256::ZERO);
        let r = net.call(alice, bob, vec![], U256::from(40u64));
        assert!(!r.success);
        assert_eq!(net.balance(bob), U256::ZERO);
    }

    /// Runtime code: stores CALLVALUE at slot 0, then returns it.
    fn store_value_contract() -> Vec<u8> {
        let mut a = Asm::new();
        a.op(Opcode::CallValue)
            .push(U256::ZERO)
            .op(Opcode::SStore)
            .push(U256::ZERO)
            .op(Opcode::SLoad)
            .push(U256::ZERO)
            .op(Opcode::MStore)
            .push(U256::from(32u64))
            .push(U256::ZERO)
            .op(Opcode::Return);
        a.assemble()
    }

    #[test]
    fn contract_execution_and_storage_commit() {
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(1000u64));
        let c = net.deploy(alice, store_value_contract());
        let r = net.call(alice, c, vec![], U256::from(7u64));
        assert!(r.success);
        assert_eq!(U256::from_be_slice(&r.output), U256::from(7u64));
        assert_eq!(net.state().storage_get(c, U256::ZERO), U256::from(7u64));
    }

    #[test]
    fn revert_rolls_back_storage() {
        // SSTORE(0, 1) then REVERT.
        let mut a = Asm::new();
        a.push(U256::ONE)
            .push(U256::ZERO)
            .op(Opcode::SStore)
            .push(U256::ZERO)
            .push(U256::ZERO)
            .op(Opcode::Revert);
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(1000u64));
        let c = net.deploy(alice, a.assemble());
        let r = net.call(alice, c, vec![], U256::ZERO);
        assert!(!r.success);
        assert_eq!(net.state().storage_get(c, U256::ZERO), U256::ZERO);
    }

    #[test]
    fn selfdestruct_contract_destroys_and_pays_out() {
        // SELFDESTRUCT(CALLER)
        let mut a = Asm::new();
        a.op(Opcode::Caller).op(Opcode::SelfDestruct);
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(1000u64));
        let c = net.deploy(alice, a.assemble());
        // Fund the contract.
        net.call(alice, c, vec![0xde], U256::from(500u64));
        // Note: call with data executes code, which selfdestructs immediately.
        assert!(net.is_destroyed(c));
        assert_eq!(net.balance(alice), U256::from(1000u64));
    }

    #[test]
    fn trace_records_selfdestruct_opcode() {
        let mut a = Asm::new();
        a.op(Opcode::Caller).op(Opcode::SelfDestruct);
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(10u64));
        let c = net.deploy(alice, a.assemble());
        let r = net.call_traced(alice, c, vec![], U256::ZERO);
        assert!(r.success);
        assert!(r.trace.executed(Opcode::SelfDestruct));
    }

    #[test]
    fn fork_is_isolated() {
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(100u64));
        let mut a = Asm::new();
        a.op(Opcode::Caller).op(Opcode::SelfDestruct);
        let c = net.deploy(alice, a.assemble());

        let mut fork = net.fork();
        fork.call(alice, c, vec![], U256::ZERO);
        assert!(fork.is_destroyed(c));
        assert!(!net.is_destroyed(c));
    }

    #[test]
    fn destroyed_contract_stops_executing() {
        let mut a = Asm::new();
        a.op(Opcode::Caller).op(Opcode::SelfDestruct);
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(100u64));
        let c = net.deploy(alice, a.assemble());
        net.call(alice, c, vec![], U256::ZERO);
        assert!(net.is_destroyed(c));
        // Subsequent call behaves like an EOA call (no code).
        let r = net.call_traced(alice, c, vec![], U256::ZERO);
        assert!(r.success);
        assert!(r.trace.steps.is_empty());
    }

    #[test]
    fn block_number_advances() {
        let mut net = TestNet::new();
        let alice = net.funded_account(U256::from(100u64));
        let n0 = net.block_number();
        net.call(alice, alice, vec![], U256::ZERO);
        assert!(net.block_number() > n0);
    }
}
