//! Journaled world state: accounts, balances, storage, code.
//!
//! Every mutation is recorded in a journal so nested message calls can
//! roll back on `REVERT` — the [`evm::World`] snapshot/revert contract.

use evm::{Address, U256, World};
use std::collections::HashMap;

/// One Ethereum account.
#[derive(Clone, Debug, Default)]
pub struct Account {
    /// Balance in wei.
    pub balance: U256,
    /// Transaction / creation nonce.
    pub nonce: u64,
    /// Runtime bytecode (empty for externally-owned accounts).
    pub code: Vec<u8>,
    /// Persistent storage.
    pub storage: HashMap<U256, U256>,
    /// Set once `SELFDESTRUCT` commits; the code stops executing.
    pub destroyed: bool,
}

/// A log record emitted by `LOG0`..`LOG4`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics.
    pub topics: Vec<U256>,
    /// Unindexed payload.
    pub data: Vec<u8>,
}

#[derive(Clone, Debug)]
enum JournalEntry {
    StorageSet { address: Address, key: U256, prev: U256 },
    BalanceSet { address: Address, prev: U256 },
    NonceSet { address: Address, prev: u64 },
    CodeSet { address: Address, prev: Vec<u8> },
    Destroyed { address: Address, prev: bool },
    LogAppended,
}

/// The journaled world state.
///
/// # Examples
///
/// ```
/// use chain::State;
/// use evm::{Address, U256, World};
/// let mut s = State::new();
/// let a = Address::from_low_u64(1);
/// let snap = s.snapshot();
/// s.storage_set(a, U256::ONE, U256::from(7u64));
/// s.revert_to(snap);
/// assert_eq!(s.storage_get(a, U256::ONE), U256::ZERO);
/// ```
#[derive(Clone, Debug, Default)]
pub struct State {
    accounts: HashMap<Address, Account>,
    journal: Vec<JournalEntry>,
    logs: Vec<LogRecord>,
}

impl State {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-only view of an account, if it exists.
    pub fn account(&self, address: Address) -> Option<&Account> {
        self.accounts.get(&address)
    }

    /// All logs emitted so far (across transactions).
    pub fn logs(&self) -> &[LogRecord] {
        &self.logs
    }

    /// True once the account has self-destructed.
    pub fn is_destroyed(&self, address: Address) -> bool {
        self.accounts.get(&address).is_some_and(|a| a.destroyed)
    }

    /// Sets a balance directly (test/genesis convenience; journaled).
    pub fn set_balance(&mut self, address: Address, balance: U256) {
        let prev = self.balance(address);
        self.journal.push(JournalEntry::BalanceSet { address, prev });
        self.accounts.entry(address).or_default().balance = balance;
    }

    /// Discards the journal, making all current state permanent.
    ///
    /// Call between transactions: earlier snapshots become invalid.
    pub fn commit(&mut self) {
        self.journal.clear();
    }

    fn entry(&mut self, address: Address) -> &mut Account {
        self.accounts.entry(address).or_default()
    }
}

impl World for State {
    fn balance(&self, address: Address) -> U256 {
        self.accounts.get(&address).map(|a| a.balance).unwrap_or(U256::ZERO)
    }

    fn code(&self, address: Address) -> Vec<u8> {
        match self.accounts.get(&address) {
            Some(a) if !a.destroyed => a.code.clone(),
            _ => Vec::new(),
        }
    }

    fn storage_get(&self, address: Address, key: U256) -> U256 {
        self.accounts
            .get(&address)
            .and_then(|a| a.storage.get(&key))
            .copied()
            .unwrap_or(U256::ZERO)
    }

    fn storage_set(&mut self, address: Address, key: U256, value: U256) {
        let prev = self.storage_get(address, key);
        self.journal.push(JournalEntry::StorageSet { address, key, prev });
        self.entry(address).storage.insert(key, value);
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_bal = self.balance(from);
        let Some(new_from) = from_bal.checked_sub(value) else {
            return false;
        };
        // A self-transfer must not mint: the debit and credit would
        // otherwise read the same pre-state balance.
        if from == to {
            return true;
        }
        let to_bal = self.balance(to);
        self.journal.push(JournalEntry::BalanceSet { address: from, prev: from_bal });
        self.journal.push(JournalEntry::BalanceSet { address: to, prev: to_bal });
        self.entry(from).balance = new_from;
        self.entry(to).balance = to_bal.wrapping_add(value);
        true
    }

    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        let bal = self.balance(address);
        if address != beneficiary {
            self.transfer(address, beneficiary, bal);
        }
        let prev = self.is_destroyed(address);
        self.journal.push(JournalEntry::Destroyed { address, prev });
        self.entry(address).destroyed = true;
    }

    fn set_code(&mut self, address: Address, code: Vec<u8>) {
        let prev = self.accounts.get(&address).map(|a| a.code.clone()).unwrap_or_default();
        self.journal.push(JournalEntry::CodeSet { address, prev });
        self.entry(address).code = code;
    }

    fn nonce(&self, address: Address) -> u64 {
        self.accounts.get(&address).map(|a| a.nonce).unwrap_or(0)
    }

    fn increment_nonce(&mut self, address: Address) {
        let prev = self.nonce(address);
        self.journal.push(JournalEntry::NonceSet { address, prev });
        self.entry(address).nonce = prev + 1;
    }

    fn log(&mut self, address: Address, topics: Vec<U256>, data: Vec<u8>) {
        self.journal.push(JournalEntry::LogAppended);
        self.logs.push(LogRecord { address, topics, data });
    }

    fn snapshot(&mut self) -> usize {
        self.journal.len()
    }

    fn revert_to(&mut self, snapshot: usize) {
        while self.journal.len() > snapshot {
            match self.journal.pop().expect("journal shorter than snapshot") {
                JournalEntry::StorageSet { address, key, prev } => {
                    self.entry(address).storage.insert(key, prev);
                }
                JournalEntry::BalanceSet { address, prev } => {
                    self.entry(address).balance = prev;
                }
                JournalEntry::NonceSet { address, prev } => {
                    self.entry(address).nonce = prev;
                }
                JournalEntry::CodeSet { address, prev } => {
                    self.entry(address).code = prev;
                }
                JournalEntry::Destroyed { address, prev } => {
                    self.entry(address).destroyed = prev;
                }
                JournalEntry::LogAppended => {
                    self.logs.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    #[test]
    fn storage_revert_restores_previous_value() {
        let mut s = State::new();
        s.storage_set(a(1), U256::ONE, U256::from(10u64));
        let snap = s.snapshot();
        s.storage_set(a(1), U256::ONE, U256::from(20u64));
        s.storage_set(a(1), U256::from(2u64), U256::from(30u64));
        s.revert_to(snap);
        assert_eq!(s.storage_get(a(1), U256::ONE), U256::from(10u64));
        assert_eq!(s.storage_get(a(1), U256::from(2u64)), U256::ZERO);
    }

    #[test]
    fn transfer_moves_and_checks_balance() {
        let mut s = State::new();
        s.set_balance(a(1), U256::from(100u64));
        assert!(s.transfer(a(1), a(2), U256::from(60u64)));
        assert_eq!(s.balance(a(1)), U256::from(40u64));
        assert_eq!(s.balance(a(2)), U256::from(60u64));
        assert!(!s.transfer(a(1), a(2), U256::from(41u64)));
        assert_eq!(s.balance(a(1)), U256::from(40u64));
    }

    #[test]
    fn transfer_reverts_cleanly() {
        let mut s = State::new();
        s.set_balance(a(1), U256::from(100u64));
        let snap = s.snapshot();
        s.transfer(a(1), a(2), U256::from(60u64));
        s.revert_to(snap);
        assert_eq!(s.balance(a(1)), U256::from(100u64));
        assert_eq!(s.balance(a(2)), U256::ZERO);
    }

    #[test]
    fn selfdestruct_credits_beneficiary_and_clears_code() {
        let mut s = State::new();
        s.set_code(a(1), vec![0x00]);
        s.set_balance(a(1), U256::from(5u64));
        s.selfdestruct(a(1), a(2));
        assert!(s.is_destroyed(a(1)));
        assert!(s.code(a(1)).is_empty());
        assert_eq!(s.balance(a(2)), U256::from(5u64));
        assert_eq!(s.balance(a(1)), U256::ZERO);
    }

    #[test]
    fn selfdestruct_reverts() {
        let mut s = State::new();
        s.set_code(a(1), vec![0x00]);
        s.set_balance(a(1), U256::from(5u64));
        let snap = s.snapshot();
        s.selfdestruct(a(1), a(2));
        s.revert_to(snap);
        assert!(!s.is_destroyed(a(1)));
        assert_eq!(s.code(a(1)), vec![0x00]);
        assert_eq!(s.balance(a(1)), U256::from(5u64));
    }

    #[test]
    fn selfdestruct_to_self_burns_nothing_extra() {
        let mut s = State::new();
        s.set_balance(a(1), U256::from(5u64));
        s.selfdestruct(a(1), a(1));
        assert!(s.is_destroyed(a(1)));
        assert_eq!(s.balance(a(1)), U256::from(5u64));
    }

    #[test]
    fn logs_revert_with_journal() {
        let mut s = State::new();
        let snap = s.snapshot();
        s.log(a(1), vec![U256::ONE], vec![1, 2, 3]);
        assert_eq!(s.logs().len(), 1);
        s.revert_to(snap);
        assert!(s.logs().is_empty());
    }

    #[test]
    fn nonce_round_trip() {
        let mut s = State::new();
        let snap = s.snapshot();
        s.increment_nonce(a(1));
        s.increment_nonce(a(1));
        assert_eq!(s.nonce(a(1)), 2);
        s.revert_to(snap);
        assert_eq!(s.nonce(a(1)), 0);
    }

    #[test]
    fn commit_clears_journal_permanently() {
        let mut s = State::new();
        s.storage_set(a(1), U256::ONE, U256::from(9u64));
        s.commit();
        s.revert_to(0);
        assert_eq!(s.storage_get(a(1), U256::ONE), U256::from(9u64));
    }
}
