//! # chain — blockchain substrate
//!
//! Journaled world state ([`State`]), transaction execution and logical
//! blocks ([`TestNet`]), private forking (for exploit rehearsal, as in the
//! paper's private Ropsten fork), and minimal ABI helpers ([`abi`]).
//!
//! # Examples
//!
//! ```
//! use chain::{abi, TestNet};
//! use evm::U256;
//! let mut net = TestNet::new();
//! let user = net.funded_account(U256::from(1_000u64));
//! let target = net.deploy(user, vec![0x00]); // runtime code: STOP
//! let receipt = net.call(user, target, abi::encode_call("ping()", &[]), U256::ZERO);
//! assert!(receipt.success);
//! ```

#![warn(missing_docs)]

pub mod abi;
pub mod state;
pub mod testnet;

pub use state::{Account, LogRecord, State};
pub use testnet::{Receipt, TestNet};
