//! Contract templates: parameterized minisol sources with ground-truth
//! vulnerability labels.
//!
//! Each template randomizes identifier names (which changes selectors
//! and therefore bytecode — the corpus counts *unique bytecodes*, like
//! the paper's 240K dedup) and inserts filler state variables (shifting
//! storage slots) plus optional benign functions, without changing the
//! labelled semantics.

use ethainter::Vuln;
use rand::Rng;
use std::collections::BTreeSet;

/// Ground truth for a generated contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Vulnerabilities genuinely exploitable end-to-end.
    pub exploitable: BTreeSet<Vuln>,
    /// Classes a sound-but-imprecise analyzer is *expected* to flag even
    /// though they are not exploitable (known-hard shapes from Figure 6's
    /// false-positive rows). Empty for honest templates.
    pub decoy: BTreeSet<Vuln>,
    /// Whether the exploit needs multiple transactions through tainted
    /// guards (the ✰ composite marker).
    pub composite: bool,
    /// Whether the contract can be destroyed by an attacker (Ethainter-
    /// Kill's success criterion).
    pub killable: bool,
    /// Killable in principle, but only with inputs an automated palette
    /// cannot guess (magic constants read from the code) — the paper's
    /// "actual exploits often require significant human ingenuity".
    pub kill_needs_ingenuity: bool,
}

impl GroundTruth {
    pub(crate) fn of(vulns: &[Vuln]) -> Self {
        GroundTruth { exploitable: vulns.iter().copied().collect(), ..Self::default() }
    }
}

/// A generated contract spec (source + label), pre-compilation.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Template family name.
    pub family: &'static str,
    /// minisol source text.
    pub source: String,
    /// Ground truth.
    pub truth: GroundTruth,
}

/// Families whose real-world instances predate Solidity 0.5.8 (plain
/// unguarded kills, raw initializer patterns) — they rarely appear in the
/// modern-source universe Securify2 can analyze.
pub fn is_old_style(family: &str) -> bool {
    matches!(
        family,
        "vuln_accessible_selfdestruct"
            | "vuln_tainted_owner"
            | "vuln_param_beneficiary"
            | "vuln_magic_kill"
    )
}

const NAME_POOL: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "omega", "zeta", "theta", "sigma", "kappa", "lambda",
    "vault", "bank", "store", "pool", "hub", "core", "base", "node", "gate", "port",
];

fn ident(rng: &mut impl Rng, stem: &str) -> String {
    let a = NAME_POOL[rng.gen_range(0..NAME_POOL.len())];
    let n: u32 = rng.gen_range(0..10_000);
    format!("{stem}{a}{n}")
}

/// Filler state variables (0–3), shifting the slots of everything after
/// them.
fn filler_vars(rng: &mut impl Rng) -> String {
    let n = rng.gen_range(0..4);
    (0..n)
        .map(|i| format!("    uint filler{i}_{};\n", rng.gen_range(0..1000u32)))
        .collect()
}

/// A benign extra function to diversify dispatchers.
fn benign_fn(rng: &mut impl Rng, counter_var: &str) -> String {
    let name = ident(rng, "do");
    match rng.gen_range(0..3) {
        0 => format!("    function {name}(uint v) public {{ {counter_var} += v; }}\n"),
        1 => format!(
            "    function {name}() public returns (uint) {{ return {counter_var}; }}\n"
        ),
        _ => format!(
            "    function {name}(uint v) public {{ if (v > 10) {{ {counter_var} = v; }} }}\n"
        ),
    }
}

// --------------------------------------------------------------- safe ---

/// An ERC20-style token: clean.
pub fn safe_token(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Token");
    let transfer = ident(rng, "transfer");
    let approve = ident(rng, "approve");
    let source = format!(
        r#"contract {name} {{
{filler}    mapping(address => uint) balances;
    mapping(address => mapping(address => uint)) allowed;
    uint supply = {supply};
    function {transfer}(address to, uint v) public {{
        require(balances[msg.sender] >= v);
        balances[msg.sender] -= v;
        balances[to] += v;
        emit Transfer(uint(to), v);
    }}
    function {approve}(address spender, uint v) public {{
        allowed[msg.sender][spender] = v;
    }}
    function balanceOf(address who) public returns (uint) {{ return balances[who]; }}
}}"#,
        filler = filler_vars(rng),
        supply = rng.gen_range(1_000..10_000_000u64),
    );
    Spec { family: "safe_token", source, truth: GroundTruth::default() }
}

/// An owner-guarded wallet with constructor-set owner: clean.
pub fn safe_wallet(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Wallet");
    let pay = ident(rng, "pay");
    let owner_init = rng.gen_range(1u64..u32::MAX as u64);
    let counter = "nonce";
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner_init:x};
    uint nonce;
    modifier onlyOwner() {{ require(msg.sender == owner); _; }}
    function {pay}(address to, uint amount) public onlyOwner {{
        send(to, amount);
        emit Payment(uint(to), amount);
    }}
    function {kill}() public onlyOwner {{ selfdestruct(owner); }}
{benign}}}"#,
        filler = filler_vars(rng),
        kill = ident(rng, "shutdown"),
        benign = benign_fn(rng, counter),
    );
    Spec { family: "safe_wallet", source, truth: GroundTruth::default() }
}

/// A registry where callers can only touch their own sender-keyed data:
/// clean.
pub fn safe_registry(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Registry");
    let set = ident(rng, "set");
    let source = format!(
        r#"contract {name} {{
{filler}    mapping(address => uint) records;
    uint total;
    uint lastValue;
    function {set}(uint v) public {{
        require(v > 0);
        records[msg.sender] = v;
        lastValue = v;
        total += 1;
    }}
    function get(address who) public returns (uint) {{ return records[who]; }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "safe_registry", source, truth: GroundTruth::default() }
}

/// Admin-managed system where admin enrollment is admin-guarded
/// (the *fixed* Victim): clean.
pub fn safe_admin_system(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Managed");
    let source = format!(
        r#"contract {name} {{
{filler}    mapping(address => bool) admins;
    address owner = 0x{owner:x};
    modifier onlyAdmins() {{ require(admins[msg.sender]); _; }}
    modifier onlyOwner() {{ require(msg.sender == owner); _; }}
    function addAdmin(address a) public onlyOwner {{ admins[a] = true; }}
    function {kill}() public onlyAdmins {{ selfdestruct(owner); }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
        kill = ident(rng, "retire"),
    );
    Spec { family: "safe_admin_system", source, truth: GroundTruth::default() }
}

/// A checked staticcall consumer: clean.
pub fn safe_staticcall(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Verifier");
    let source = format!(
        r#"contract {name} {{
{filler}    uint result;
    function check(address w, uint input) public {{
        result = staticcall_checked(w, input);
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "safe_staticcall", source, truth: GroundTruth::default() }
}

// --------------------------------------------------------- vulnerable ---

/// §3.3: an unguarded public selfdestruct (beneficiary = caller, so
/// accessible but not "tainted").
pub fn vuln_accessible_selfdestruct(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Killable");
    let kill = ident(rng, "kill");
    let mut truth = GroundTruth::of(&[Vuln::AccessibleSelfDestruct]);
    truth.killable = true;
    let source = format!(
        r#"contract {name} {{
{filler}    uint counter;
    function {kill}() public {{ selfdestruct(msg.sender); }}
{benign}}}"#,
        filler = filler_vars(rng),
        benign = benign_fn(rng, "counter"),
    );
    Spec { family: "vuln_accessible_selfdestruct", source, truth }
}

/// §3.1: public `initOwner` taints the owner slot; the guard protects a
/// non-destructive sink (token minting), so only the owner-variable class
/// applies.
pub fn vuln_tainted_owner(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Ownable");
    let init = ident(rng, "initOwner");
    let mint = ident(rng, "mint");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner;
    mapping(address => uint) balances;
    uint supply;
    function {init}(address o) public {{ owner = o; }}
    function {mint}(address to, uint v) public {{
        require(msg.sender == owner);
        balances[to] += v;
        supply += v;
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "vuln_tainted_owner", source, truth: GroundTruth::of(&[Vuln::TaintedOwnerVariable]) }
}

/// §3.1 + §3.3 + §3.4: tainted owner guarding a selfdestruct — the full
/// escalation (composite).
pub fn vuln_tainted_owner_kill(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "OwnedKill");
    let init = ident(rng, "setOwner");
    let kill = ident(rng, "kill");
    let mut truth = GroundTruth::of(&[
        Vuln::TaintedOwnerVariable,
        Vuln::AccessibleSelfDestruct,
        Vuln::TaintedSelfDestruct,
    ]);
    truth.composite = true;
    truth.killable = true;
    let source = format!(
        r#"contract {name} {{
{filler}    address owner;
    function {init}(address o) public {{ owner = o; }}
    function {kill}() public {{ require(msg.sender == owner); selfdestruct(owner); }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "vuln_tainted_owner_kill", source, truth }
}

/// The §2 Victim: mis-guarded admin enrollment → composite chain.
pub fn vuln_composite_victim(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Victim");
    let mut truth =
        GroundTruth::of(&[Vuln::AccessibleSelfDestruct, Vuln::TaintedSelfDestruct]);
    truth.composite = true;
    truth.killable = true;
    let source = format!(
        r#"contract {name} {{
{filler}    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;
    modifier onlyAdmins() {{ require(admins[msg.sender]); _; }}
    modifier onlyUsers() {{ require(users[msg.sender]); _; }}
    function {register}() public {{ users[msg.sender] = true; }}
    function {refer_user}(address u) public onlyUsers {{ users[u] = true; }}
    function {refer_admin}(address a) public onlyUsers {{ admins[a] = true; }}
    function {change}(address o) public onlyAdmins {{ owner = o; }}
    function {kill}() public onlyAdmins {{ selfdestruct(owner); }}
}}"#,
        filler = filler_vars(rng),
        register = ident(rng, "register"),
        refer_user = ident(rng, "referUser"),
        refer_admin = ident(rng, "referAdmin"),
        change = ident(rng, "changeOwner"),
        kill = ident(rng, "kill"),
    );
    Spec { family: "vuln_composite_victim", source, truth }
}

/// §3.4: owner-guarded selfdestruct with an attacker-settable
/// beneficiary (tainted but not accessible).
pub fn vuln_tainted_beneficiary(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "AdminPay");
    let init = ident(rng, "initAdmin");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    address administrator;
    function {init}(address admin) public {{ administrator = admin; }}
    function kill() public {{
        if (msg.sender == owner) {{ selfdestruct(administrator); }}
    }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec {
        family: "vuln_tainted_beneficiary",
        source,
        truth: GroundTruth::of(&[Vuln::TaintedSelfDestruct]),
    }
}

/// §3.2: the naïve `migrate` — tainted delegatecall.
pub fn vuln_tainted_delegatecall(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Proxy");
    let migrate = ident(rng, "migrate");
    let mut truth = GroundTruth::of(&[Vuln::TaintedDelegateCall]);
    truth.killable = true; // delegatecall to attacker code can selfdestruct
    let source = format!(
        r#"contract {name} {{
{filler}    uint version;
    function {migrate}(address delegate) public {{ delegatecall(delegate); }}
{benign}}}"#,
        filler = filler_vars(rng),
        benign = benign_fn(rng, "version"),
    );
    Spec { family: "vuln_tainted_delegatecall", source, truth }
}

/// §3.2 composite variant: the delegate target sits in attacker-settable
/// storage behind an owner guard.
pub fn vuln_delegate_via_storage(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Upgradable");
    let mut truth = GroundTruth::of(&[Vuln::TaintedDelegateCall]);
    truth.composite = true;
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    address impl;
    function setImpl(address d) public {{ impl = d; }}
    function {run}() public {{
        require(msg.sender == owner);
        delegatecall(impl);
    }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
        run = ident(rng, "run"),
    );
    Spec { family: "vuln_delegate_via_storage", source, truth }
}

/// §3.5: the 0x-style unchecked staticcall.
pub fn vuln_unchecked_staticcall(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Exchange");
    let check = ident(rng, "isValid");
    let source = format!(
        r#"contract {name} {{
{filler}    uint result;
    function {check}(address wallet, uint data) public {{
        result = staticcall_unchecked(wallet, data);
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec {
        family: "vuln_unchecked_staticcall",
        source,
        truth: GroundTruth::of(&[Vuln::UncheckedTaintedStaticCall]),
    }
}

// ------------------------------------------------------ hard / decoys ---

/// Figure 6 FP row "complex path condition": the owner write is gated by
/// a value-dependent condition the analysis cannot see through (it only
/// models sender guards), so Ethainter flags it although the gate makes
/// it unexploitable in practice.
pub fn decoy_complex_path(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Gated");
    let magic = rng.gen_range(1_000_000u64..u32::MAX as u64);
    let mut truth = GroundTruth::default();
    truth.decoy.insert(Vuln::TaintedOwnerVariable);
    // The epoch counter only increments; the branch is dead in practice.
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{oinit:x};
    uint epoch;
    uint secret;
    function tick() public {{ epoch += 1; }}
    function rescue(address o) public {{
        require(epoch == {magic});
        owner = o;
    }}
    function set(uint v) public {{ require(msg.sender == owner); secret = v; }}
}}"#,
        filler = filler_vars(rng),
        oinit = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec { family: "decoy_complex_path", source, truth }
}

/// Figure 6 FP row "not an owner variable": a sender-compared slot that
/// anyone may write, but which guards nothing of value (last-caller
/// bookkeeping).
pub fn decoy_not_owner(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Tracker");
    let touch = ident(rng, "touch");
    let mut truth = GroundTruth::default();
    truth.decoy.insert(Vuln::TaintedOwnerVariable);
    let source = format!(
        r#"contract {name} {{
{filler}    address lastCaller;
    uint count;
    function {touch}() public {{ lastCaller = msg.sender; count += 1; }}
    function touchAgain() public {{
        require(msg.sender == lastCaller);
        count += 2;
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "decoy_not_owner", source, truth }
}

/// A genuine vulnerability Ethainter's *precise* storage model misses
/// (the owner is written through a computed slot): a false negative for
/// Ethainter, found by symbolic execution (teEther) and by the
/// conservative-storage ablation (Figure 8c).
pub fn hard_dynamic_owner(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "AsmOwner");
    let mut truth = GroundTruth::of(&[
        Vuln::TaintedOwnerVariable,
        Vuln::AccessibleSelfDestruct,
        Vuln::TaintedSelfDestruct,
    ]);
    truth.composite = true;
    truth.killable = true;
    // The owner sits at slot 0; the write goes through a pointer loaded
    // from (zero-initialized) storage — statically unknown, dynamically 0.
    // The *untainted* unknown address defeats the precise model's
    // StorageWrite rules (StorageWrite-2 needs a tainted address).
    let source = format!(
        r#"contract {name} {{
    address owner;
{filler}    function unlock(address o) public {{
        sstore_dyn(sload_dyn({ptr}), uint(o));
    }}
    function kill() public {{ require(msg.sender == owner); selfdestruct(owner); }}
}}"#,
        filler = filler_vars(rng),
        ptr = rng.gen_range(500u64..5000),
    );
    Spec { family: "hard_dynamic_owner", source, truth }
}

/// Figure 6 FP row "complex memory conditions": an unchecked staticcall
/// whose result lands in write-only bookkeeping storage — flagged by the
/// buffer-overlap pattern, not exploitable for anything.
pub fn decoy_staticcall(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Prober");
    let probe = ident(rng, "probe");
    let mut truth = GroundTruth::default();
    truth.decoy.insert(Vuln::UncheckedTaintedStaticCall);
    let source = format!(
        r#"contract {name} {{
{filler}    uint scratch;
    function {probe}(address w, uint data) public {{
        scratch = staticcall_unchecked(w, data);
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "decoy_staticcall", source, truth }
}

/// A legacy proxy: the delegate target is only settable by the owner, so
/// the unguarded `run()` is safe — but a source-level tool that does not
/// reason about the setter flags its delegatecall as "unrestricted"
/// (the Securify2 false-positive row of Figure 7).
pub fn safe_legacy_proxy(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "LegacyProxy");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    address impl = 0x{impl_:x};
    function setImpl(address d) public {{
        require(msg.sender == owner);
        impl = d;
    }}
    function {run}() public {{ delegatecall(impl); }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
        impl_ = rng.gen_range(1u64..u32::MAX as u64),
        run = ident(rng, "run"),
    );
    Spec { family: "safe_legacy_proxy", source, truth: GroundTruth::default() }
}

/// An abandoned contract whose owner was never initialized: the kill
/// guard compares the sender against address zero, which no real account
/// can be — unexploitable in practice, but exploit generators that treat
/// the caller as fully symbolic "solve" it (the paper's remark that
/// teEther exploits may require "the right conditions, e.g.,
/// uninitialized owner variables").
pub fn safe_uninit_owner(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Abandoned");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner;
    uint deposits;
    function deposit() public payable {{ deposits += 1; }}
    function {kill}() public {{ require(msg.sender == owner); selfdestruct(owner); }}
}}"#,
        filler = filler_vars(rng),
        kill = ident(rng, "sweep"),
    );
    Spec { family: "safe_uninit_owner", source, truth: GroundTruth::default() }
}


/// §3.3 + §3.4 in one: an unguarded sweep whose beneficiary is the
/// caller's parameter (the common "send remaining balance to this
/// address" pattern, unguarded).
pub fn vuln_param_beneficiary(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Sweeper");
    let kill = ident(rng, "sweepTo");
    let mut truth =
        GroundTruth::of(&[Vuln::AccessibleSelfDestruct, Vuln::TaintedSelfDestruct]);
    truth.killable = true;
    let source = format!(
        r#"contract {name} {{
{filler}    uint counter;
    function {kill}(address to) public {{ selfdestruct(to); }}
{benign}}}"#,
        filler = filler_vars(rng),
        benign = benign_fn(rng, "counter"),
    );
    Spec { family: "vuln_param_beneficiary", source, truth }
}

/// A two-stage owner takeover mediated by storage: `propose` is public,
/// `adopt` copies the pending value into the owner slot. The finding
/// *requires* storage-taint modeling (it vanishes under the Figure 8a
/// ablation).
pub fn vuln_pending_owner(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Pending");
    let propose = ident(rng, "propose");
    let mut truth = GroundTruth::of(&[Vuln::TaintedOwnerVariable]);
    truth.composite = true;
    let source = format!(
        r#"contract {name} {{
{filler}    address owner;
    address pending;
    mapping(address => uint) balances;
    function {propose}(address p) public {{ pending = p; }}
    function {adopt}() public {{ owner = pending; }}
    function mint(address to, uint v) public {{
        require(msg.sender == owner);
        balances[to] += v;
    }}
}}"#,
        filler = filler_vars(rng),
        adopt = ident(rng, "adopt"),
    );
    Spec { family: "vuln_pending_owner", source, truth }
}

/// An unchecked staticcall whose trusted buffer is fed from publicly
/// settable storage (storage-mediated variant of §3.5; vanishes under
/// the 8a ablation).
pub fn vuln_staticcall_via_storage(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Oracle");
    let check = ident(rng, "check");
    let mut truth = GroundTruth::of(&[Vuln::UncheckedTaintedStaticCall]);
    truth.composite = true;
    // The wallet address is a fixed state value, so under the 8a
    // ablation (no storage taint) nothing about this call is tainted.
    let source = format!(
        r#"contract {name} {{
{filler}    uint feed;
    uint result;
    address wallet = 0x{wallet:x};
    function setFeed(uint v) public {{ feed = v; }}
    function {check}() public {{ result = staticcall_unchecked(wallet, feed); }}
}}"#,
        filler = filler_vars(rng),
        wallet = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec { family: "vuln_staticcall_via_storage", source, truth }
}

/// An owner-guarded sweep-to-parameter: clean under guard modeling, the
/// canonical false positive once guards are ignored (the paper explains
/// Figure 8b's tainted-selfdestruct explosion with exactly this shape).
pub fn safe_guarded_sweep(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "GuardedSweep");
    let sweep = ident(rng, "sweep");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    modifier onlyOwner() {{ require(msg.sender == owner); _; }}
    function {sweep}(address to) public onlyOwner {{ selfdestruct(to); }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec { family: "safe_guarded_sweep", source, truth: GroundTruth::default() }
}

/// Owner-guarded upgrade hook: the delegate target is a parameter, but
/// only the owner can call — clean, flips under the 8b ablation.
pub fn safe_guarded_migrate(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "GuardedProxy");
    let migrate = ident(rng, "migrate");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    function {migrate}(address delegate) public {{
        require(msg.sender == owner);
        delegatecall(delegate);
    }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec { family: "safe_guarded_migrate", source, truth: GroundTruth::default() }
}

/// Owner-guarded unchecked staticcall: clean, flips under 8b.
pub fn safe_guarded_staticcall(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "GuardedProbe");
    let refresh = ident(rng, "refresh");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    uint cache;
    function {refresh}(address w, uint x) public {{
        require(msg.sender == owner);
        cache = staticcall_unchecked(w, x);
    }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec { family: "safe_guarded_staticcall", source, truth: GroundTruth::default() }
}

/// A wallet with a raw-storage scratch cache: sound (the cache region
/// cannot reach the named slots), but the conservative storage model
/// (Figure 8c) assumes any unknown store reaches any slot, defeating the
/// owner guard and flagging all three taint classes.
pub fn safe_cached_wallet(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "CachedWallet");
    let truth = GroundTruth::default();
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    address backup = 0x{backup:x};
    uint nonce;
    modifier onlyOwner() {{ require(msg.sender == owner); _; }}
    function cache(uint v) public {{ sstore_dyn({region} + sload_dyn({ptr}), v); }}
    function setBackup(address b) public onlyOwner {{ backup = b; }}
    function recover() public {{ require(msg.sender == backup); nonce += 1; }}
    function sweep() public onlyOwner {{ selfdestruct(backup); }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
        backup = rng.gen_range(1u64..u32::MAX as u64),
        region = rng.gen_range(50_000u64..90_000),
        ptr = rng.gen_range(10_000u64..20_000),
    );
    Spec { family: "safe_cached_wallet", source, truth }
}

/// A registry variant with a raw-storage scratch cache and a
/// sender-compared backup slot (but no selfdestruct): sound, yet the
/// conservative storage model (Figure 8c) lets the cache write poison the
/// owner guard, turning the guarded backup-setter into a tainted-owner
/// report.
pub fn safe_cached_registry(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "CachedRegistry");
    let set = ident(rng, "record");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    address backup = 0x{backup:x};
    uint entries;
    modifier onlyOwner() {{ require(msg.sender == owner); _; }}
    function cache(uint v) public {{ sstore_dyn({region} + sload_dyn({ptr}), v); }}
    function setBackup(address b) public onlyOwner {{ backup = b; }}
    function {set}() public {{ require(msg.sender == backup); entries += 1; }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
        backup = rng.gen_range(1u64..u32::MAX as u64),
        region = rng.gen_range(50_000u64..90_000),
        ptr = rng.gen_range(10_000u64..20_000),
    );
    Spec { family: "safe_cached_registry", source, truth: GroundTruth::default() }
}

/// An accessible selfdestruct gated by a magic constant: Ethainter
/// rightly flags it (a non-sender check sanitizes nothing), a human can
/// exploit it by reading the constant from the bytecode, but automated
/// exploit generation with a small input palette fails — the dominant
/// reason Experiment 1's destruction rate is only a *lower* bound.
pub fn vuln_magic_kill(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "MagicKill");
    let kill = ident(rng, "kill");
    let magic: u64 = rng.gen_range(0x1_0000_0000u64..0xffff_ffff_ffffu64);
    let mut truth = GroundTruth::of(&[Vuln::AccessibleSelfDestruct]);
    truth.killable = true;
    truth.kill_needs_ingenuity = true;
    let source = format!(
        r#"contract {name} {{
{filler}    uint marker;
    function {kill}(uint code) public {{
        require(code == 0x{magic:x});
        selfdestruct(msg.sender);
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "vuln_magic_kill", source, truth }
}

// ------------------------------------------------ detector suite v2 ---

/// Checks-effects-interactions violation: the balance is read before the
/// external call and zeroed after it, so a re-entrant callee withdraws
/// against the stale balance. The send is `require`-checked, so only the
/// ordering class applies.
pub fn vuln_reentrant_bank(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Bank");
    let withdraw = ident(rng, "withdraw");
    let source = format!(
        r#"contract {name} {{
{filler}    mapping(address => uint) balances;
    function {deposit}(uint v) public {{ balances[msg.sender] += v; }}
    function {withdraw}() public {{
        uint bal = balances[msg.sender];
        require(bal > 0x0);
        require(send(msg.sender, bal));
        balances[msg.sender] = 0x0;
    }}
}}"#,
        filler = filler_vars(rng),
        deposit = ident(rng, "deposit"),
    );
    Spec {
        family: "vuln_reentrant_bank",
        source,
        truth: GroundTruth::of(&[Vuln::Reentrancy]),
    }
}

/// The hardened bank: effects before interactions — clean.
pub fn safe_effects_first_bank(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Bank");
    let withdraw = ident(rng, "withdraw");
    let source = format!(
        r#"contract {name} {{
{filler}    mapping(address => uint) balances;
    function {deposit}(uint v) public {{ balances[msg.sender] += v; }}
    function {withdraw}() public {{
        uint bal = balances[msg.sender];
        require(bal > 0x0);
        balances[msg.sender] = 0x0;
        require(send(msg.sender, bal));
    }}
}}"#,
        filler = filler_vars(rng),
        deposit = ident(rng, "deposit"),
    );
    Spec { family: "safe_effects_first_bank", source, truth: GroundTruth::default() }
}

/// `tx.origin`-based authentication over a state write: a phishing
/// contract called by the owner passes the check.
pub fn vuln_txorigin_auth(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Drop");
    let claim = ident(rng, "claim");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    mapping(address => uint) credits;
    function {claim}(address to, uint v) public {{
        require(tx.origin == owner);
        credits[to] += v;
    }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec {
        family: "vuln_txorigin_auth",
        source,
        truth: GroundTruth::of(&[Vuln::TxOriginAuth]),
    }
}

/// The hardened variant: `msg.sender` authentication — clean.
pub fn safe_sender_auth(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Drop");
    let claim = ident(rng, "claim");
    let source = format!(
        r#"contract {name} {{
{filler}    address owner = 0x{owner:x};
    mapping(address => uint) credits;
    function {claim}(address to, uint v) public {{
        require(msg.sender == owner);
        credits[to] += v;
    }}
}}"#,
        filler = filler_vars(rng),
        owner = rng.gen_range(1u64..u32::MAX as u64),
    );
    Spec { family: "safe_sender_auth", source, truth: GroundTruth::default() }
}

/// A miner-influencable deadline gates a money flow.
pub fn vuln_timestamp_payout(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Lotto");
    let payout = ident(rng, "payout");
    let source = format!(
        r#"contract {name} {{
{filler}    uint deadline = 0x{deadline:x};
    function {payout}(address to, uint amount) public {{
        require(block.timestamp > deadline);
        require(send(to, amount));
    }}
}}"#,
        filler = filler_vars(rng),
        // Strictly above the TestNet genesis timestamp (1_600_000_000 <
        // 0x6000_0000): a seeded deadline is always still in the future,
        // so the kill-crate warp demonstration can flip it.
        deadline = rng.gen_range(0x6000_0000u64..0x7000_0000),
    );
    Spec {
        family: "vuln_timestamp_payout",
        source,
        truth: GroundTruth::of(&[Vuln::TimestampDependence]),
    }
}

/// The hardened variant: a block-number deadline — clean.
pub fn safe_blocknumber_payout(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Lotto");
    let payout = ident(rng, "payout");
    let source = format!(
        r#"contract {name} {{
{filler}    uint deadline = 0x{deadline:x};
    function {payout}(address to, uint amount) public {{
        require(block.number > deadline);
        require(send(to, amount));
    }}
}}"#,
        filler = filler_vars(rng),
        deadline = rng.gen_range(0x100_0000u64..0x200_0000),
    );
    Spec { family: "safe_blocknumber_payout", source, truth: GroundTruth::default() }
}

/// A bare `send` whose success flag is silently dropped.
pub fn vuln_unchecked_send(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Payer");
    let pay = ident(rng, "pay");
    let source = format!(
        r#"contract {name} {{
{filler}    uint nonce;
    function {pay}(address to, uint amount) public {{
        send(to, amount);
        nonce += 0x1;
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec {
        family: "vuln_unchecked_send",
        source,
        truth: GroundTruth::of(&[Vuln::UncheckedCallReturn]),
    }
}

/// The hardened variant: the send is `require`-checked — clean.
pub fn safe_checked_send(rng: &mut impl Rng) -> Spec {
    let name = ident(rng, "Payer");
    let pay = ident(rng, "pay");
    let source = format!(
        r#"contract {name} {{
{filler}    uint nonce;
    function {pay}(address to, uint amount) public {{
        require(send(to, amount));
        nonce += 0x1;
    }}
}}"#,
        filler = filler_vars(rng),
    );
    Spec { family: "safe_checked_send", source, truth: GroundTruth::default() }
}

/// Which deployment universe a population models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Profile {
    /// The §6.2 mainnet snapshot (240K unique contracts).
    #[default]
    Mainnet,
    /// The §6.1 Ropsten testnet window: fewer flagged contracts overall
    /// (0.54%), most of them experimental shapes that defeat automated
    /// exploitation.
    Ropsten,
}

/// Structural scale of a generated population: how large and how deeply
/// nested the individual contracts are (orthogonal to [`Profile`], which
/// picks the vulnerability *mixture*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// The original small templates (a few hundred bytes each). The
    /// default, so existing populations, cache keys, and checkpoints
    /// stay byte-identical.
    #[default]
    Small,
    /// Mid-size DeFi-shaped contracts (roughly 4–25 KB bytecode) from
    /// [`adversarial`](crate::adversarial) at [`Knobs::REALISTIC`],
    /// mixed with a minority of small templates — the benchmark scale.
    ///
    /// [`Knobs::REALISTIC`]: crate::adversarial::Knobs::REALISTIC
    Realistic,
    /// Worst-plausible contracts (roughly 10–50 KB bytecode) at
    /// [`Knobs::ADVERSARIAL`] — maximum dispatcher fan-out, chain
    /// depth, mapping width, and guard nesting.
    ///
    /// [`Knobs::ADVERSARIAL`]: crate::adversarial::Knobs::ADVERSARIAL
    Adversarial,
}

impl Scale {
    /// Parses the `--scale` CLI spelling.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "realistic" => Some(Scale::Realistic),
            "adversarial" => Some(Scale::Adversarial),
            _ => None,
        }
    }

    /// The `--scale` CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Realistic => "realistic",
            Scale::Adversarial => "adversarial",
        }
    }
}

/// A contract-family generator: draws one randomized [`Spec`].
pub type TemplateFn = fn(&mut rand::rngs::StdRng) -> Spec;

/// Vulnerable + decoy families with their default mainnet weights
/// (calibrated so the flagged percentages land near the paper's §6.2
/// table).
pub fn weighted_templates() -> Vec<(f64, TemplateFn)> {
    weighted_templates_for(Profile::Mainnet)
}

/// Template mixture for a given universe profile *and* structural
/// scale. [`Scale::Small`] reproduces [`weighted_templates_for`]
/// exactly; the larger scales are dominated by the
/// [`adversarial`](crate::adversarial) families, keeping a small-
/// template minority for dispatcher variety. The composite-breach
/// weight at each scale is the "configured seed rate" the corpus tests
/// pin: large populations are guaranteed to contain composite chains.
pub fn weighted_templates_scaled(profile: Profile, scale: Scale) -> Vec<(f64, TemplateFn)> {
    use crate::adversarial as adv;
    match scale {
        Scale::Small => weighted_templates_for(profile),
        Scale::Realistic => vec![
            (0.270, adv::defi_protocol_realistic as TemplateFn),
            (0.220, adv::token_megasuite_realistic),
            (0.160, adv::guard_fortress_realistic),
            (0.070, adv::deep_pipeline_realistic),
            (0.060, adv::guard_chain_breach_realistic),
            // A minority of small shapes keeps dispatcher variety (and
            // exercises the engines' fast path alongside the slow one).
            (0.080, safe_token),
            (0.060, safe_wallet),
            (0.040, safe_admin_system),
            (0.015, vuln_composite_victim),
            (0.010, vuln_pending_owner),
            (0.010, vuln_tainted_delegatecall),
            (0.005, vuln_unchecked_staticcall),
            // Detector suite v2 seeds (positives + hardened negatives).
            (0.004, vuln_reentrant_bank),
            (0.004, safe_effects_first_bank),
            (0.003, vuln_unchecked_send),
            (0.003, safe_checked_send),
            (0.002, vuln_txorigin_auth),
            (0.002, safe_sender_auth),
            (0.002, vuln_timestamp_payout),
            (0.002, safe_blocknumber_payout),
        ],
        Scale::Adversarial => vec![
            (0.296, adv::defi_protocol_adversarial as TemplateFn),
            (0.218, adv::token_megasuite_adversarial),
            (0.178, adv::guard_fortress_adversarial),
            (0.150, adv::deep_pipeline_adversarial),
            (0.150, adv::guard_chain_breach_adversarial),
            // Detector suite v2 seeds: a thin layer of small shapes so
            // the new classes appear even in the worst-plausible mix.
            (0.002, vuln_reentrant_bank),
            (0.002, vuln_unchecked_send),
            (0.001, vuln_txorigin_auth),
            (0.001, vuln_timestamp_payout),
            (0.001, safe_effects_first_bank),
            (0.001, safe_checked_send),
        ],
    }
}

/// Template mixture for a given universe profile.
pub fn weighted_templates_for(profile: Profile) -> Vec<(f64, TemplateFn)> {
    if profile == Profile::Ropsten {
        return vec![
            (0.400, safe_token as TemplateFn),
            (0.300, safe_wallet),
            (0.200, safe_registry),
            (0.094, safe_admin_system),
            // flagged ≈ 0.55%, of which automated kills land on ~17%
            (0.0045, vuln_magic_kill),
            (0.0006, vuln_accessible_selfdestruct),
            (0.0002, vuln_param_beneficiary),
            (0.0001, vuln_composite_victim),
            (0.0001, vuln_tainted_owner_kill),
            // Detector suite v2: testnet experiments skew heavily toward
            // hardened shapes, with a trace of the raw patterns.
            (0.0020, safe_checked_send),
            (0.0015, safe_effects_first_bank),
            (0.0010, safe_sender_auth),
            (0.0010, safe_blocknumber_payout),
            (0.0002, vuln_unchecked_send),
            (0.0001, vuln_reentrant_bank),
            (0.0001, vuln_txorigin_auth),
            (0.0001, vuln_timestamp_payout),
        ];
    }
    vec![
        // ~95.7% safe
        (0.190, safe_token as TemplateFn),
        (0.290, safe_wallet),
        (0.150, safe_registry),
        (0.170, safe_admin_system),
        (0.078, safe_staticcall),
        (0.0340, safe_guarded_sweep),
        (0.0017, safe_guarded_migrate),
        (0.0010, safe_guarded_staticcall),
        (0.0030, safe_cached_wallet),
        (0.0200, safe_cached_registry),
        // accessible selfdestruct flagged ≈ 1.2% = 1.05 + .05 + .03 + .07
        (0.0105, vuln_accessible_selfdestruct),
        (0.0005, vuln_composite_victim),
        (0.0003, vuln_tainted_owner_kill),
        (0.0007, vuln_param_beneficiary),
        // tainted owner flagged ≈ 1.33% = .57 + .03 + .33 + decoys .40
        // (decoys give the class its ~70% sampled precision, Fig. 6)
        (0.0050, vuln_tainted_owner),
        (0.0033, vuln_pending_owner),
        // tainted selfdestruct flagged ≈ 0.17% = .05 + .03 + .02 + .07
        (0.0002, vuln_tainted_beneficiary),
        // tainted delegatecall flagged ≈ 0.17% = .12 + .05
        (0.0012, vuln_tainted_delegatecall),
        (0.0005, vuln_delegate_via_storage),
        // unchecked staticcall flagged ≈ 0.04% = .02 + .01 + decoy .01
        (0.0001, vuln_unchecked_staticcall),
        (0.0001, vuln_staticcall_via_storage),
        // decoys (flagged, not exploitable) and hard FNs (missed by the
        // precise storage model, caught by symbolic execution)
        (0.0030, decoy_complex_path),
        (0.0020, decoy_not_owner),
        (0.0002, decoy_staticcall),
        (0.0003, hard_dynamic_owner),
        // tool-comparison targets
        (0.0004, safe_legacy_proxy),
        (0.0030, safe_uninit_owner),
        // detector suite v2: ordering, origin, time, and unchecked-send
        // shapes (positives plus their hardened negatives)
        (0.0012, vuln_reentrant_bank),
        (0.0020, safe_effects_first_bank),
        (0.0015, vuln_unchecked_send),
        (0.0025, safe_checked_send),
        (0.0005, vuln_txorigin_auth),
        (0.0010, safe_sender_auth),
        (0.0005, vuln_timestamp_payout),
        (0.0010, safe_blocknumber_payout),
    ]
}
