//! # corpus — labelled contract populations
//!
//! The evaluation substrate that replaces the paper's Ethereum
//! mainnet/Ropsten snapshots: a deterministic generator of unique
//! contract bytecodes with ground-truth vulnerability labels, produced by
//! compiling randomized minisol templates through the same pipeline real
//! contracts take (source → storage layout → dispatcher → bytecode).
//!
//! Template weights are calibrated so a default "mainnet" population
//! reproduces the flagged-percentage table of §6.2; ground-truth labels
//! turn the paper's manual-inspection precision protocol (Figure 6) into
//! a measurement.
//!
//! Orthogonally to the vulnerability mixture ([`Profile`]), the
//! [`Scale`] knob selects structural size: [`Scale::Small`] keeps the
//! original few-hundred-byte templates (and historical populations
//! byte-identical), while [`Scale::Realistic`] and
//! [`Scale::Adversarial`] draw from the [`adversarial`] generators —
//! 4–50 KB contracts with dispatcher fan-out, deep internal call
//! chains, wide mapping families, and nested guard tiers, sized so
//! per-contract fixpoints are measurable in milliseconds. See the
//! crate `README.md` and the repository's `BENCHMARKS.md`.
//!
//! # Examples
//!
//! ```
//! use corpus::{Population, PopulationConfig};
//! let pop = Population::generate(&PopulationConfig { size: 25, ..Default::default() });
//! assert_eq!(pop.contracts.len(), 25);
//! ```

#![warn(missing_docs)]

pub mod adversarial;
pub mod generator;
pub mod templates;

pub use generator::{stream, CorpusContract, Population, PopulationConfig, PopulationStream};
pub use templates::{GroundTruth, Profile, Scale, Spec};
