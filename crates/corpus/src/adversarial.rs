//! Adversarial-scale contract generators: realistic DeFi-shaped
//! contracts large enough to make the fixpoint engines sweat.
//!
//! The small templates in [`templates`](crate::templates) are calibrated
//! for *prevalence* realism (the §6.2 flagged-percentage table); the
//! generators here are calibrated for *shape* realism — the structural
//! properties that dominate analysis cost on deployed mainnet code:
//!
//! - **Dispatcher fan-out**: dozens of external selectors, so guard
//!   discovery and reachability work over many entry regions at once.
//! - **Deep internal call chains**: taint must flow through
//!   per-call-site memory argument cells across many frames (and the
//!   context-cloning decompiler multiplies every chain by its call
//!   sites).
//! - **Wide mapping families**: many distinct mapping base slots, so the
//!   storage-taint relations carry many atoms instead of a handful.
//! - **Nested guard chains**: membership tiers enrolled level-by-level,
//!   forcing one delta-`ReachableByAttacker` wave per tier in the sparse
//!   engine (and a full re-scan per wave in the dense one).
//!
//! Every generator is parameterized by [`Knobs`] and exposed as a plain
//! template function (`fn(&mut impl Rng) -> Spec`, like
//! [`templates`](crate::templates)) at the
//! [`Scale::Realistic`](crate::Scale) and
//! [`Scale::Adversarial`](crate::Scale) presets, so the population
//! machinery (weighted sampling, dedup, streaming) is unchanged.
//!
//! Size envelope (enforced by tests): `Realistic` contracts land in
//! roughly 4–25 KB of runtime bytecode, `Adversarial` in 10–50 KB, and
//! both decompile completely within the decompiler's default block and
//! statement budgets.

use crate::templates::{GroundTruth, Spec};
use ethainter::Vuln;
use rand::Rng;
use std::fmt::Write;

/// Structural size parameters for one adversarial contract, drawn
/// uniformly from inclusive ranges.
#[derive(Clone, Copy, Debug)]
pub struct Knobs {
    /// Dispatched (public) functions beyond the fixed protocol core.
    pub entry_fns: (usize, usize),
    /// Length of the internal call chain threading taint through memory
    /// argument cells.
    pub chain_depth: (usize, usize),
    /// Distinct mapping state variables (storage-atom width).
    pub mappings: (usize, usize),
    /// Nested membership-guard tiers (delta-rba wave count).
    pub guard_levels: (usize, usize),
    /// Storage operations per internal-chain stage (statement weight of
    /// each cloned frame).
    pub chain_fat: (usize, usize),
}

impl Knobs {
    /// The `--scale realistic` preset: mid-size deployed-protocol shape.
    pub const REALISTIC: Knobs = Knobs {
        entry_fns: (28, 40),
        chain_depth: (10, 14),
        mappings: (6, 10),
        guard_levels: (3, 6),
        chain_fat: (7, 10),
    };

    /// The `--scale adversarial` preset: worst-plausible mainnet shape.
    pub const ADVERSARIAL: Knobs = Knobs {
        entry_fns: (44, 64),
        chain_depth: (10, 13),
        mappings: (12, 20),
        guard_levels: (6, 10),
        chain_fat: (7, 10),
    };

    fn entry_fns(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(self.entry_fns.0..self.entry_fns.1 + 1)
    }
    fn chain_depth(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(self.chain_depth.0..self.chain_depth.1 + 1)
    }
    fn mappings(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(self.mappings.0..self.mappings.1 + 1)
    }
    fn guard_levels(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(self.guard_levels.0..self.guard_levels.1 + 1)
    }
    fn chain_fat(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(self.chain_fat.0..self.chain_fat.1 + 1)
    }
}

fn suffix(rng: &mut impl Rng) -> u32 {
    rng.gen_range(0..100_000)
}

/// Emits a deep internal call chain `name0 … name{depth-1}`, each stage
/// a fat straight-line frame: `fat` mapping updates over the
/// `map{0..n_maps}` family (keyed by the threaded address argument) plus
/// two counter-slot bumps, then a tail call to the next stage. Straight-
/// line on purpose — the context-cloning decompiler clones one chain per
/// call site, so statement weight multiplies without block-count growth.
#[allow(clippy::too_many_arguments)]
fn emit_chain(
    s: &mut String,
    rng: &mut impl Rng,
    name: &str,
    map: &str,
    counters: (&str, &str),
    depth: usize,
    n_maps: usize,
    fat: usize,
) {
    for i in 0..depth {
        let _ = writeln!(s, "    function {name}{i}(address a, uint v) internal {{");
        for w in 0..fat {
            let m = (i * fat + w) % n_maps;
            match w % 3 {
                0 => {
                    let _ = writeln!(s, "        {map}{m}[a] += v + {b};", b = rng.gen_range(1..99u32));
                }
                1 => {
                    let _ = writeln!(s, "        {map}{m}[a] += v / {d};", d = rng.gen_range(2..50u32));
                }
                _ => {
                    let _ = writeln!(s, "        {map}{m}[a] -= v / {d};", d = rng.gen_range(2..50u32));
                }
            }
        }
        let _ = write!(s, "        {c0} += v;\n        {c1} += 1;\n", c0 = counters.0, c1 = counters.1);
        if i + 1 < depth {
            let _ = writeln!(s, "        {name}{next}(a, v + {b});", next = i + 1, b = rng.gen_range(1..9u32));
        }
        s.push_str("    }\n");
    }
}

// ------------------------------------------------------------- safe ----

/// A DeFi-style pooled-deposit protocol: wide dispatcher, a deep
/// internal settlement chain shared by every deposit entry point, and a
/// family of per-pool mappings. Owner administration is constructor-set
/// and never attacker-writable — clean.
pub fn defi_protocol(rng: &mut impl Rng, k: &Knobs) -> Spec {
    let sfx = suffix(rng);
    let n_maps = k.mappings(rng);
    let depth = k.chain_depth(rng);
    let entries = k.entry_fns(rng);
    let owner = rng.gen_range(1u64..u32::MAX as u64);
    let mut s = String::new();
    let _ = write!(
        s,
        "contract Protocol{sfx} {{\n    address owner = 0x{owner:x};\n    uint totalLocked;\n    uint feeRate = {fee};\n    uint epoch;\n",
        fee = rng.gen_range(1..500u32),
    );
    for i in 0..n_maps {
        let _ = writeln!(s, "    mapping(address => uint) pool{i};");
    }
    s.push_str("    mapping(address => mapping(address => uint)) approvals;\n");
    s.push_str("    modifier onlyOwner() { require(msg.sender == owner); _; }\n");
    // Two fat internal chains: the settlement chain books deposits
    // across the whole pool family, the rake chain books fees on the
    // way out. Every entry point calls one of them, so the
    // context-cloning decompiler clones a full chain per selector and
    // taint repeatedly crosses memory argument cells.
    let fat = k.chain_fat(rng);
    emit_chain(&mut s, rng, "settle", "pool", ("totalLocked", "epoch"), depth, n_maps, fat);
    emit_chain(&mut s, rng, "rake", "pool", ("epoch", "totalLocked"), depth, n_maps, fat);
    for j in 0..entries {
        let m = j % n_maps;
        let m2 = (j + 3) % n_maps;
        match j % 5 {
            0 => {
                let _ = write!(
                    s,
                    "    function deposit{j}(uint v) public {{\n        require(v > 0);\n        settle0(msg.sender, v);\n        pool{m2}[msg.sender] += v / {half};\n        emit Deposit(uint(msg.sender), v);\n    }}\n",
                    half = rng.gen_range(2..9u32),
                );
            }
            1 => {
                let _ = write!(
                    s,
                    "    function withdraw{j}(uint v) public {{\n        require(pool{m}[msg.sender] >= v);\n        pool{m}[msg.sender] -= v;\n        rake0(msg.sender, v);\n        totalLocked -= v;\n        emit Withdraw(uint(msg.sender), v);\n    }}\n"
                );
            }
            2 => {
                let _ = write!(
                    s,
                    "    function approve{j}(address spender, uint v) public {{\n        approvals[msg.sender][spender] = v;\n        settle0(spender, v);\n        epoch += 1;\n    }}\n"
                );
            }
            3 => {
                let _ = write!(
                    s,
                    "    function harvest{j}(address a, uint v) public {{\n        require(pool{m}[a] > 0);\n        rake0(a, v + pool{m2}[a] + feeRate * {rate});\n    }}\n",
                    rate = rng.gen_range(1..100u32),
                );
            }
            _ => {
                let _ = write!(
                    s,
                    "    function rebase{j}(uint v) public {{\n        if (v > {cut}) {{ epoch += v; totalLocked += v / {div}; }}\n        settle0(msg.sender, v + 1);\n    }}\n",
                    cut = rng.gen_range(5..5_000u32),
                    div = rng.gen_range(2..20u32),
                );
            }
        }
    }
    s.push_str("    function setFee(uint f) public onlyOwner { feeRate = f; }\n");
    s.push_str("    function advance() public onlyOwner { epoch += 1; }\n}");
    Spec { family: "adv_defi_protocol", source: s, truth: GroundTruth::default() }
}

/// A tiered access-control fortress: `guard_levels` nested membership
/// tiers, each enrolled only from the tier below it, rooted at a
/// constructor-set owner. The chain is intact, so nothing is reachable —
/// clean, but the analyzer must still discover every guard and cover
/// every region.
pub fn guard_fortress(rng: &mut impl Rng, k: &Knobs) -> Spec {
    let sfx = suffix(rng);
    let tiers = k.guard_levels(rng);
    let entries = k.entry_fns(rng);
    let owner = rng.gen_range(1u64..u32::MAX as u64);
    let treasury = rng.gen_range(1u64..u32::MAX as u64);
    let mut s = String::new();
    let _ = write!(
        s,
        "contract Fortress{sfx} {{\n    address owner = 0x{owner:x};\n    address treasury = 0x{treasury:x};\n    uint epoch;\n    uint audits;\n"
    );
    for i in 0..tiers {
        let _ = write!(s, "    mapping(address => bool) tier{i};\n    mapping(address => uint) log{i};\n");
    }
    s.push_str("    modifier onlyOwner() { require(msg.sender == owner); _; }\n");
    for i in 0..tiers {
        let _ = writeln!(s, "    modifier atTier{i}() {{ require(tier{i}[msg.sender]); _; }}");
    }
    s.push_str("    function promote0(address a) public onlyOwner { tier0[a] = true; log0[a] = 1; }\n");
    for i in 1..tiers {
        let _ = writeln!(
            s,
            "    function promote{i}(address a) public atTier{prev} {{ tier{i}[a] = true; log{i}[a] = 1; }}",
            prev = i - 1,
        );
    }
    // Fat audit-trail chain over the log family — cloned inside every
    // guarded entry region, so guard regions cover thousands of cloned
    // statements. It must never touch a tier mapping: the guard chain
    // stays intact and the contract stays clean.
    let depth = k.chain_depth(rng);
    let fat = k.chain_fat(rng);
    emit_chain(&mut s, rng, "drill", "log", ("epoch", "audits"), depth, tiers, fat);
    for j in 0..entries {
        let t = j % tiers;
        match j % 3 {
            0 => {
                let _ = write!(
                    s,
                    "    function act{j}(uint v) public atTier{t} {{\n        require(v > {floor});\n        epoch += v;\n        drill0(msg.sender, v);\n        emit Act(epoch, v);\n    }}\n",
                    floor = rng.gen_range(0..50u32),
                );
            }
            1 => {
                let _ = write!(
                    s,
                    "    function audit{j}() public atTier{t} {{\n        audits += 1;\n        drill0(msg.sender, {w});\n        emit Audit(epoch, audits);\n    }}\n",
                    w = rng.gen_range(1..9u32),
                );
            }
            _ => {
                let _ = write!(
                    s,
                    "    function peek{j}(address a) public returns (uint) {{\n        require(log{t}[a] > 0);\n        return epoch + log{t}[a] * {w};\n    }}\n",
                    w = rng.gen_range(1..1_000u32),
                );
            }
        }
    }
    let _ = write!(
        s,
        "    function retire() public atTier{top} {{ selfdestruct(treasury); }}\n}}",
        top = tiers - 1,
    );
    Spec { family: "adv_guard_fortress", source: s, truth: GroundTruth::default() }
}

/// A wide ERC20-style token suite: balances + allowance + reward
/// mapping family, an internal bookkeeping chain under `transfer`, and
/// many benign view/adjust selectors. No sinks — clean.
pub fn token_megasuite(rng: &mut impl Rng, k: &Knobs) -> Spec {
    let sfx = suffix(rng);
    let n_maps = k.mappings(rng);
    let depth = k.chain_depth(rng);
    let entries = k.entry_fns(rng);
    let mut s = String::new();
    let _ = write!(
        s,
        "contract Token{sfx} {{\n    uint supply = {supply};\n    uint minted;\n    uint burned;\n",
        supply = rng.gen_range(1_000..100_000_000u64),
    );
    s.push_str("    mapping(address => uint) balances;\n");
    s.push_str("    mapping(address => mapping(address => uint)) allowed;\n");
    for i in 0..n_maps {
        let _ = writeln!(s, "    mapping(address => uint) rewards{i};");
    }
    // Fat internal accrual chain walked on every transfer, claim, and
    // burn — per-holder reward bookkeeping across the whole family.
    let fat = k.chain_fat(rng);
    emit_chain(&mut s, rng, "accrue", "rewards", ("minted", "burned"), depth, n_maps, fat);
    s.push_str(
        "    function transfer(address to, uint v) public {\n        require(balances[msg.sender] >= v);\n        balances[msg.sender] -= v;\n        balances[to] += v;\n        accrue0(msg.sender, v);\n        emit Transfer(uint(to), v);\n    }\n",
    );
    s.push_str(
        "    function approve(address spender, uint v) public { allowed[msg.sender][spender] = v; }\n",
    );
    for j in 0..entries {
        let m = j % n_maps;
        let m2 = (j + 5) % n_maps;
        match j % 4 {
            0 => {
                let _ = write!(
                    s,
                    "    function claim{j}() public {{\n        require(rewards{m}[msg.sender] > 0);\n        balances[msg.sender] += rewards{m}[msg.sender];\n        rewards{m}[msg.sender] = 0;\n        accrue0(msg.sender, {w});\n        emit Claim(minted, burned);\n    }}\n",
                    w = rng.gen_range(1..9u32),
                );
            }
            1 => {
                let _ = write!(
                    s,
                    "    function balance{j}(address a) public returns (uint) {{\n        require(balances[a] + rewards{m}[a] > 0);\n        return balances[a] + rewards{m}[a] + rewards{m2}[a];\n    }}\n"
                );
            }
            2 => {
                let _ = write!(
                    s,
                    "    function burn{j}(uint v) public {{\n        require(balances[msg.sender] >= v);\n        balances[msg.sender] -= v;\n        accrue0(msg.sender, v / {cut});\n        burned += v;\n        emit Burn(uint(msg.sender), v);\n    }}\n",
                    cut = rng.gen_range(2..20u32),
                );
            }
            _ => {
                let _ = write!(
                    s,
                    "    function stat{j}(uint v) public returns (uint) {{\n        accrue0(msg.sender, v);\n        if (v > {cut}) {{ return supply - burned + {w}; }}\n        return minted + v * {f};\n    }}\n",
                    cut = rng.gen_range(10..10_000u32),
                    w = rng.gen_range(1..10_000u32),
                    f = rng.gen_range(2..9u32),
                );
            }
        }
    }
    s.push('}');
    Spec { family: "adv_token_megasuite", source: s, truth: GroundTruth::default() }
}

// ------------------------------------------------------- vulnerable ----

/// The §2 Victim scaled up: a nested membership-guard chain whose bottom
/// tier is publicly self-enrollable. An attacker walks the chain tier by
/// tier (one transaction wave per tier — one delta-rba wave per tier in
/// the engine), then rewrites the owner slot and destroys the contract.
/// Composite by construction.
pub fn guard_chain_breach(rng: &mut impl Rng, k: &Knobs) -> Spec {
    let sfx = suffix(rng);
    let tiers = k.guard_levels(rng);
    let entries = k.entry_fns(rng);
    let mut truth = GroundTruth::of(&[
        Vuln::TaintedOwnerVariable,
        Vuln::AccessibleSelfDestruct,
        Vuln::TaintedSelfDestruct,
    ]);
    truth.composite = true;
    truth.killable = true;
    let mut s = String::new();
    let _ = write!(s, "contract Syndicate{sfx} {{\n    address owner;\n    uint loot;\n    uint heat;\n");
    for i in 0..tiers {
        let _ = write!(s, "    mapping(address => bool) rank{i};\n    mapping(address => uint) spoils{i};\n");
    }
    for i in 0..tiers {
        let _ = writeln!(s, "    modifier atRank{i}() {{ require(rank{i}[msg.sender]); _; }}");
    }
    // The breach: anyone joins rank 0.
    s.push_str("    function join() public { rank0[msg.sender] = true; }\n");
    for i in 1..tiers {
        let _ = writeln!(
            s,
            "    function climb{i}(address a) public atRank{prev} {{ rank{i}[a] = true; spoils{i}[a] = 1; }}",
            prev = i - 1,
        );
    }
    // Fat laundering chain over the spoils family, cloned under every
    // rank guard. Spoils mappings never guard anything, so the chain
    // adds analysis weight without changing which guards are defeated.
    let depth = k.chain_depth(rng);
    let fat = k.chain_fat(rng);
    emit_chain(&mut s, rng, "launder", "spoils", ("loot", "heat"), depth, tiers, fat);
    for j in 0..entries {
        let t = j % tiers;
        match j % 3 {
            0 => {
                let _ = write!(
                    s,
                    "    function skim{j}(uint v) public atRank{t} {{\n        require(v > 0);\n        loot += v;\n        launder0(msg.sender, v);\n    }}\n"
                );
            }
            1 => {
                let _ = write!(
                    s,
                    "    function fence{j}(uint v) public atRank{t} {{\n        launder0(msg.sender, v / {cut});\n        heat += 1;\n        emit Fence(loot, heat);\n    }}\n",
                    cut = rng.gen_range(2..20u32),
                );
            }
            _ => {
                let _ = write!(
                    s,
                    "    function tally{j}(address a) public returns (uint) {{\n        require(spoils{t}[a] > 0);\n        return loot + spoils{t}[a] * {w};\n    }}\n",
                    w = rng.gen_range(1..100u32),
                );
            }
        }
    }
    let top = tiers - 1;
    let _ = writeln!(s, "    function crown(address o) public atRank{top} {{ owner = o; }}");
    let _ = writeln!(s, "    function sack() public atRank{top} {{ selfdestruct(owner); }}");
    s.push_str("    function sweep() public { require(msg.sender == owner); selfdestruct(owner); }\n}");
    Spec { family: "adv_guard_chain_breach", source: s, truth }
}

/// `vuln_pending_owner` at depth: the proposed owner travels through a
/// deep internal staging chain (booking per-stage audit slots and ledger
/// entries on the way) before landing in `pending`; `adopt` copies it
/// into the owner slot that guards minting. The finding requires storage
/// taint *and* survives the long memory-mediated flow — composite.
pub fn deep_pipeline(rng: &mut impl Rng, k: &Knobs) -> Spec {
    let sfx = suffix(rng);
    let depth = k.chain_depth(rng);
    let n_maps = k.mappings(rng);
    let entries = k.entry_fns(rng);
    let mut truth = GroundTruth::of(&[Vuln::TaintedOwnerVariable]);
    truth.composite = true;
    let mut s = String::new();
    let _ = write!(s, "contract Pipeline{sfx} {{\n    address owner;\n    address pending;\n    uint round;\n");
    for i in 0..depth {
        let _ = writeln!(s, "    uint audit{i};");
    }
    for i in 0..n_maps {
        let _ = writeln!(s, "    mapping(address => uint) ledger{i};");
    }
    // The staging chain is fat on purpose: each frame books `fat`
    // ledger entries (keyed by the proposed address — the taint the
    // finding rests on) before threading the proposal one frame deeper.
    let fat = k.chain_fat(rng);
    for i in 0..depth {
        if i + 1 == depth {
            let _ = writeln!(
                s,
                "    function stage{i}(address a, uint v) internal {{ pending = a; audit{i} = v; }}"
            );
        } else {
            let _ = writeln!(s, "    function stage{i}(address a, uint v) internal {{");
            for w in 0..fat {
                let m = (i * fat + w) % n_maps;
                let _ = writeln!(
                    s,
                    "        ledger{m}[a] += v + {b};",
                    b = rng.gen_range(1..99u32)
                );
            }
            let _ = write!(s, "        audit{i} = v;\n        stage{next}(a, v + 1);\n    }}\n", next = i + 1);
        }
    }
    // A benign bookkeeping chain over the same ledgers for the filler
    // entries. It must never write `pending`: only the propose→stage
    // pipeline may reach the owner slot, or the labels would shift.
    emit_chain(&mut s, rng, "wash", "ledger", ("round", "round"), depth, n_maps, fat);
    let _ = write!(
        s,
        "    function propose(address p, uint v) public {{ stage0(p, v); }}\n    function adopt() public {{ owner = pending; round += 1; }}\n    function mint(address to, uint v) public {{\n        require(msg.sender == owner);\n        ledger0[to] += v;\n    }}\n"
    );
    for j in 0..entries {
        let m = j % n_maps;
        let m2 = (j + 2) % n_maps;
        match j % 3 {
            0 => {
                let _ = write!(
                    s,
                    "    function tally{j}(address a) public returns (uint) {{\n        require(ledger{m}[a] > 0);\n        return ledger{m}[a] + ledger{m2}[a] + audit{am};\n    }}\n",
                    am = j % depth,
                );
            }
            1 => {
                let _ = write!(
                    s,
                    "    function seed{j}(uint v) public {{\n        require(v > {floor});\n        wash0(msg.sender, v);\n        ledger{m2}[msg.sender] += v / {cut};\n        emit Seed(round, v);\n    }}\n",
                    floor = rng.gen_range(0..100u32),
                    cut = rng.gen_range(2..20u32),
                );
            }
            _ => {
                let _ = write!(
                    s,
                    "    function spin{j}(uint v) public {{\n        if (v > {gate}) {{ round += {inc}; }}\n        wash0(msg.sender, v);\n        audit{am} += 1;\n    }}\n",
                    gate = rng.gen_range(1..5_000u32),
                    inc = rng.gen_range(1..7u32),
                    am = j % depth,
                );
            }
        }
    }
    s.push('}');
    Spec { family: "adv_deep_pipeline", source: s, truth }
}

// --------------------------------------------------- TemplateFn shims ---

macro_rules! at_scale {
    ($($name:ident => $inner:ident / $knobs:ident),* $(,)?) => {
        $(
            /// Preset wrapper for the weighted-template tables.
            pub fn $name(rng: &mut rand::rngs::StdRng) -> Spec {
                $inner(rng, &Knobs::$knobs)
            }
        )*
    };
}

at_scale! {
    defi_protocol_realistic => defi_protocol / REALISTIC,
    defi_protocol_adversarial => defi_protocol / ADVERSARIAL,
    guard_fortress_realistic => guard_fortress / REALISTIC,
    guard_fortress_adversarial => guard_fortress / ADVERSARIAL,
    token_megasuite_realistic => token_megasuite / REALISTIC,
    token_megasuite_adversarial => token_megasuite / ADVERSARIAL,
    guard_chain_breach_realistic => guard_chain_breach / REALISTIC,
    guard_chain_breach_adversarial => guard_chain_breach / ADVERSARIAL,
    deep_pipeline_realistic => deep_pipeline / REALISTIC,
    deep_pipeline_adversarial => deep_pipeline / ADVERSARIAL,
}
