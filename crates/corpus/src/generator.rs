//! Population generation: weighted sampling of templates, compilation,
//! deduplication by bytecode, balance assignment, and deployment onto a
//! test network.

use crate::templates::{weighted_templates_for, GroundTruth, Profile, Spec};
use chain::TestNet;
use evm::{Address, U256, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One contract in the generated population.
#[derive(Clone, Debug)]
pub struct CorpusContract {
    /// Stable index within the population.
    pub id: usize,
    /// Template family.
    pub family: &'static str,
    /// minisol source — `None` models contracts without verified source
    /// on Etherscan (§6.2 samples only contracts *with* source).
    pub source: Option<String>,
    /// Runtime bytecode.
    pub bytecode: Vec<u8>,
    /// Initial storage from state-var initializers.
    pub initial_storage: Vec<(U256, U256)>,
    /// Ground truth.
    pub truth: GroundTruth,
    /// ETH balance (wei) the deployed instance holds.
    pub balance: U256,
    /// Whether the (hypothetical) source compiles with Solidity 0.5.8+ —
    /// the Securify2 domain gate (§6.2: under 3% of contracts).
    pub modern_solidity: bool,
}

/// Population parameters.
#[derive(Clone, Copy, Debug)]
pub struct PopulationConfig {
    /// Number of unique contracts.
    pub size: usize,
    /// RNG seed (populations are fully deterministic given the seed).
    pub seed: u64,
    /// Fraction of contracts with verified source available.
    pub source_fraction: f64,
    /// Fraction of sourced contracts on Solidity 0.5.8+ (Securify2's
    /// domain).
    pub modern_fraction: f64,
    /// Which deployment universe to model.
    pub profile: Profile,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 1000,
            seed: 0xE71A,
            source_fraction: 0.35,
            modern_fraction: 0.10,
            profile: Profile::default(),
        }
    }
}

/// A generated contract population.
#[derive(Clone, Debug, Default)]
pub struct Population {
    /// The contracts.
    pub contracts: Vec<CorpusContract>,
}

impl Population {
    /// Generates a deterministic population.
    ///
    /// # Panics
    ///
    /// Panics if a template produces source that fails to compile — a
    /// template bug, covered by tests.
    pub fn generate(cfg: &PopulationConfig) -> Population {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let templates = weighted_templates_for(cfg.profile);
        let total_weight: f64 = templates.iter().map(|(w, _)| w).sum();

        let mut contracts = Vec::with_capacity(cfg.size);
        let mut seen = std::collections::HashSet::new();
        let mut id = 0usize;
        while contracts.len() < cfg.size {
            // Weighted template choice.
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut spec: Option<Spec> = None;
            for (w, f) in &templates {
                if pick < *w {
                    spec = Some(f(&mut rng));
                    break;
                }
                pick -= w;
            }
            let spec = spec.unwrap_or_else(|| templates.last().expect("nonempty").1(&mut rng));
            let compiled = minisol::compile_source(&spec.source)
                .unwrap_or_else(|e| panic!("template {} failed to compile: {e}", spec.family));
            // Unique bytecodes only (the paper's dedup).
            if !seen.insert(compiled.bytecode.clone()) {
                continue;
            }
            // Heavy-tailed balance: most contracts hold dust; a few hold a
            // lot. Exploitable contracts skew poor (§6.2's observation that
            // value concentrates in non-exploitable contracts).
            let rich_cap: u64 =
                if spec.truth.exploitable.is_empty() { 10_000_000_000 } else { 50_000_000 };
            let balance = if rng.gen_bool(0.15) {
                U256::from(rng.gen_range(0..rich_cap))
            } else {
                U256::from(rng.gen_range(0..1_000u64))
            };
            let has_source = rng.gen_bool(cfg.source_fraction);
            let modern_bias = if crate::templates::is_old_style(spec.family) {
                cfg.modern_fraction * 0.25
            } else {
                cfg.modern_fraction
            };
            let modern_solidity = has_source && rng.gen_bool(modern_bias);
            contracts.push(CorpusContract {
                id,
                family: spec.family,
                source: has_source.then(|| spec.source.clone()),
                bytecode: compiled.bytecode,
                initial_storage: compiled.initial_storage,
                truth: spec.truth,
                balance,
                modern_solidity,
            });
            id += 1;
        }
        Population { contracts }
    }

    /// Deploys every contract onto `net`, returning their addresses
    /// (index-aligned with [`Population::contracts`]).
    pub fn deploy(&self, net: &mut TestNet) -> Vec<Address> {
        let mut addresses = Vec::with_capacity(self.contracts.len());
        for c in &self.contracts {
            let address = Address::from_seed(0xC0DE_0000 + c.id as u64);
            net.deploy_at(address, c.bytecode.clone());
            for (slot, value) in &c.initial_storage {
                net.state_mut().storage_set(address, *slot, *value);
            }
            net.state_mut().set_balance(address, c.balance);
            net.state_mut().commit();
            addresses.push(address);
        }
        addresses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::weighted_templates;
    use ethainter::{analyze_bytecode, Config, Vuln};

    #[test]
    fn every_template_compiles_and_is_deterministic() {
        for (i, (_, f)) in weighted_templates().iter().enumerate() {
            let mut r1 = StdRng::seed_from_u64(42 + i as u64);
            let mut r2 = StdRng::seed_from_u64(42 + i as u64);
            let s1 = f(&mut r1);
            let s2 = f(&mut r2);
            assert_eq!(s1.source, s2.source, "template {i} nondeterministic");
            minisol::compile_source(&s1.source)
                .unwrap_or_else(|e| panic!("template {} does not compile: {e}", s1.family));
        }
    }

    #[test]
    fn population_is_deterministic_and_unique() {
        let cfg = PopulationConfig { size: 50, ..Default::default() };
        let p1 = Population::generate(&cfg);
        let p2 = Population::generate(&cfg);
        assert_eq!(p1.contracts.len(), 50);
        for (a, b) in p1.contracts.iter().zip(&p2.contracts) {
            assert_eq!(a.bytecode, b.bytecode);
            assert_eq!(a.truth, b.truth);
        }
        let unique: std::collections::HashSet<_> =
            p1.contracts.iter().map(|c| c.bytecode.clone()).collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn ground_truth_matches_analysis_on_labelled_templates() {
        // For every non-decoy template: Ethainter must flag exactly the
        // exploitable classes (hard_dynamic_owner is the known FN).
        for (_, f) in weighted_templates() {
            let mut rng = StdRng::seed_from_u64(7);
            let spec = f(&mut rng);
            if spec.family == "hard_dynamic_owner" {
                continue;
            }
            let compiled = minisol::compile_source(&spec.source).unwrap();
            let report = analyze_bytecode(&compiled.bytecode, &Config::default());
            for v in &spec.truth.exploitable {
                assert!(
                    report.has(*v),
                    "{}: expected {v:?}, got {:?}",
                    spec.family,
                    report.findings
                );
            }
            // No spurious flags beyond exploitable + decoy.
            for v in Vuln::ALL {
                if report.has(v) {
                    assert!(
                        spec.truth.exploitable.contains(&v) || spec.truth.decoy.contains(&v),
                        "{}: spurious {v:?}",
                        spec.family
                    );
                }
            }
        }
    }

    #[test]
    fn decoys_are_flagged_but_not_exploitable() {
        for (_, f) in weighted_templates() {
            let mut rng = StdRng::seed_from_u64(11);
            let spec = f(&mut rng);
            if spec.truth.decoy.is_empty() {
                continue;
            }
            let compiled = minisol::compile_source(&spec.source).unwrap();
            let report = analyze_bytecode(&compiled.bytecode, &Config::default());
            for v in &spec.truth.decoy {
                assert!(report.has(*v), "{}: decoy {v:?} not flagged", spec.family);
            }
        }
    }

    #[test]
    fn hard_dynamic_owner_is_a_known_false_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = crate::templates::hard_dynamic_owner(&mut rng);
        let compiled = minisol::compile_source(&spec.source).unwrap();
        let precise = analyze_bytecode(&compiled.bytecode, &Config::default());
        assert!(
            !precise.has(Vuln::TaintedOwnerVariable),
            "precise mode should miss the dynamic-slot owner write"
        );
        assert!(
            !precise.has(Vuln::AccessibleSelfDestruct),
            "precise mode should miss the whole chain"
        );
        // The conservative ablation (Fig. 8c) catches the exploit chain
        // (it cannot pinpoint *which* slot, so the owner-variable class
        // itself stays unflagged — but the defeated guard surfaces the
        // selfdestruct findings).
        let conservative = analyze_bytecode(&compiled.bytecode, &Config::conservative_storage());
        assert!(conservative.has(Vuln::AccessibleSelfDestruct), "{:?}", conservative.findings);
        assert!(conservative.has(Vuln::TaintedSelfDestruct), "{:?}", conservative.findings);
    }

    #[test]
    fn deploys_onto_testnet() {
        let cfg = PopulationConfig { size: 10, ..Default::default() };
        let pop = Population::generate(&cfg);
        let mut net = TestNet::new();
        let addrs = pop.deploy(&mut net);
        assert_eq!(addrs.len(), 10);
        for (c, a) in pop.contracts.iter().zip(&addrs) {
            assert_eq!(net.state().code(*a), c.bytecode);
            assert_eq!(net.balance(*a), c.balance);
        }
    }
}
