//! Population generation: weighted sampling of templates, compilation,
//! deduplication by bytecode, balance assignment, and deployment onto a
//! test network.
//!
//! Two entry points share one engine: [`Population::generate`]
//! materializes a whole population in memory, while [`stream`] yields
//! the *same* contracts lazily (identical RNG sequence, identical
//! dedup) so populations larger than RAM can flow through the batch
//! driver one contract at a time. The dedup set keeps only Keccak-256
//! bytecode hashes, so streaming memory stays bounded by 32 bytes per
//! unique contract, not by the bytecodes themselves.

use crate::templates::{weighted_templates_scaled, GroundTruth, Profile, Scale, Spec, TemplateFn};
use chain::TestNet;
use evm::{Address, U256, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One contract in the generated population.
#[derive(Clone, Debug)]
pub struct CorpusContract {
    /// Stable index within the population.
    pub id: usize,
    /// Template family.
    pub family: &'static str,
    /// minisol source — `None` models contracts without verified source
    /// on Etherscan (§6.2 samples only contracts *with* source).
    pub source: Option<String>,
    /// Runtime bytecode.
    pub bytecode: Vec<u8>,
    /// Initial storage from state-var initializers.
    pub initial_storage: Vec<(U256, U256)>,
    /// Ground truth.
    pub truth: GroundTruth,
    /// ETH balance (wei) the deployed instance holds.
    pub balance: U256,
    /// Whether the (hypothetical) source compiles with Solidity 0.5.8+ —
    /// the Securify2 domain gate (§6.2: under 3% of contracts).
    pub modern_solidity: bool,
}

/// Population parameters.
#[derive(Clone, Copy, Debug)]
pub struct PopulationConfig {
    /// Number of unique contracts.
    pub size: usize,
    /// RNG seed (populations are fully deterministic given the seed).
    pub seed: u64,
    /// Fraction of contracts with verified source available.
    pub source_fraction: f64,
    /// Fraction of sourced contracts on Solidity 0.5.8+ (Securify2's
    /// domain).
    pub modern_fraction: f64,
    /// Which deployment universe to model.
    pub profile: Profile,
    /// Structural scale of the individual contracts (default
    /// [`Scale::Small`] keeps historical populations byte-identical).
    pub scale: Scale,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 1000,
            seed: 0xE71A,
            source_fraction: 0.35,
            modern_fraction: 0.10,
            profile: Profile::default(),
            scale: Scale::default(),
        }
    }
}

/// A generated contract population.
#[derive(Clone, Debug, Default)]
pub struct Population {
    /// The contracts.
    pub contracts: Vec<CorpusContract>,
    /// Compiled candidates rejected because their runtime bytecode
    /// duplicated an earlier contract's — the dedup the paper applies to
    /// the mainnet snapshot (38M accounts → 240K unique codes). Surfaced
    /// so cache hit-rate numbers over generated populations are known to
    /// measure the *cache*, not intra-population duplication.
    pub duplicates_rejected: usize,
}

/// Lazily yields the contracts of a population, in the exact order (and
/// from the exact RNG sequence) [`Population::generate`] would produce
/// them — the streaming corpus adapter for the batch driver. Infinite:
/// callers bound it with [`Iterator::take`] or by count.
pub struct PopulationStream {
    rng: StdRng,
    templates: Vec<(f64, TemplateFn)>,
    total_weight: f64,
    /// Keccak-256 hashes of bytecodes already emitted (bounded memory).
    seen: std::collections::HashSet<[u8; 32]>,
    source_fraction: f64,
    modern_fraction: f64,
    next_id: usize,
    duplicates_rejected: usize,
}

/// Streams the population [`Population::generate`] would build for
/// `cfg`, one contract at a time. `cfg.size` is ignored — take as many
/// contracts as needed; memory stays bounded by the dedup hash set.
pub fn stream(cfg: &PopulationConfig) -> PopulationStream {
    let templates = weighted_templates_scaled(cfg.profile, cfg.scale);
    let total_weight: f64 = templates.iter().map(|(w, _)| w).sum();
    PopulationStream {
        rng: StdRng::seed_from_u64(cfg.seed),
        templates,
        total_weight,
        seen: std::collections::HashSet::new(),
        source_fraction: cfg.source_fraction,
        modern_fraction: cfg.modern_fraction,
        next_id: 0,
        duplicates_rejected: 0,
    }
}

impl PopulationStream {
    /// Candidates rejected so far because their bytecode duplicated an
    /// earlier contract's.
    pub fn duplicates_rejected(&self) -> usize {
        self.duplicates_rejected
    }
}

impl Iterator for PopulationStream {
    type Item = CorpusContract;

    fn next(&mut self) -> Option<CorpusContract> {
        loop {
            // Weighted template choice.
            let mut pick = self.rng.gen_range(0.0..self.total_weight);
            let mut spec: Option<Spec> = None;
            for (w, f) in &self.templates {
                if pick < *w {
                    spec = Some(f(&mut self.rng));
                    break;
                }
                pick -= w;
            }
            let spec = spec
                .unwrap_or_else(|| self.templates.last().expect("nonempty").1(&mut self.rng));
            let compiled = minisol::compile_source(&spec.source)
                .unwrap_or_else(|e| panic!("template {} failed to compile: {e}", spec.family));
            // Unique bytecodes only (the paper's dedup).
            if !self.seen.insert(evm::keccak256(&compiled.bytecode)) {
                self.duplicates_rejected += 1;
                continue;
            }
            // Heavy-tailed balance: most contracts hold dust; a few hold a
            // lot. Exploitable contracts skew poor (§6.2's observation that
            // value concentrates in non-exploitable contracts).
            let rich_cap: u64 =
                if spec.truth.exploitable.is_empty() { 10_000_000_000 } else { 50_000_000 };
            let balance = if self.rng.gen_bool(0.15) {
                U256::from(self.rng.gen_range(0..rich_cap))
            } else {
                U256::from(self.rng.gen_range(0..1_000u64))
            };
            let has_source = self.rng.gen_bool(self.source_fraction);
            let modern_bias = if crate::templates::is_old_style(spec.family) {
                self.modern_fraction * 0.25
            } else {
                self.modern_fraction
            };
            let modern_solidity = has_source && self.rng.gen_bool(modern_bias);
            let id = self.next_id;
            self.next_id += 1;
            return Some(CorpusContract {
                id,
                family: spec.family,
                source: has_source.then(|| spec.source.clone()),
                bytecode: compiled.bytecode,
                initial_storage: compiled.initial_storage,
                truth: spec.truth,
                balance,
                modern_solidity,
            });
        }
    }
}

impl Population {
    /// Generates a deterministic population.
    ///
    /// # Panics
    ///
    /// Panics if a template produces source that fails to compile — a
    /// template bug, covered by tests.
    pub fn generate(cfg: &PopulationConfig) -> Population {
        let mut s = stream(cfg);
        let contracts: Vec<CorpusContract> = s.by_ref().take(cfg.size).collect();
        Population { contracts, duplicates_rejected: s.duplicates_rejected }
    }

    /// Fraction of compiled candidates the bytecode dedup rejected:
    /// `duplicates / (unique + duplicates)`. `0.0` for an empty
    /// population.
    pub fn duplicate_rate(&self) -> f64 {
        let total = self.contracts.len() + self.duplicates_rejected;
        if total == 0 {
            0.0
        } else {
            self.duplicates_rejected as f64 / total as f64
        }
    }

    /// Deploys every contract onto `net`, returning their addresses
    /// (index-aligned with [`Population::contracts`]).
    pub fn deploy(&self, net: &mut TestNet) -> Vec<Address> {
        let mut addresses = Vec::with_capacity(self.contracts.len());
        for c in &self.contracts {
            let address = Address::from_seed(0xC0DE_0000 + c.id as u64);
            net.deploy_at(address, c.bytecode.clone());
            for (slot, value) in &c.initial_storage {
                net.state_mut().storage_set(address, *slot, *value);
            }
            net.state_mut().set_balance(address, c.balance);
            net.state_mut().commit();
            addresses.push(address);
        }
        addresses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::weighted_templates;
    use ethainter::{analyze_bytecode, Config, Vuln};

    #[test]
    fn every_template_compiles_and_is_deterministic() {
        for (i, (_, f)) in weighted_templates().iter().enumerate() {
            let mut r1 = StdRng::seed_from_u64(42 + i as u64);
            let mut r2 = StdRng::seed_from_u64(42 + i as u64);
            let s1 = f(&mut r1);
            let s2 = f(&mut r2);
            assert_eq!(s1.source, s2.source, "template {i} nondeterministic");
            minisol::compile_source(&s1.source)
                .unwrap_or_else(|e| panic!("template {} does not compile: {e}", s1.family));
        }
    }

    #[test]
    fn population_is_deterministic_and_unique() {
        let cfg = PopulationConfig { size: 50, ..Default::default() };
        let p1 = Population::generate(&cfg);
        let p2 = Population::generate(&cfg);
        assert_eq!(p1.contracts.len(), 50);
        for (a, b) in p1.contracts.iter().zip(&p2.contracts) {
            assert_eq!(a.bytecode, b.bytecode);
            assert_eq!(a.truth, b.truth);
        }
        let unique: std::collections::HashSet<_> =
            p1.contracts.iter().map(|c| c.bytecode.clone()).collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn ground_truth_matches_analysis_on_labelled_templates() {
        // For every non-decoy template: Ethainter must flag exactly the
        // exploitable classes (hard_dynamic_owner is the known FN).
        for (_, f) in weighted_templates() {
            let mut rng = StdRng::seed_from_u64(7);
            let spec = f(&mut rng);
            if spec.family == "hard_dynamic_owner" {
                continue;
            }
            let compiled = minisol::compile_source(&spec.source).unwrap();
            let report = analyze_bytecode(&compiled.bytecode, &Config::default());
            for v in &spec.truth.exploitable {
                assert!(
                    report.has(*v),
                    "{}: expected {v:?}, got {:?}",
                    spec.family,
                    report.findings
                );
            }
            // No spurious flags beyond exploitable + decoy.
            for v in Vuln::ALL {
                if report.has(v) {
                    assert!(
                        spec.truth.exploitable.contains(&v) || spec.truth.decoy.contains(&v),
                        "{}: spurious {v:?}",
                        spec.family
                    );
                }
            }
        }
    }

    #[test]
    fn decoys_are_flagged_but_not_exploitable() {
        for (_, f) in weighted_templates() {
            let mut rng = StdRng::seed_from_u64(11);
            let spec = f(&mut rng);
            if spec.truth.decoy.is_empty() {
                continue;
            }
            let compiled = minisol::compile_source(&spec.source).unwrap();
            let report = analyze_bytecode(&compiled.bytecode, &Config::default());
            for v in &spec.truth.decoy {
                assert!(report.has(*v), "{}: decoy {v:?} not flagged", spec.family);
            }
        }
    }

    #[test]
    fn hard_dynamic_owner_is_a_known_false_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = crate::templates::hard_dynamic_owner(&mut rng);
        let compiled = minisol::compile_source(&spec.source).unwrap();
        let precise = analyze_bytecode(&compiled.bytecode, &Config::default());
        assert!(
            !precise.has(Vuln::TaintedOwnerVariable),
            "precise mode should miss the dynamic-slot owner write"
        );
        assert!(
            !precise.has(Vuln::AccessibleSelfDestruct),
            "precise mode should miss the whole chain"
        );
        // The conservative ablation (Fig. 8c) catches the exploit chain
        // (it cannot pinpoint *which* slot, so the owner-variable class
        // itself stays unflagged — but the defeated guard surfaces the
        // selfdestruct findings).
        let conservative = analyze_bytecode(&compiled.bytecode, &Config::conservative_storage());
        assert!(conservative.has(Vuln::AccessibleSelfDestruct), "{:?}", conservative.findings);
        assert!(conservative.has(Vuln::TaintedSelfDestruct), "{:?}", conservative.findings);
    }

    #[test]
    fn stream_matches_generate_and_counts_duplicates() {
        let cfg = PopulationConfig { size: 60, seed: 21, ..Default::default() };
        let pop = Population::generate(&cfg);
        let mut s = stream(&cfg);
        let streamed: Vec<_> = s.by_ref().take(60).collect();
        assert_eq!(streamed.len(), pop.contracts.len());
        for (a, b) in streamed.iter().zip(&pop.contracts) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.family, b.family);
            assert_eq!(a.bytecode, b.bytecode);
            assert_eq!(a.balance, b.balance);
            assert_eq!(a.source, b.source);
        }
        assert_eq!(s.duplicates_rejected(), pop.duplicates_rejected);
        // The template space is small enough that 60 unique contracts
        // require rejecting at least some duplicate compilations.
        let rate = pop.duplicate_rate();
        assert!((0.0..1.0).contains(&rate), "rate {rate}");
        assert_eq!(
            rate == 0.0,
            pop.duplicates_rejected == 0,
            "rate and counter must agree"
        );
    }

    #[test]
    fn deploys_onto_testnet() {
        let cfg = PopulationConfig { size: 10, ..Default::default() };
        let pop = Population::generate(&cfg);
        let mut net = TestNet::new();
        let addrs = pop.deploy(&mut net);
        assert_eq!(addrs.len(), 10);
        for (c, a) in pop.contracts.iter().zip(&addrs) {
            assert_eq!(net.state().code(*a), c.bytecode);
            assert_eq!(net.balance(*a), c.balance);
        }
    }
}
