//! Per-class ground-truth tests for the detector-suite-v2 families:
//! every positive template is detected under its class (and only the
//! labelled classes), and every hardened negative produces **zero**
//! findings — across several randomized draws per family, so filler
//! variables and identifier renames never perturb the verdict.

use corpus::templates::{
    safe_blocknumber_payout, safe_checked_send, safe_effects_first_bank, safe_sender_auth,
    vuln_reentrant_bank, vuln_timestamp_payout, vuln_txorigin_auth, vuln_unchecked_send,
    Spec, TemplateFn,
};
use ethainter::{analyze_bytecode, Config, Report, Vuln};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DRAWS: u64 = 8;

fn analyze_spec(spec: &Spec) -> Report {
    let compiled = minisol::compile_source(&spec.source)
        .unwrap_or_else(|e| panic!("{}: does not compile: {e}", spec.family));
    analyze_bytecode(&compiled.bytecode, &Config::default())
}

fn assert_positive(f: TemplateFn, class: Vuln) {
    for seed in 0..DRAWS {
        let mut rng = StdRng::seed_from_u64(0xD5_0000 + seed);
        let spec = f(&mut rng);
        let report = analyze_spec(&spec);
        assert!(
            report.has(class),
            "{} (seed {seed}): expected {class:?}, got {:?}",
            spec.family,
            report.findings
        );
        for v in Vuln::ALL {
            assert!(
                !report.has(v) || spec.truth.exploitable.contains(&v),
                "{} (seed {seed}): spurious {v:?}",
                spec.family
            );
        }
    }
}

fn assert_negative(f: TemplateFn) {
    for seed in 0..DRAWS {
        let mut rng = StdRng::seed_from_u64(0x5AFE_0000 + seed);
        let spec = f(&mut rng);
        let report = analyze_spec(&spec);
        assert!(
            report.findings.is_empty(),
            "{} (seed {seed}): hardened negative flagged: {:?}",
            spec.family,
            report.findings
        );
    }
}

#[test]
fn reentrant_bank_detected_and_hardened_variant_clean() {
    assert_positive(vuln_reentrant_bank, Vuln::Reentrancy);
    assert_negative(safe_effects_first_bank);
}

#[test]
fn txorigin_auth_detected_and_sender_variant_clean() {
    assert_positive(vuln_txorigin_auth, Vuln::TxOriginAuth);
    assert_negative(safe_sender_auth);
}

#[test]
fn timestamp_payout_detected_and_blocknumber_variant_clean() {
    assert_positive(vuln_timestamp_payout, Vuln::TimestampDependence);
    assert_negative(safe_blocknumber_payout);
}

#[test]
fn unchecked_send_detected_and_checked_variant_clean() {
    assert_positive(vuln_unchecked_send, Vuln::UncheckedCallReturn);
    assert_negative(safe_checked_send);
}

#[test]
fn v2_positives_render_witnesses() {
    // Every positive family yields at least one witness whose final step
    // is the class sink — the raw material `ethainter explain` renders.
    let cases: [(TemplateFn, Vuln); 4] = [
        (vuln_reentrant_bank, Vuln::Reentrancy),
        (vuln_txorigin_auth, Vuln::TxOriginAuth),
        (vuln_timestamp_payout, Vuln::TimestampDependence),
        (vuln_unchecked_send, Vuln::UncheckedCallReturn),
    ];
    for (f, class) in cases {
        let mut rng = StdRng::seed_from_u64(0x717);
        let spec = f(&mut rng);
        let compiled = minisol::compile_source(&spec.source).unwrap();
        let cfg = Config { witness: true, ..Config::default() };
        let report = analyze_bytecode(&compiled.bytecode, &cfg);
        let witnesses = report.witnesses.expect("witness mode on");
        let w = witnesses
            .iter()
            .find(|w| w.vuln == class)
            .unwrap_or_else(|| panic!("{}: no {class:?} witness", spec.family));
        let last = w.steps.last().expect("non-empty witness");
        assert!(
            last.rule.starts_with("sink-"),
            "{}: witness must end at the sink, got {:?}",
            spec.family,
            last
        );
    }
}
