//! Property tests over generated populations: every contract must be
//! deployable and behaviorally sane, and labels must be internally
//! consistent.

use corpus::{Population, PopulationConfig, Profile};
use ethainter::Vuln;
use evm::U256;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed yields a population whose every contract decompiles
    /// cleanly and deploys+responds on the testnet.
    #[test]
    fn populations_are_deployable(seed in 0u64..10_000) {
        let pop = Population::generate(&PopulationConfig {
            size: 30,
            seed,
            ..Default::default()
        });
        let mut net = chain::TestNet::new();
        let addrs = pop.deploy(&mut net);
        let user = net.funded_account(U256::from(1_000_000u64));
        for (c, &addr) in pop.contracts.iter().zip(&addrs) {
            let p = decompiler::decompile(&c.bytecode);
            prop_assert!(!p.incomplete, "{} hit the decompile budget", c.family);
            prop_assert!(!p.functions.is_empty(), "{} has no public functions", c.family);
            // Poke the first public function; any outcome except a VM
            // bug (panic) is acceptable.
            let sel = p.functions[0].selector;
            let mut data = sel.to_be_bytes().to_vec();
            data.extend_from_slice(&user.to_u256().to_be_bytes());
            data.extend_from_slice(&user.to_u256().to_be_bytes());
            let _ = net.call(user, addr, data, U256::ZERO);
        }
    }

    /// Label consistency: killable implies a selfdestruct- or
    /// delegatecall-class exploitable label; decoys never overlap
    /// exploitable.
    #[test]
    fn labels_are_consistent(seed in 0u64..10_000) {
        let pop = Population::generate(&PopulationConfig {
            size: 60,
            seed,
            ..Default::default()
        });
        for c in &pop.contracts {
            if c.truth.killable {
                prop_assert!(
                    c.truth.exploitable.contains(&Vuln::AccessibleSelfDestruct)
                        || c.truth.exploitable.contains(&Vuln::TaintedSelfDestruct)
                        || c.truth.exploitable.contains(&Vuln::TaintedDelegateCall),
                    "{}: killable without a destroy-class label",
                    c.family
                );
            }
            for v in &c.truth.decoy {
                prop_assert!(
                    !c.truth.exploitable.contains(v),
                    "{}: {v:?} both decoy and exploitable",
                    c.family
                );
            }
        }
    }

    /// The Ropsten profile stays in its calibrated flagged regime.
    #[test]
    fn ropsten_profile_is_mostly_safe(seed in 0u64..1_000) {
        let pop = Population::generate(&PopulationConfig {
            size: 400,
            seed,
            profile: Profile::Ropsten,
            ..Default::default()
        });
        let vulnerable =
            pop.contracts.iter().filter(|c| !c.truth.exploitable.is_empty()).count();
        // ~0.55% expected; allow generous sampling noise on 400.
        prop_assert!(vulnerable <= 12, "unexpectedly many vulnerable: {vulnerable}");
    }
}

#[test]
fn sources_when_present_reparse_and_recompile() {
    let pop = Population::generate(&PopulationConfig {
        size: 80,
        seed: 42,
        source_fraction: 1.0,
        ..Default::default()
    });
    for c in &pop.contracts {
        let src = c.source.as_deref().expect("forced source_fraction=1");
        let reparsed = minisol::parse(src).expect("source parses");
        let printed = minisol::pretty::print_contract(&reparsed);
        let recompiled = minisol::compile_source(&printed).expect("pretty output compiles");
        assert_eq!(
            recompiled.bytecode, c.bytecode,
            "{}: print→compile diverges from original bytecode",
            c.family
        );
    }
}
