//! Shape guarantees for the adversarial-scale corpus (ISSUE 6): size
//! envelopes, clean decompilation within default budgets, ground-truth
//! agreement, and the configured composite seed rate.

use corpus::adversarial as adv;
use corpus::templates::TemplateFn;
use corpus::{Population, PopulationConfig, Scale};
use ethainter::{analyze_bytecode, Config, Vuln};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every adversarial family at both scale presets, with the bytecode
/// size envelope (bytes) each preset promises.
fn families() -> Vec<(&'static str, TemplateFn, (usize, usize))> {
    const REALISTIC: (usize, usize) = (2_000, 25_000);
    const ADVERSARIAL: (usize, usize) = (10_000, 50_000);
    vec![
        ("defi_protocol/realistic", adv::defi_protocol_realistic as TemplateFn, REALISTIC),
        ("defi_protocol/adversarial", adv::defi_protocol_adversarial, ADVERSARIAL),
        ("guard_fortress/realistic", adv::guard_fortress_realistic, REALISTIC),
        ("guard_fortress/adversarial", adv::guard_fortress_adversarial, ADVERSARIAL),
        ("token_megasuite/realistic", adv::token_megasuite_realistic, REALISTIC),
        ("token_megasuite/adversarial", adv::token_megasuite_adversarial, ADVERSARIAL),
        ("guard_chain_breach/realistic", adv::guard_chain_breach_realistic, REALISTIC),
        ("guard_chain_breach/adversarial", adv::guard_chain_breach_adversarial, ADVERSARIAL),
        ("deep_pipeline/realistic", adv::deep_pipeline_realistic, REALISTIC),
        ("deep_pipeline/adversarial", adv::deep_pipeline_adversarial, ADVERSARIAL),
    ]
}

/// Tuning aid, not a gate: prints bytecode bytes, TAC statements, and
/// block counts per family so the `Knobs` presets can be re-calibrated.
/// Run with `cargo test -p corpus probe_adversarial -- --ignored --nocapture`.
#[test]
#[ignore]
fn probe_adversarial_shapes() {
    for (name, f, _) in families() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = f(&mut rng);
        let compiled = minisol::compile_source(&spec.source).unwrap();
        let p = decompiler::decompile(&compiled.bytecode);
        let stmts: usize = p.blocks.iter().map(|b| b.stmts.len()).sum();
        println!(
            "{name}: {} B, {} stmts, {} blocks, incomplete={}",
            compiled.bytecode.len(),
            stmts,
            p.blocks.len(),
            p.incomplete
        );
    }
}

#[test]
fn adversarial_bytecode_stays_within_size_bounds() {
    for (name, f, (lo, hi)) in families() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let spec = f(&mut rng);
            let compiled = minisol::compile_source(&spec.source)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: compile failed: {e}"));
            let n = compiled.bytecode.len();
            assert!(
                (lo..=hi).contains(&n),
                "{name} seed {seed}: bytecode {n} B outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn adversarial_contracts_decompile_cleanly_within_budget() {
    // Complete decompilation under the default Limits AND zero IR lint
    // violations — the same gate `ethainter lint` applies.
    for (name, f, _) in families() {
        let mut rng = StdRng::seed_from_u64(77);
        let spec = f(&mut rng);
        let compiled = minisol::compile_source(&spec.source).unwrap();
        let program = decompiler::decompile(&compiled.bytecode);
        assert!(!program.incomplete, "{name}: decompilation hit its budget");
        assert!(program.warnings.is_empty(), "{name}: warnings {:?}", program.warnings);
        let bad = decompiler::validate(&program);
        assert!(bad.is_empty(), "{name}: IR violations {bad:?}");
    }
}

#[test]
fn ground_truth_matches_analysis_on_adversarial_templates() {
    for (name, f, _) in families() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = f(&mut rng);
        let compiled = minisol::compile_source(&spec.source).unwrap();
        let report = analyze_bytecode(&compiled.bytecode, &Config::default());
        assert!(!report.timed_out, "{name}: timed out");
        for v in &spec.truth.exploitable {
            assert!(report.has(*v), "{name}: expected {v:?}, got {:?}", report.findings);
        }
        for v in Vuln::ALL {
            if report.has(v) {
                assert!(
                    spec.truth.exploitable.contains(&v) || spec.truth.decoy.contains(&v),
                    "{name}: spurious {v:?}"
                );
            }
        }
        // Composite families must carry the ✰ marker on at least one
        // finding; clean families produce no findings at all.
        if spec.truth.composite {
            assert!(
                report.findings.iter().any(|x| x.composite),
                "{name}: no composite marker in {:?}",
                report.findings
            );
        }
        if spec.truth.exploitable.is_empty() && spec.truth.decoy.is_empty() {
            assert!(report.findings.is_empty(), "{name}: findings {:?}", report.findings);
        }
    }
}

#[test]
fn scaled_populations_seed_composite_findings_at_configured_rate() {
    // The Realistic mixture carries ≥ 13% composite-labelled weight
    // (breach + pipeline + small composites), so a 40-contract
    // population is all but guaranteed to contain composite chains; the
    // fixed seed here makes the guarantee exact, and the analyzer must
    // confirm ≥ 1 of them end-to-end.
    for scale in [Scale::Realistic, Scale::Adversarial] {
        let pop = Population::generate(&PopulationConfig {
            size: 40,
            seed: 0xAD5E,
            scale,
            ..Default::default()
        });
        let labelled: Vec<_> = pop.contracts.iter().filter(|c| c.truth.composite).collect();
        assert!(
            !labelled.is_empty(),
            "{scale:?}: no composite-labelled contract in 40 draws"
        );
        let confirmed = labelled.iter().any(|c| {
            let r = analyze_bytecode(&c.bytecode, &Config::default());
            r.findings.iter().any(|x| x.composite)
        });
        assert!(confirmed, "{scale:?}: no composite finding confirmed by analysis");
    }
}

#[test]
fn default_scale_population_is_unchanged() {
    // Scale::Small must leave the historical population byte-identical
    // (cache keys and checkpoint/resume state depend on it).
    let old = PopulationConfig { size: 30, seed: 0xE71A, ..Default::default() };
    assert_eq!(old.scale, Scale::Small);
    let pop = Population::generate(&old);
    assert_eq!(pop.contracts.len(), 30);
    assert!(
        pop.contracts.iter().all(|c| c.bytecode.len() < 2_000),
        "small templates grew past the historical envelope"
    );
}
