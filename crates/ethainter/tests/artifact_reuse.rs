//! Telemetry-counter proof that the composite (✰) marker pass reuses
//! the analysis artifacts instead of rebuilding them.
//!
//! Before the artifact layer, the composite pass recursively called the
//! full `analyze()` under `freeze_guards`, paying `Prepared::build` and
//! `SparseIndexes::build` a second time per contract. The counters
//! incremented inside those builders now prove the frozen re-run is
//! evaluation-only.
//!
//! This file deliberately holds a **single test**: the telemetry
//! registry is process-global and the default test harness runs tests
//! in parallel, so counter deltas are only meaningful when this is the
//! lone test in its integration-test binary (its own process).

use ethainter::{Config, Vuln};

#[test]
fn composite_rerun_performs_zero_rebuilds() {
    // Unguarded owner write + owner-guarded selfdestruct: guard defeat
    // engages the composite machinery, so the frozen marker pass runs.
    let src = r#"
    contract Bad {
        address owner;
        function initOwner(address o) public { owner = o; }
        function kill() public {
            require(msg.sender == owner);
            selfdestruct(owner);
        }
    }"#;
    let compiled = minisol::compile_source(src).unwrap();

    let prep_before =
        telemetry::metrics::counter("ethainter_prepared_builds_total").get();
    let idx_before =
        telemetry::metrics::counter("ethainter_sparse_index_builds_total").get();

    let report = ethainter::analyze_bytecode(&compiled.bytecode, &Config::default());

    // The analysis actually exercised the composite path: the guarded
    // selfdestruct is reachable only by defeating the owner guard, and
    // the sink-scan breakdown (including the frozen pass) was stamped.
    assert!(report.has(Vuln::AccessibleSelfDestruct));
    assert!(report.findings.iter().any(|f| f.composite));
    assert!(report.stats.timings.sink_scan_breakdown().is_some());

    let prep_builds =
        telemetry::metrics::counter("ethainter_prepared_builds_total").get() - prep_before;
    let idx_builds = telemetry::metrics::counter("ethainter_sparse_index_builds_total")
        .get()
        - idx_before;
    assert_eq!(
        prep_builds, 1,
        "one analyze (including its composite re-run) must build Prepared exactly once"
    );
    assert_eq!(
        idx_builds, 1,
        "the frozen composite fixpoint must reuse the sparse indexes, not rebuild them"
    );
}
