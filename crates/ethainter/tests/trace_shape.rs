//! Trace determinism: the *shape* of a contract's span tree — names
//! and nesting, durations excluded — is a function of the contract and
//! the config, not of the engine, the run, or what else the process
//! has analyzed before.
//!
//! This is the observability counterpart of the verdict byte-identity
//! guarantees: if the dense and sparse engines claim identical
//! verdicts, their phase structure must be identical too, or the trace
//! route would leak engine internals into what operators treat as the
//! pipeline's stable anatomy.

use ethainter::{Config, Engine};
use std::sync::Mutex;
use telemetry::trace::{self, SpanNode};

// One global trace store per process: runs must not interleave their
// retained traces.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A composite-vulnerable contract: tainted owner write + selfdestruct,
/// so the default config exercises the full phase set — decompile,
/// passes, index_build, fixpoint, sink_scan with detectors/effects and
/// the composite re-evaluation (which nests another detector sweep).
const SOURCE: &str = "
contract Suicidal {
    address owner;
    uint total;
    function claim(address who) public { owner = who; }
    function add(uint v) public { total = total + v; }
    function kill() public { require(msg.sender == owner); selfdestruct(msg.sender); }
}
";

/// Renders a span forest as a duration-free shape string:
/// `name(child(grandchild),sibling)`.
fn shape(nodes: &[SpanNode]) -> String {
    let mut out = String::new();
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&n.name);
        if !n.children.is_empty() {
            out.push('(');
            out.push_str(&shape(&n.children));
            out.push(')');
        }
    }
    out
}

/// Analyzes `bytecode` under a fresh retained trace and returns the
/// resulting span-tree shape.
fn traced_shape(bytecode: &[u8], cfg: &Config) -> String {
    let id = trace::mint();
    trace::retain(id);
    {
        let _ctx = trace::root(id);
        let sp = telemetry::span("ethainter.contract");
        let _report = ethainter::analyze_bytecode(bytecode, cfg);
        sp.finish_us();
    }
    let records = trace::spans_for(id).expect("trace was retained");
    trace::discard(id);
    assert!(
        records.iter().all(|r| r.trace == id),
        "every span in the buffer carries the owning trace id"
    );
    shape(&trace::build_tree(&records))
}

#[test]
fn span_tree_shape_is_identical_across_engines_and_runs() {
    let _g = serial();
    let code = minisol::compile_source(SOURCE).expect("compiles").bytecode;

    let sparse = Config { engine: Engine::Sparse, ..Config::default() };
    let dense = Config { engine: Engine::Dense, ..Config::default() };

    let first = traced_shape(&code, &sparse);
    assert!(first.contains("ethainter.decompile"), "shape lists phases: {first}");
    assert!(first.contains("ethainter.index_build"), "{first}");
    assert!(first.contains("ethainter.fixpoint"), "{first}");
    assert!(first.contains("ethainter.sink_scan("), "sink_scan has sub-phases: {first}");
    assert!(first.contains("ethainter.detectors"), "{first}");
    assert!(first.contains("ethainter.effects"), "{first}");
    assert!(
        first.contains("ethainter.composite("),
        "the composite re-evaluation nests its own sweep: {first}"
    );

    // Repeated runs: the same engine yields the same anatomy.
    assert_eq!(traced_shape(&code, &sparse), first, "sparse is repeatable");
    // Engine swap: dense walks the same phases in the same nesting.
    assert_eq!(traced_shape(&code, &dense), first, "dense matches sparse");
    assert_eq!(traced_shape(&code, &dense), first, "dense is repeatable");
}

#[test]
fn shape_differs_only_when_the_config_actually_changes_phases() {
    let _g = serial();
    let code = minisol::compile_source(SOURCE).expect("compiles").bytecode;

    let base = traced_shape(&code, &Config::default());
    // Witness extraction is a real phase: turning it on must add the
    // witness span and change nothing else's nesting.
    let with_witness =
        traced_shape(&code, &Config { witness: true, ..Config::default() });
    assert_ne!(base, with_witness);
    assert!(with_witness.contains("ethainter.witness"), "{with_witness}");
    assert!(!base.contains("ethainter.witness"), "{base}");
    assert_eq!(
        with_witness.replace(",ethainter.witness", ""),
        base,
        "the witness span is the only delta"
    );
}
