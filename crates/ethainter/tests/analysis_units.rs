//! Focused tests of the analysis internals — each exercising one rule or
//! mechanism of the Figure 5 recursion through small compiled contracts.

use ethainter::{analyze_bytecode, Config, Report, Vuln};

fn analyze(src: &str) -> Report {
    let compiled = minisol::compile_source(src).unwrap();
    analyze_bytecode(&compiled.bytecode, &Config::default())
}

// ------------------------------------------------------ guard inference --

#[test]
fn if_form_guard_protects_then_branch_only() {
    // The sink in the else-branch is NOT sender-guarded.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            function f() public {
                if (msg.sender == owner) { } else { selfdestruct(msg.sender); }
            }
        }"#,
    );
    assert!(r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn negated_guard_polarity_is_understood() {
    // require(!(msg.sender != owner)) — a double negation that still
    // sanitizes (the ISZERO-peeling path).
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            function kill() public {
                require(!(msg.sender != owner));
                selfdestruct(owner);
            }
        }"#,
    );
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn non_sender_guard_is_not_sanitizing() {
    // Uguard-NDS: a threshold check sanitizes nothing.
    let r = analyze(
        r#"contract C {
            function kill(uint amount) public {
                require(amount > 100);
                selfdestruct(msg.sender);
            }
        }"#,
    );
    assert!(r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn guard_applies_through_nested_control_flow() {
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            uint x;
            function f(uint a) public {
                require(msg.sender == owner);
                if (a > 5) {
                    while (x < a) { x += 1; }
                    selfdestruct(owner);
                }
            }
        }"#,
    );
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn two_guards_both_must_be_defeated() {
    // kill requires owner AND admin membership; only the membership is
    // attacker-enrollable, so the statement stays protected.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            mapping(address => bool) admins;
            function enroll() public { admins[msg.sender] = true; }
            function kill() public {
                require(admins[msg.sender]);
                require(msg.sender == owner);
                selfdestruct(owner);
            }
        }"#,
    );
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn conjoined_guard_with_enrollable_side_still_holds() {
    // require(a && b) where only a is defeatable: the condition is a
    // single AND whose owner side cannot be satisfied.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            mapping(address => bool) admins;
            function enroll() public { admins[msg.sender] = true; }
            function kill() public {
                require(admins[msg.sender] && msg.sender == owner);
                selfdestruct(owner);
            }
        }"#,
    );
    // The conjunction involves the sender; it is sanitizing. Defeat
    // requires tainting it, which the owner side prevents.
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn disjoined_guard_defeated_via_weaker_side() {
    // require(msg.sender == owner || admins[msg.sender]): enrolling into
    // the admins side opens the guard even though owner is sound.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            mapping(address => bool) admins;
            function enroll(address who) public { admins[who] = true; }
            function kill() public {
                require(msg.sender == owner || admins[msg.sender]);
                selfdestruct(msg.sender);
            }
        }"#,
    );
    assert!(r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn disjoined_guard_holds_when_both_sides_sound() {
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            address backup = 0x5678;
            function kill() public {
                require(msg.sender == owner || msg.sender == backup);
                selfdestruct(msg.sender);
            }
        }"#,
    );
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

// ----------------------------------------------- sender-keyed structures --

#[test]
fn nested_membership_guard_is_recognized() {
    // require(perms[msg.sender][msg.sender]) — nested sender-keyed lookup.
    let r = analyze(
        r#"contract C {
            mapping(address => mapping(address => bool)) perms;
            address owner = 0x1234;
            function grant(address a) public {
                require(msg.sender == owner);
                perms[a][a] = true;
            }
            function kill() public {
                require(perms[msg.sender][msg.sender]);
                selfdestruct(msg.sender);
            }
        }"#,
    );
    // Enrollment is owner-guarded: not attacker-writable, kill protected.
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn enrollment_with_attacker_key_defeats_membership() {
    let r = analyze(
        r#"contract C {
            mapping(address => bool) vips;
            function join(address who) public { vips[who] = true; }
            function kill() public {
                require(vips[msg.sender]);
                selfdestruct(msg.sender);
            }
        }"#,
    );
    assert!(r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn enrollment_into_different_mapping_is_insufficient() {
    // Attacker can enroll in `users`, but the guard checks `admins`.
    let r = analyze(
        r#"contract C {
            mapping(address => bool) users;
            mapping(address => bool) admins;
            function join() public { users[msg.sender] = true; }
            function kill() public {
                require(admins[msg.sender]);
                selfdestruct(msg.sender);
            }
        }"#,
    );
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

// ------------------------------------------------------------ taint flow --

#[test]
fn taint_flows_through_arithmetic_and_casts() {
    let r = analyze(
        r#"contract C {
            function kill(uint seed) public {
                selfdestruct(address(seed + 7));
            }
        }"#,
    );
    assert!(r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

#[test]
fn taint_flows_through_local_variables_and_memory() {
    let r = analyze(
        r#"contract C {
            function kill(address to) public {
                address a = to;
                address b = a;
                selfdestruct(b);
            }
        }"#,
    );
    assert!(r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

#[test]
fn storage_taint_crosses_functions() {
    // Write in one function, sink in another: the cross-transaction flow.
    let r = analyze(
        r#"contract C {
            address target;
            function set(address t) public { target = t; }
            function kill() public { selfdestruct(target); }
        }"#,
    );
    assert!(r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

#[test]
fn taint_does_not_flow_backwards() {
    // The sink reads slot 0; the attacker writes slot 1.
    let r = analyze(
        r#"contract C {
            address beneficiary = 0x99;
            address unrelated;
            function set(address t) public { unrelated = t; }
            function kill() public { selfdestruct(beneficiary); }
        }"#,
    );
    assert!(r.has(Vuln::AccessibleSelfDestruct));
    assert!(!r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

#[test]
fn tainted_mapping_value_taints_loads_of_that_mapping() {
    let r = analyze(
        r#"contract C {
            mapping(uint => address) routes;
            function setRoute(uint k, address t) public { routes[k] = t; }
            function kill(uint k) public { selfdestruct(routes[k]); }
        }"#,
    );
    assert!(r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

// -------------------------------------------------------- sink inference --

#[test]
fn slot_compared_to_sender_is_a_sink() {
    // §4.5: `admin` guards nothing sensitive syntactically, but a slot
    // compared against the sender is itself a sink.
    let r = analyze(
        r#"contract C {
            address admin;
            uint counter;
            function setAdmin(address a) public { admin = a; }
            function bump() public {
                require(msg.sender == admin);
                counter += 1;
            }
        }"#,
    );
    assert!(r.has(Vuln::TaintedOwnerVariable), "{:?}", r.findings);
}

#[test]
fn slot_never_used_in_guards_is_not_a_sink() {
    // Writes to a plain data slot are not "tainted owner" findings.
    let r = analyze(
        r#"contract C {
            address lastSender;
            function record(address x) public { lastSender = x; }
        }"#,
    );
    assert!(!r.has(Vuln::TaintedOwnerVariable), "{:?}", r.findings);
}

// ------------------------------------------------------- report metadata --

#[test]
fn composite_marker_distinguishes_direct_findings() {
    let direct = analyze(
        "contract C { function kill(address to) public { selfdestruct(to); } }",
    );
    assert!(direct.of(Vuln::TaintedSelfDestruct).all(|f| !f.composite), "{direct:?}");

    let composite = analyze(
        r#"contract C {
            address owner;
            function init(address o) public { owner = o; }
            function kill() public { require(msg.sender == owner); selfdestruct(owner); }
        }"#,
    );
    assert!(composite.of(Vuln::TaintedSelfDestruct).all(|f| f.composite), "{composite:?}");
}

#[test]
fn stats_are_populated() {
    let r = analyze("contract C { function f() public {} }");
    assert!(r.stats.blocks > 0);
    assert!(r.stats.stmts > 0);
    assert!(r.stats.rounds > 0);
}

#[test]
fn findings_are_sorted_and_deduped() {
    let r = analyze(
        r#"contract C {
            address owner;
            function init(address o) public { owner = o; }
            function kill() public { require(msg.sender == owner); selfdestruct(owner); }
        }"#,
    );
    let mut sorted = r.findings.clone();
    sorted.sort_by_key(|f| (f.vuln, f.stmt));
    sorted.dedup();
    assert_eq!(r.findings, sorted);
}
#[test]
fn emit_produces_log_with_name_topic() {
    use evm::World;
    let src = r#"contract C {
        uint total;
        function pay(address to, uint v) public {
            total += v;
            emit Payment(uint(to), v);
        }
    }"#;
    let compiled = minisol::compile_source(src).unwrap();
    let mut net = chain::TestNet::new();
    let user = net.funded_account(evm::U256::from(1_000u64));
    let c = net.deploy(user, compiled.bytecode);
    let r = net.call(
        user,
        c,
        chain::abi::encode_call("pay(address,uint256)", &[evm::U256::from(0x77u64), evm::U256::from(9u64)]),
        evm::U256::ZERO,
    );
    assert!(r.success, "{:?}", r.outcome);
    let logs = net.logs();
    assert_eq!(logs.len(), 1);
    assert_eq!(logs[0].topics, vec![evm::keccak256_u256(b"Payment")]);
    assert_eq!(logs[0].data.len(), 64);
    assert_eq!(evm::U256::from_be_slice(&logs[0].data[32..]), evm::U256::from(9u64));
    let _ = net.state().code(c);
}

#[test]
fn emit_round_trips_through_pretty_printer() {
    let src = r#"contract C {
        uint x;
        function f(uint v) public { emit Tick(v); x = v; }
    }"#;
    let ast = minisol::parse(src).unwrap();
    let printed = minisol::pretty::print_contract(&ast);
    assert!(printed.contains("emit Tick(v);"), "{printed}");
    let direct = minisol::compile_source(src).unwrap();
    let reprinted = minisol::compile_source(&printed).unwrap();
    assert_eq!(direct.bytecode, reprinted.bytecode);
}

#[test]
fn emit_does_not_perturb_analysis() {
    let src = r#"contract C {
        address owner;
        function initOwner(address o) public { owner = o; emit OwnerSet(uint(o)); }
        function kill() public { require(msg.sender == owner); selfdestruct(owner); }
    }"#;
    let compiled = minisol::compile_source(src).unwrap();
    let r = ethainter::analyze_bytecode(&compiled.bytecode, &ethainter::Config::default());
    assert!(r.has(ethainter::Vuln::TaintedOwnerVariable), "{:?}", r.findings);
    assert!(r.has(ethainter::Vuln::AccessibleSelfDestruct));
}
