//! Detector integration tests: every §3 vulnerability class, the §2
//! composite chain, their fixed variants, and the §6.4 ablation configs —
//! all over real compiled bytecode.

use ethainter::{analyze_bytecode, Config, Report, Vuln};

fn analyze(src: &str) -> Report {
    analyze_with(src, &Config::default())
}

fn analyze_with(src: &str, cfg: &Config) -> Report {
    let compiled = minisol::compile_source(src).unwrap();
    analyze_bytecode(&compiled.bytecode, cfg)
}

// ---------------------------------------------------------------- §3.3 --

#[test]
fn accessible_selfdestruct_flagged() {
    let r = analyze(
        r#"contract C {
            address beneficiary;
            function kill() public { selfdestruct(beneficiary); }
        }"#,
    );
    assert!(r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn owner_guarded_selfdestruct_not_accessible() {
    // Guard is sound: owner is never attacker-writable.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            function kill() public { require(msg.sender == owner); selfdestruct(owner); }
        }"#,
    );
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
    assert!(!r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

#[test]
fn modifier_guarded_selfdestruct_not_accessible() {
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            modifier onlyOwner() { require(msg.sender == owner); _; }
            function kill() public onlyOwner { selfdestruct(owner); }
        }"#,
    );
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

// ---------------------------------------------------------------- §3.4 --

#[test]
fn tainted_selfdestruct_via_settable_admin() {
    // The paper's §3.4 example verbatim (modulo syntax): selfdestruct is
    // owner-guarded, but anyone can set the beneficiary.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            address administrator;
            function initAdmin(address admin) public { administrator = admin; }
            function kill() public {
                if (msg.sender == owner) { selfdestruct(administrator); }
            }
        }"#,
    );
    assert!(r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
    // The selfdestruct itself stays owner-only.
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

#[test]
fn untainted_beneficiary_not_flagged() {
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            address beneficiary = 0x99;
            function kill() public {
                if (msg.sender == owner) { selfdestruct(beneficiary); }
            }
        }"#,
    );
    assert!(!r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

#[test]
fn selfdestruct_with_parameter_beneficiary_is_tainted() {
    let r = analyze(
        r#"contract C {
            function kill(address to) public { selfdestruct(to); }
        }"#,
    );
    assert!(r.has(Vuln::TaintedSelfDestruct));
    assert!(r.has(Vuln::AccessibleSelfDestruct));
}

#[test]
fn guarded_parameter_beneficiary_not_tainted() {
    // Owner-guarded refund: the address parameter is sanitized by the
    // guard (the precision case Figure 8b is about).
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            function kill(address to) public {
                require(msg.sender == owner);
                selfdestruct(to);
            }
        }"#,
    );
    assert!(!r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

// ---------------------------------------------------------------- §3.1 --

#[test]
fn tainted_owner_variable_flagged() {
    let r = analyze(
        r#"contract C {
            address owner;
            uint secret;
            function initOwner(address o) public { owner = o; }
            function set(uint v) public { require(msg.sender == owner); secret = v; }
        }"#,
    );
    assert!(r.has(Vuln::TaintedOwnerVariable), "{:?}", r.findings);
}

#[test]
fn public_initializer_race_is_tainted_owner() {
    // Figure 6's "public initializer (race condition)" true positives:
    // owner = msg.sender in an unguarded function.
    let r = analyze(
        r#"contract C {
            address owner;
            uint secret;
            function init() public { owner = msg.sender; }
            function set(uint v) public { require(msg.sender == owner); secret = v; }
        }"#,
    );
    assert!(r.has(Vuln::TaintedOwnerVariable), "{:?}", r.findings);
}

#[test]
fn constructor_initialized_owner_not_flagged() {
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            uint secret;
            function set(uint v) public { require(msg.sender == owner); secret = v; }
        }"#,
    );
    assert!(!r.has(Vuln::TaintedOwnerVariable), "{:?}", r.findings);
}

#[test]
fn guarded_owner_setter_not_flagged() {
    // changeOwner guarded by the (sound) owner: not attacker-writable.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            function changeOwner(address o) public {
                require(msg.sender == owner);
                owner = o;
            }
            function kill() public { require(msg.sender == owner); selfdestruct(owner); }
        }"#,
    );
    assert!(!r.has(Vuln::TaintedOwnerVariable), "{:?}", r.findings);
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
}

// ---------------------------------------------------------------- §3.2 --

#[test]
fn tainted_delegatecall_flagged() {
    // The §3.2 migrate example.
    let r = analyze(
        r#"contract C {
            function migrate(address delegate) public { delegatecall(delegate); }
        }"#,
    );
    assert!(r.has(Vuln::TaintedDelegateCall), "{:?}", r.findings);
}

#[test]
fn constant_delegatecall_not_flagged() {
    let r = analyze(
        r#"contract C {
            address lib = 0xabcd;
            function run() public { delegatecall(lib); }
        }"#,
    );
    assert!(!r.has(Vuln::TaintedDelegateCall), "{:?}", r.findings);
}

#[test]
fn guarded_delegatecall_not_flagged() {
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            function migrate(address delegate) public {
                require(msg.sender == owner);
                delegatecall(delegate);
            }
        }"#,
    );
    assert!(!r.has(Vuln::TaintedDelegateCall), "{:?}", r.findings);
}

#[test]
fn delegatecall_tainted_via_storage_flagged() {
    // Composite: the delegate target lives in storage that anyone can set.
    let r = analyze(
        r#"contract C {
            address owner = 0x1234;
            address delegate;
            function setDelegate(address d) public { delegate = d; }
            function migrate() public {
                require(msg.sender == owner);
                delegatecall(delegate);
            }
        }"#,
    );
    assert!(r.has(Vuln::TaintedDelegateCall), "{:?}", r.findings);
}

// ---------------------------------------------------------------- §3.5 --

#[test]
fn unchecked_tainted_staticcall_flagged() {
    let r = analyze(
        r#"contract C {
            uint result;
            function check(address w, uint input) public {
                result = staticcall_unchecked(w, input);
            }
        }"#,
    );
    assert!(r.has(Vuln::UncheckedTaintedStaticCall), "{:?}", r.findings);
}

#[test]
fn checked_staticcall_not_flagged() {
    let r = analyze(
        r#"contract C {
            uint result;
            function check(address w, uint input) public {
                result = staticcall_checked(w, input);
            }
        }"#,
    );
    assert!(!r.has(Vuln::UncheckedTaintedStaticCall), "{:?}", r.findings);
}

// ------------------------------------------------------------------ §2 --

const VICTIM: &str = r#"
contract Victim {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;

    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }

    function registerSelf() public { users[msg.sender] = true; }
    function referUser(address user) public onlyUsers { users[user] = true; }
    function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
    function changeOwner(address o) public onlyAdmins { owner = o; }
    function kill() public onlyAdmins { selfdestruct(owner); }
}"#;

const FIXED_VICTIM: &str = r#"
contract Fixed {
    mapping(address => bool) admins;
    mapping(address => bool) users;
    address owner;

    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    modifier onlyUsers() { require(users[msg.sender]); _; }

    function registerSelf() public { users[msg.sender] = true; }
    function referUser(address user) public onlyUsers { users[user] = true; }
    function referAdmin(address adm) public onlyAdmins { admins[adm] = true; }
    function changeOwner(address o) public onlyAdmins { owner = o; }
    function kill() public onlyAdmins { selfdestruct(owner); }
}"#;

#[test]
fn victim_composite_chain_detected() {
    // The paper's §2 contract: both primitive vulnerabilities surface
    // through composite guard tainting.
    let r = analyze(VICTIM);
    assert!(r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
    assert!(r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
    // And they are flagged as composite (the ✰ of Figure 6).
    assert!(r.of(Vuln::AccessibleSelfDestruct).all(|f| f.composite));
}

#[test]
fn fixed_victim_not_flagged() {
    // With referAdmin correctly guarded by onlyAdmins, the escalation
    // chain is broken: admins is only writable by admins.
    let r = analyze(FIXED_VICTIM);
    assert!(!r.has(Vuln::AccessibleSelfDestruct), "{:?}", r.findings);
    assert!(!r.has(Vuln::TaintedSelfDestruct), "{:?}", r.findings);
}

// -------------------------------------------------------------- ablations

#[test]
fn no_guard_model_explodes_reports() {
    // Figure 8b: without guard modeling, the owner-guarded refund
    // pattern gets (wrongly) flagged.
    let src = r#"contract C {
        address owner = 0x1234;
        function kill(address to) public {
            require(msg.sender == owner);
            selfdestruct(to);
        }
    }"#;
    let sound = analyze_with(src, &Config::default());
    let ablated = analyze_with(src, &Config::no_guard_model());
    assert!(!sound.has(Vuln::TaintedSelfDestruct));
    assert!(ablated.has(Vuln::TaintedSelfDestruct));
    assert!(ablated.has(Vuln::AccessibleSelfDestruct));
}

#[test]
fn no_storage_taint_loses_composite_chain() {
    // Figure 8a: without storage modeling the Victim chain (which needs
    // taint through storage, across transactions) disappears.
    let full = analyze_with(VICTIM, &Config::default());
    let ablated = analyze_with(VICTIM, &Config::no_storage_taint());
    assert!(full.has(Vuln::AccessibleSelfDestruct));
    assert!(!ablated.has(Vuln::AccessibleSelfDestruct), "{:?}", ablated.findings);
    assert!(!ablated.has(Vuln::TaintedSelfDestruct));
}

#[test]
fn no_storage_taint_keeps_direct_input_findings() {
    // Single-transaction flows survive the 8a ablation.
    let src = "contract C { function kill(address to) public { selfdestruct(to); } }";
    let ablated = analyze_with(src, &Config::no_storage_taint());
    assert!(ablated.has(Vuln::TaintedSelfDestruct));
}

#[test]
fn conservative_storage_adds_reports() {
    // Figure 8c: a store through an unresolved pointer poisons all slots
    // under the conservative model only.
    let src = r#"contract C {
        uint marker;
        address beneficiary = 0x77;
        address owner = 0x1234;
        function touch(uint slotv, uint v) public {
            uint i = 0;
            while (i < slotv) { i += 1; }
            marker = v + i;
        }
        function kill() public {
            if (msg.sender == owner) { selfdestruct(beneficiary); }
        }
    }"#;
    // Note: this source has no unknown-address store; conservative mode
    // must NOT add findings here (sanity check both directions).
    let precise = analyze_with(src, &Config::default());
    let conservative = analyze_with(src, &Config::conservative_storage());
    assert_eq!(
        precise.has(Vuln::TaintedSelfDestruct),
        conservative.has(Vuln::TaintedSelfDestruct)
    );
}

// ------------------------------------------------------------- metadata --

#[test]
fn findings_carry_reachable_selectors() {
    let r = analyze(
        r#"contract C {
            function kill() public { selfdestruct(msg.sender); }
            function other() public {}
        }"#,
    );
    let f = r.of(Vuln::AccessibleSelfDestruct).next().unwrap();
    let kill_sel = u32::from_be_bytes(evm::selector("kill()"));
    assert!(f.selectors.contains(&kill_sel), "{:?}", f);
}

#[test]
fn empty_bytecode_reports_nothing() {
    let r = analyze_bytecode(&[], &Config::default());
    assert!(r.findings.is_empty());
}

#[test]
fn safe_token_contract_is_clean() {
    // A plain ERC20-ish contract: no findings of any class.
    let r = analyze(
        r#"contract Token {
            mapping(address => uint) balances;
            mapping(address => mapping(address => uint)) allowed;
            uint supply = 1000000;
            function transfer(address to, uint v) public {
                require(balances[msg.sender] >= v);
                balances[msg.sender] -= v;
                balances[to] += v;
            }
            function approve(address spender, uint v) public {
                allowed[msg.sender][spender] = v;
            }
            function balanceOf(address who) public returns (uint) {
                return balances[who];
            }
        }"#,
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

// ------------------------------------------------- detector suite v2 --

/// The canonical checks-effects-interactions violation: the balance is
/// read before the external call and zeroed after it, so a re-entrant
/// callee sees the stale balance.
const REENTRANT_BANK: &str = r#"contract Bank {
    mapping(address => uint) balances;
    function deposit(uint v) public { balances[msg.sender] += v; }
    function withdraw() public {
        uint bal = balances[msg.sender];
        require(bal > 0x0);
        require(send(msg.sender, bal));
        balances[msg.sender] = 0x0;
    }
}"#;

/// The hardened variant: effects before interactions.
const EFFECTS_FIRST_BANK: &str = r#"contract Bank {
    mapping(address => uint) balances;
    function deposit(uint v) public { balances[msg.sender] += v; }
    function withdraw() public {
        uint bal = balances[msg.sender];
        require(bal > 0x0);
        balances[msg.sender] = 0x0;
        require(send(msg.sender, bal));
    }
}"#;

#[test]
fn reentrant_withdraw_flagged() {
    let r = analyze(REENTRANT_BANK);
    assert!(r.has(Vuln::Reentrancy), "{:?}", r.findings);
    // The success flag feeds the require, so the call *is* checked.
    assert!(!r.has(Vuln::UncheckedCallReturn), "{:?}", r.findings);
}

#[test]
fn effects_before_interaction_not_reentrancy() {
    let r = analyze(EFFECTS_FIRST_BANK);
    assert!(!r.has(Vuln::Reentrancy), "{:?}", r.findings);
    assert!(!r.has(Vuln::UncheckedCallReturn), "{:?}", r.findings);
}

const UNCHECKED_SEND: &str = r#"contract Payer {
    uint nonce;
    function pay(address to, uint amount) public {
        send(to, amount);
        nonce += 0x1;
    }
}"#;

const CHECKED_SEND: &str = r#"contract Payer {
    uint nonce;
    function pay(address to, uint amount) public {
        require(send(to, amount));
        nonce += 0x1;
    }
}"#;

#[test]
fn bare_send_flagged_unchecked() {
    let r = analyze(UNCHECKED_SEND);
    assert!(r.has(Vuln::UncheckedCallReturn), "{:?}", r.findings);
    // The nonce is only *read* after the call, so this is not a
    // checks-effects-interactions violation.
    assert!(!r.has(Vuln::Reentrancy), "{:?}", r.findings);
}

#[test]
fn required_send_not_flagged_unchecked() {
    let r = analyze(CHECKED_SEND);
    assert!(!r.has(Vuln::UncheckedCallReturn), "{:?}", r.findings);
}

const TXORIGIN_AUTH: &str = r#"contract Drop {
    address owner = 0x1234;
    mapping(address => uint) credits;
    function claim(address to, uint v) public {
        require(tx.origin == owner);
        credits[to] += v;
    }
}"#;

const SENDER_AUTH: &str = r#"contract Drop {
    address owner = 0x1234;
    mapping(address => uint) credits;
    function claim(address to, uint v) public {
        require(msg.sender == owner);
        credits[to] += v;
    }
}"#;

#[test]
fn txorigin_guard_over_state_write_flagged() {
    let r = analyze(TXORIGIN_AUTH);
    assert!(r.has(Vuln::TxOriginAuth), "{:?}", r.findings);
}

#[test]
fn sender_guard_over_state_write_clean() {
    let r = analyze(SENDER_AUTH);
    assert!(!r.has(Vuln::TxOriginAuth), "{:?}", r.findings);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

const TIMESTAMP_PAYOUT: &str = r#"contract Lotto {
    uint deadline = 0x60000000;
    function payout(address to, uint amount) public {
        require(block.timestamp > deadline);
        require(send(to, amount));
    }
}"#;

const BLOCKNUMBER_PAYOUT: &str = r#"contract Lotto {
    uint deadline = 0x60000000;
    function payout(address to, uint amount) public {
        require(block.number > deadline);
        require(send(to, amount));
    }
}"#;

#[test]
fn timestamp_gated_payout_flagged() {
    let r = analyze(TIMESTAMP_PAYOUT);
    assert!(r.has(Vuln::TimestampDependence), "{:?}", r.findings);
}

#[test]
fn blocknumber_gated_payout_clean() {
    let r = analyze(BLOCKNUMBER_PAYOUT);
    assert!(!r.has(Vuln::TimestampDependence), "{:?}", r.findings);
}

#[test]
fn timestamp_derived_value_flagged() {
    // Value variant: the transferred amount depends on TIMESTAMP even
    // though no branch does.
    let r = analyze(
        r#"contract Faucet {
            function drip(address to) public {
                require(send(to, block.timestamp % 0x100));
            }
        }"#,
    );
    assert!(r.has(Vuln::TimestampDependence), "{:?}", r.findings);
}

#[test]
fn timestamp_branch_over_plain_write_clean() {
    // A time-dependent branch gating only bookkeeping storage is
    // everyday Solidity, not a money flow.
    let r = analyze(
        r#"contract Epoch {
            uint last;
            function tick() public {
                if (block.timestamp > last) { last = block.timestamp; }
            }
        }"#,
    );
    assert!(!r.has(Vuln::TimestampDependence), "{:?}", r.findings);
}

#[test]
fn v2_verdicts_identical_across_engines() {
    for src in [
        REENTRANT_BANK,
        EFFECTS_FIRST_BANK,
        UNCHECKED_SEND,
        CHECKED_SEND,
        TXORIGIN_AUTH,
        SENDER_AUTH,
        TIMESTAMP_PAYOUT,
        BLOCKNUMBER_PAYOUT,
    ] {
        let dense = analyze_with(
            src,
            &Config { engine: ethainter::Engine::Dense, ..Config::default() },
        );
        let sparse = analyze_with(
            src,
            &Config { engine: ethainter::Engine::Sparse, ..Config::default() },
        );
        assert_eq!(dense.findings, sparse.findings, "engines disagree on {src}");
        assert_eq!(dense.stats.facts, sparse.stats.facts, "fact counts differ on {src}");
    }
}

#[test]
fn v2_witnesses_byte_identical_across_engines() {
    for src in [REENTRANT_BANK, UNCHECKED_SEND, TXORIGIN_AUTH, TIMESTAMP_PAYOUT] {
        let mk = |engine| {
            let cfg = Config { engine, witness: true, ..Config::default() };
            analyze_with(src, &cfg)
        };
        let dense = mk(ethainter::Engine::Dense);
        let sparse = mk(ethainter::Engine::Sparse);
        assert!(
            dense.witnesses.as_ref().is_some_and(|w| !w.is_empty()),
            "no witnesses for {src}"
        );
        assert_eq!(
            serde_json::to_string(&dense.witnesses).unwrap(),
            serde_json::to_string(&sparse.witnesses).unwrap(),
            "witnesses differ on {src}"
        );
    }
}
