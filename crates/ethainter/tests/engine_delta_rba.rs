//! Directed test for the sparse engine's delta-rba edge case: a guard
//! defeated *mid-fixpoint* must re-push its region's statements, or the
//! taint unlocked behind the guard is silently lost.
//!
//! The contract below is the minimal composite: `init` lets the
//! attacker write `owner` (tainting the guard's comparison slot), which
//! defeats `kill`'s `msg.sender == owner` check, which makes the
//! `selfdestruct` behind it attacker-reachable. When the sparse engine
//! processes the defeat it must flip exactly the guarded region's
//! `ReachableByAttacker` bits and reschedule those statements — a bug
//! here produces no panic, just a quietly missing finding, which is why
//! the dense engine is run alongside as the oracle.

use ethainter::{Config, Engine, Report, Vuln};

const TAKEOVER: &str = r#"contract Takeover {
    address owner;
    function init(address o) public { owner = o; }
    function kill(address to) public {
        require(msg.sender == owner);
        selfdestruct(to);
    }
}"#;

fn analyze_with(engine: Engine) -> Report {
    let compiled = minisol::compile_source(TAKEOVER).unwrap();
    ethainter::analyze_bytecode(&compiled.bytecode, &Config { engine, ..Config::default() })
}

#[test]
fn guard_defeat_mid_fixpoint_repushes_the_guarded_region() {
    let dense = analyze_with(Engine::Dense);
    let sparse = analyze_with(Engine::Sparse);

    // The scenario must actually exercise the path: a guard is
    // defeated, and the finding lives *behind* that guard.
    assert!(
        !sparse.defeated_guards.is_empty(),
        "no guard defeated — the contract no longer exercises delta-rba"
    );
    assert!(
        sparse.has(Vuln::AccessibleSelfDestruct),
        "sparse engine lost the finding unlocked by the mid-fixpoint defeat: {:?}",
        sparse.findings
    );

    // And the oracle: every verdict byte-identical to the dense engine.
    assert_eq!(sparse.findings, dense.findings);
    assert_eq!(sparse.stats.facts, dense.stats.facts);
    assert_eq!(sparse.defeated_guards, dense.defeated_guards);
    assert_eq!(sparse.timed_out, dense.timed_out);
}

/// Same scenario with guards frozen: the defeat must NOT happen, the
/// finding must NOT appear, and the engines must still agree — the
/// sparse engine's defeat path has to respect `freeze_guards` exactly
/// like the dense one.
#[test]
fn frozen_guards_suppress_the_defeat_in_both_engines() {
    let compiled = minisol::compile_source(TAKEOVER).unwrap();
    let frozen = Config { freeze_guards: true, ..Config::default() };
    let dense = ethainter::analyze_bytecode(
        &compiled.bytecode,
        &Config { engine: Engine::Dense, ..frozen },
    );
    let sparse = ethainter::analyze_bytecode(
        &compiled.bytecode,
        &Config { engine: Engine::Sparse, ..frozen },
    );
    assert!(sparse.defeated_guards.is_empty());
    assert!(!sparse.has(Vuln::AccessibleSelfDestruct));
    assert_eq!(sparse.findings, dense.findings);
    assert_eq!(sparse.stats.facts, dense.stats.facts);
}
