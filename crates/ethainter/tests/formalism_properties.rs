//! Property tests for the §4 formalism: the inference rules of Figures
//! 3–4 on randomly generated abstract programs.

use ethainter::formalism::{Inst, Program, V};
use proptest::prelude::*;

/// A random abstract program over a small variable universe.
#[derive(Clone, Debug)]
struct ArbProgram {
    insts: Vec<Inst>,
    consts: Vec<(u32, u64)>,
    aliases: Vec<(u32, u64)>,
}

fn build(p: &ArbProgram) -> (Program, Vec<V>) {
    let mut prog = Program::new();
    // Intern a fixed universe v0..v12 plus sender.
    let vars: Vec<V> = (0..12).map(|i| prog.var(&format!("v{i}"))).collect();
    let _sender = prog.var("sender");
    for (x, v) in &p.consts {
        prog.const_value(vars[*x as usize], *v);
    }
    for (x, v) in &p.aliases {
        prog.storage_alias(vars[*x as usize], *v);
    }
    for inst in &p.insts {
        prog.inst(inst.clone());
    }
    (prog, vars)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let v = || (0u32..12).prop_map(V);
    prop_oneof![
        (v(), v(), v()).prop_map(|(x, y, z)| Inst::Op { x, y, z }),
        (v(), v(), v()).prop_map(|(x, y, z)| Inst::OpEq { x, y, z }),
        v().prop_map(|x| Inst::Input { x }),
        (v(), v()).prop_map(|(x, y)| Inst::Hash { x, y }),
        (v(), v(), v()).prop_map(|(x, p, y)| Inst::Guard { x, p, y }),
        (v(), v()).prop_map(|(f, t)| Inst::SStore { f, t }),
        (v(), v()).prop_map(|(f, t)| Inst::SLoad { f, t }),
        v().prop_map(|x| Inst::Sink { x }),
    ]
}

fn arb_program() -> impl Strategy<Value = ArbProgram> {
    (
        proptest::collection::vec(arb_inst(), 0..25),
        proptest::collection::vec((0u32..12, 0u64..6), 0..6),
        proptest::collection::vec((0u32..12, 0u64..6), 0..6),
    )
        .prop_map(|(insts, consts, aliases)| ArbProgram { insts, consts, aliases })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Adding an instruction never removes derived facts (monotonicity of
    /// the Figure 3 rules — "each inference only leads to a growing set
    /// of inferences for others"). Note DS/DSA growth can *remove*
    /// Uguard-NDS conclusions, so we extend with taint-side instructions
    /// only.
    #[test]
    fn taint_rules_are_monotone(p in arb_program(), extra in arb_inst()) {
        // Skip extensions that grow DS/DSA (the stratified negation).
        let grows_ds = matches!(extra, Inst::Hash { .. } | Inst::SLoad { .. } | Inst::Op { .. } | Inst::OpEq { .. });
        prop_assume!(!grows_ds);
        let (prog, _) = build(&p);
        let before = prog.solve();
        let mut p2 = p.clone();
        p2.insts.push(extra);
        let (prog2, _) = build(&p2);
        let after = prog2.solve();
        for v in &before.input_tainted {
            prop_assert!(after.input_tainted.contains(v));
        }
        for v in &before.storage_tainted {
            prop_assert!(after.storage_tainted.contains(v));
        }
        for s in &before.tainted_storage {
            prop_assert!(after.tainted_storage.contains(s));
        }
        prop_assert!(after.violations.len() >= before.violations.len());
    }

    /// The fixpoint is deterministic.
    #[test]
    fn solve_is_deterministic(p in arb_program()) {
        let (prog, _) = build(&p);
        let a = prog.solve();
        let b = prog.solve();
        prop_assert_eq!(a.input_tainted, b.input_tainted);
        prop_assert_eq!(a.storage_tainted, b.storage_tainted);
        prop_assert_eq!(a.tainted_storage, b.tainted_storage);
        prop_assert_eq!(a.non_sanitizing, b.non_sanitizing);
        prop_assert_eq!(a.violations, b.violations);
    }

    /// No INPUT instruction ⇒ no input taint anywhere, and violations can
    /// only come from storage taint — which also needs a tainted source.
    #[test]
    fn no_input_no_taint(p in arb_program()) {
        let mut p2 = p.clone();
        p2.insts.retain(|i| !matches!(i, Inst::Input { .. }));
        let (prog, _) = build(&p2);
        let sol = prog.solve();
        prop_assert!(sol.input_tainted.is_empty());
        prop_assert!(sol.storage_tainted.is_empty());
        prop_assert!(sol.violations.is_empty());
    }

    /// Every violation's sink operand is genuinely tainted.
    #[test]
    fn violations_are_justified(p in arb_program()) {
        let (prog, _) = build(&p);
        let sol = prog.solve();
        for &i in &sol.violations {
            match &p.insts[i] {
                Inst::Sink { x } => prop_assert!(sol.tainted(*x)),
                other => prop_assert!(false, "violation at non-sink {other:?}"),
            }
        }
    }

    /// DS and DSA are disjointly derived from sender: a program that
    /// never mentions sender-derived data has empty DSA.
    #[test]
    fn dsa_requires_sender_root(p in arb_program()) {
        let (prog, vars) = build(&p);
        let sol = prog.solve();
        // `sender` itself is always DS.
        // If no Hash of any DS var exists transitively, DSA must be empty;
        // verify the weaker, checkable direction: every DSA var has a
        // Hash or Op definition in the program.
        for v in &sol.dsa {
            let defined = p.insts.iter().any(|i| match i {
                Inst::Hash { x, .. } => x == v,
                Inst::Op { x, .. } | Inst::OpEq { x, .. } => x == v,
                _ => false,
            });
            prop_assert!(defined, "DSA var {v:?} with no hash/op definition");
        }
        let _ = vars;
    }
}
