//! Witness integration tests: provenance paths over real compiled
//! bytecode — structure, sink anchoring, axiom roots, and the
//! byte-identity of reports with witnesses off.

use ethainter::{analyze_bytecode, Config, Report, Vuln};

/// The §2-style composite contract: a public initializer makes the
/// owner attacker-settable, defeating the owner guard on `kill`.
const BAD: &str = r#"
contract Bad {
    address owner;
    function initOwner(address o) public { owner = o; }
    function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}"#;

fn analyze_with(src: &str, cfg: &Config) -> Report {
    let compiled = minisol::compile_source(src).unwrap();
    analyze_bytecode(&compiled.bytecode, cfg)
}

#[test]
fn witnesses_cover_every_finding_in_order() {
    let cfg = Config { witness: true, ..Config::default() };
    let r = analyze_with(BAD, &cfg);
    assert!(!r.findings.is_empty());
    let ws = r.witnesses.as_ref().expect("witness mode populates witnesses");
    assert_eq!(ws.len(), r.findings.len());
    for (w, f) in ws.iter().zip(&r.findings) {
        assert_eq!((w.vuln, w.stmt, w.pc), (f.vuln, f.stmt, f.pc));
    }
}

#[test]
fn witness_path_runs_from_axioms_to_the_sink() {
    let cfg = Config { witness: true, ..Config::default() };
    let r = analyze_with(BAD, &cfg);
    let ws = r.witnesses.as_ref().unwrap();
    let w = ws
        .iter()
        .find(|w| w.vuln == Vuln::TaintedOwnerVariable)
        .expect("Bad has a tainted owner variable");
    // Last step is the sink, with rendered TAC.
    let sink = w.steps.last().unwrap();
    assert!(sink.rule.starts_with("sink-"), "{:?}", sink);
    assert_eq!(sink.stmt, Some(w.stmt));
    assert!(sink.code.as_deref().unwrap_or("").contains("SStore"), "{sink:?}");
    // At least one step before the sink, and sources precede uses: the
    // first step must be an axiom or a source rule (nothing to cite).
    assert!(w.steps.len() >= 2, "{:?}", w.steps);
    let first = &w.steps[0];
    assert!(
        first.rule.starts_with("axiom") || first.rule == "source-calldata",
        "{first:?}"
    );
}

#[test]
fn composite_witness_cites_the_defeated_guard() {
    let cfg = Config { witness: true, ..Config::default() };
    let r = analyze_with(BAD, &cfg);
    let ws = r.witnesses.as_ref().unwrap();
    // The guarded selfdestruct becomes reachable only by defeating the
    // owner guard; its accessible-selfdestruct witness must say so.
    let w = ws
        .iter()
        .find(|w| w.vuln == Vuln::AccessibleSelfDestruct)
        .expect("guard defeat makes kill() reachable");
    let rules: Vec<&str> = w.steps.iter().map(|s| s.rule.as_str()).collect();
    assert!(
        rules.contains(&"guard-defeat") && rules.contains(&"guards-defeated"),
        "expected a guard-defeat chain, got {rules:?}"
    );
    assert!(
        w.steps.iter().any(|s| s.fact.contains("defeated")),
        "{:?}",
        w.steps
    );
}

#[test]
fn witness_off_leaves_reports_byte_identical_to_before() {
    let on = analyze_with(BAD, &Config { witness: true, ..Config::default() });
    let off = analyze_with(BAD, &Config::default());
    assert!(off.witnesses.is_none());
    // The field serializes as absent, not null, so witness-off JSON has
    // no trace of the feature...
    let off_json = serde_json::to_string(&off).unwrap();
    assert!(!off_json.contains("witnesses"), "{off_json}");
    // ...and the verdict halves agree: stripping witnesses and timings
    // from the witness run reproduces the plain run exactly.
    let strip = |mut r: Report| {
        r.witnesses = None;
        r.stats.timings = Default::default();
        serde_json::to_string(&r).unwrap()
    };
    assert_eq!(strip(on), strip(off));
}

#[test]
fn timings_keep_the_total_invariant_and_time_the_witness_phase() {
    let r = analyze_with(BAD, &Config { witness: true, ..Config::default() });
    let t = &r.stats.timings;
    assert_eq!(t.total_us, t.phase_sum());
    // decompile is always nonzero wall-clock on a real contract.
    assert!(t.decompile_us > 0 || t.fixpoint_us > 0 || t.total_us > 0);
}
