//! Sparse, worklist-driven fixpoint evaluation — the production engine.
//!
//! Instead of re-scanning every statement per round, the engine keeps a
//! worklist of statements whose inputs may have changed and processes it
//! to exhaustion. Every rule firing is mapped to the statements it can
//! enable through the one-time [`SparseIndexes`]:
//!
//! - a variable gaining input/storage taint pushes its **use sites**
//!   (plus, for input taint, the `SStore`s whose *mapping keys* include
//!   it — keys hide behind `Hash2` chains and are not direct uses);
//! - a slot/mapping becoming tainted pushes exactly the `SLoad`s that
//!   read it; a tainted `MStore` value pushes the `MLoad`s at the same
//!   constant offset;
//! - a guard defeat does **not** rebuild `ReachableByAttacker`: each
//!   block keeps a count of undefeated guard regions covering it, the
//!   defeat decrements its region's counters, and a counter hitting zero
//!   flips just that block and re-pushes just its statements
//!   (delta-`recompute_rba`).
//!
//! **Worklist invariants** (why this terminates at the same fixpoint as
//! the dense engine — see `DESIGN.md` §10):
//!
//! 1. Every state field is monotone (bits flip `false → true`, sets only
//!    grow, block cover counts only fall), so each event fires at most
//!    once per fact and total work is bounded by the index sizes.
//! 2. A statement is pushed whenever *any* input of its transfer
//!    function changes — variable taint, storage facts, global flags,
//!    or its block's `rba` bit — so no enabled rule is ever stranded
//!    (fairness). Processing is idempotent: re-evaluating a statement
//!    whose inputs did not change performs no state change and pushes
//!    nothing.
//! 3. Monotone rule systems have a unique least fixpoint; 1 + 2 make
//!    the engine a fair chaotic iteration, which converges to exactly
//!    that fixpoint — hence verdicts, findings, and fact counts are
//!    identical to the dense engine's by construction (and by the
//!    differential suites in `crates/bench`).

use super::indexes::SparseIndexes;
use super::{guard_defeated, KeyClass, Prepared, State};
use crate::analysis::deadline_exceeded;
use crate::config::{Config, StorageModel};
use decompiler::{Op, StmtId, Var};
use std::collections::VecDeque;

/// Runs the sparse fixpoint, mutating `st` in place until the worklist
/// drains (= convergence) or the cooperative deadline fires.
pub(crate) fn run(
    cfg: &Config,
    prep: &Prepared<'_>,
    idx: &SparseIndexes,
    st: &mut State,
) {
    // An already-expired deadline must abort before any work, exactly as
    // the dense engine's per-round check does on its first round.
    if deadline_exceeded() {
        st.timed_out = true;
        return;
    }
    let n_stmts = prep.ctx.p.stmts.len();
    let n_blocks = prep.ctx.p.blocks.len();
    // Per block: undefeated guard regions covering it. rba is true iff
    // the count is zero and the block is (statically) reachable — the
    // same function recompute_rba computes densely.
    let mut cover = vec![0u32; n_blocks];
    for (g, guard) in prep.guards.iter().enumerate() {
        if !st.defeated[g] {
            for &blk in &guard.region {
                cover[blk.0 as usize] += 1;
            }
        }
    }
    let mut eng = Sparse {
        cfg,
        prep,
        idx,
        st,
        queue: VecDeque::new(),
        queued: vec![false; n_stmts],
        cover,
        pops: 0,
    };
    eng.st.rounds = 1;
    for &s in &idx.seeds {
        push(&mut eng.queue, &mut eng.queued, s);
    }
    eng.drain();
}

/// Enqueues a statement unless it is already pending.
fn push(queue: &mut VecDeque<StmtId>, queued: &mut [bool], id: StmtId) {
    let i = id.0 as usize;
    if !queued[i] {
        queued[i] = true;
        queue.push_back(id);
    }
}

struct Sparse<'a, 'b> {
    cfg: &'b Config,
    prep: &'b Prepared<'a>,
    idx: &'b SparseIndexes,
    st: &'b mut State,
    queue: VecDeque<StmtId>,
    queued: Vec<bool>,
    /// Per block: undefeated guard regions covering it.
    cover: Vec<u32>,
    /// Statements processed (for the periodic deadline check).
    pops: usize,
}

impl<'a, 'b> Sparse<'a, 'b> {
    fn drain(&mut self) {
        while let Some(id) = self.queue.pop_front() {
            self.queued[id.0 as usize] = false;
            self.pops += 1;
            if self.pops & 0x3ff == 0 && deadline_exceeded() {
                self.st.timed_out = true;
                return;
            }
            self.process(id);
        }
    }

    /// Re-evaluates one statement's transfer function against the
    /// current state. Mirrors the dense engine's rules exactly; all
    /// scheduling happens through the event methods below.
    fn process(&mut self, id: StmtId) {
        let prep = self.prep;
        let idx = self.idx;
        let s = prep.ctx.p.stmt(id);
        let stmt_rba = self.st.rba[s.block.0 as usize];
        match &s.op {
            Op::CallDataLoad => {
                // TaintedFlow(x,x) :- ReachableByAttacker(s),
                //                     CALLDATALOAD(s, x).
                if let (true, Some(d)) = (stmt_rba, s.def) {
                    self.set_input(d);
                }
            }
            // OriginFlow / TimeFlow sources (detector suite v2):
            // unconditional, like storage taint.
            Op::Env(evm::opcode::Opcode::Origin) => {
                if let Some(d) = s.def {
                    self.set_origin(d);
                }
            }
            Op::Env(evm::opcode::Opcode::Timestamp) => {
                if let Some(d) = s.def {
                    self.set_time(d);
                }
            }
            Op::Copy | Op::Bin(_) | Op::Un(_) | Op::Hash2 | Op::Sha3 | Op::Other(_) => {
                let Some(d) = s.def else { return };
                let any_in = s.uses.iter().any(|u| self.st.input_tainted[u.0 as usize]);
                let any_st =
                    s.uses.iter().any(|u| self.st.storage_tainted[u.0 as usize]);
                // Input taint moves only through attacker-reachable
                // statements (Guard-2); storage taint through all (Guard-1).
                if any_in && stmt_rba {
                    self.set_input(d);
                }
                if any_st {
                    self.set_storage(d);
                }
                if s.uses.iter().any(|u| self.st.origin_tainted[u.0 as usize]) {
                    self.set_origin(d);
                }
                if s.uses.iter().any(|u| self.st.time_tainted[u.0 as usize]) {
                    self.set_time(d);
                }
            }
            Op::MLoad => {
                // Local memory modeling: values stored at the same
                // constant offset flow to this load.
                let Some(d) = s.def else { return };
                if let Some(a) = idx.stmt_mem[id.0 as usize] {
                    let stores = &idx.mem_store_vals[a as usize];
                    let any_in = stores
                        .iter()
                        .any(|(_, v)| self.st.input_tainted[v.0 as usize]);
                    let any_st = stores
                        .iter()
                        .any(|(_, v)| self.st.storage_tainted[v.0 as usize]);
                    if any_in && stmt_rba {
                        self.set_input(d);
                    }
                    if any_st {
                        self.set_storage(d);
                    }
                    if stores.iter().any(|(_, v)| self.st.origin_tainted[v.0 as usize]) {
                        self.set_origin(d);
                    }
                    if stores.iter().any(|(_, v)| self.st.time_tainted[v.0 as usize]) {
                        self.set_time(d);
                    }
                }
            }
            Op::MStore => {
                // Scheduling only: a (now-)tainted stored value enables
                // the MLoads at the same offset. The loads pull the value
                // themselves when processed.
                let v = s.uses[1].0 as usize;
                if self.st.input_tainted[v]
                    || self.st.storage_tainted[v]
                    || self.st.origin_tainted[v]
                    || self.st.time_tainted[v]
                {
                    if let Some(a) = idx.stmt_mem[id.0 as usize] {
                        for &l in &idx.mem_loads[a as usize] {
                            push(&mut self.queue, &mut self.queued, l);
                        }
                    }
                }
            }
            Op::SLoad => {
                if !self.cfg.storage_taint {
                    return;
                }
                let Some(d) = s.def else { return };
                let class = prep.key_class[id.0 as usize].as_ref().unwrap();
                let tainted_load = match class {
                    KeyClass::Const(a) => {
                        self.st.tainted_slots.contains(*a) || self.st.all_slots_tainted
                    }
                    KeyClass::Mapping { base, .. } => {
                        self.st.tainted_mappings.contains(*base)
                    }
                    KeyClass::Unknown => {
                        self.cfg.storage_model == StorageModel::Conservative
                            && self.st.unknown_store_tainted
                    }
                };
                // StorageLoad: loads of tainted storage are
                // storage-tainted, eluding guards.
                if tainted_load {
                    self.set_storage(d);
                }
            }
            Op::SStore => {
                if !self.cfg.storage_taint {
                    return;
                }
                // StorageWrite-1 / StorageWrite-2 plus the enrollment
                // rule, evaluated together per statement (they read the
                // same operands; order is irrelevant at fixpoint).
                let key = s.uses[0];
                let value = s.uses[1];
                let v_in = self.st.input_tainted[value.0 as usize];
                let v_st = self.st.storage_tainted[value.0 as usize];
                // `msg.sender`-derived values written by the attacker are
                // attacker-chosen (public-initializer pattern).
                let v_ds = prep.ctx.ds[value.0 as usize];
                let attacker_value = (v_in || v_ds) && stmt_rba;
                let tainted_value = v_st || attacker_value;
                match prep.key_class[id.0 as usize].as_ref().unwrap() {
                    KeyClass::Const(a) => {
                        if tainted_value {
                            self.taint_slot(*a);
                        }
                    }
                    KeyClass::Mapping { base, keys } => {
                        let key_attacker = keys.iter().any(|k| {
                            prep.ctx.ds[k.0 as usize]
                                || self.st.input_tainted[k.0 as usize]
                        });
                        if tainted_value {
                            self.taint_mapping(*base);
                        }
                        // Enrollment without taint: an attacker-reachable
                        // write of a non-zero constant (or attacker-derived
                        // value) into a structure keyed by the attacker
                        // (users[msg.sender] = true) makes its membership
                        // guards passable.
                        let value_nonzero_const = prep.ctx.consts
                            [value.0 as usize]
                            .is_some_and(|c| !c.is_zero());
                        let enroll_value =
                            value_nonzero_const || v_in || v_st || v_ds;
                        if key_attacker
                            && (tainted_value || (stmt_rba && enroll_value))
                        {
                            self.make_writable(*base);
                        }
                    }
                    KeyClass::Unknown => {
                        // StorageWrite-2: tainted value at a tainted
                        // (attacker-influenced) address taints all known
                        // slots. Conservative mode does this for *any*
                        // unknown address.
                        let key_tainted = self.st.input_tainted[key.0 as usize]
                            || self.st.storage_tainted[key.0 as usize];
                        let conservative =
                            self.cfg.storage_model == StorageModel::Conservative;
                        if tainted_value && (key_tainted || conservative) {
                            self.set_all_slots_tainted();
                            self.set_unknown_store_tainted();
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // ---- Events: one per kind of monotone state change ----------------

    /// Variable gained input taint.
    fn set_input(&mut self, v: Var) {
        let vi = v.0 as usize;
        if self.st.input_tainted[vi] {
            return;
        }
        self.st.input_tainted[vi] = true;
        let prep = self.prep;
        let idx = self.idx;
        for &u in prep.ctx.du.uses(v) {
            push(&mut self.queue, &mut self.queued, u);
        }
        // Mapping keys are Hash2 operands, not SStore operands: the
        // dependent stores' key_attacker predicate just changed.
        for &d in &idx.mapping_key_deps[vi] {
            push(&mut self.queue, &mut self.queued, d);
        }
        self.defeat_candidates_by_cond(v);
    }

    /// Variable gained storage taint.
    fn set_storage(&mut self, v: Var) {
        let vi = v.0 as usize;
        if self.st.storage_tainted[vi] {
            return;
        }
        self.st.storage_tainted[vi] = true;
        let prep = self.prep;
        for &u in prep.ctx.du.uses(v) {
            push(&mut self.queue, &mut self.queued, u);
        }
        self.defeat_candidates_by_cond(v);
    }

    /// Variable gained `ORIGIN` taint (detector suite v2). Origin taint
    /// never feeds guard defeat or storage facts, so only the use sites
    /// (and, via `MStore` scheduling, memory loads) need re-evaluation.
    fn set_origin(&mut self, v: Var) {
        let vi = v.0 as usize;
        if self.st.origin_tainted[vi] {
            return;
        }
        self.st.origin_tainted[vi] = true;
        let prep = self.prep;
        for &u in prep.ctx.du.uses(v) {
            push(&mut self.queue, &mut self.queued, u);
        }
    }

    /// Variable gained `TIMESTAMP` taint (detector suite v2).
    fn set_time(&mut self, v: Var) {
        let vi = v.0 as usize;
        if self.st.time_tainted[vi] {
            return;
        }
        self.st.time_tainted[vi] = true;
        let prep = self.prep;
        for &u in prep.ctx.du.uses(v) {
            push(&mut self.queue, &mut self.queued, u);
        }
    }

    /// Constant storage slot (by atom) became tainted.
    fn taint_slot(&mut self, slot: u32) {
        if !self.st.tainted_slots.insert(slot) {
            return;
        }
        let idx = self.idx;
        for &l in &idx.sload_const[slot as usize] {
            push(&mut self.queue, &mut self.queued, l);
        }
        for &g in &idx.guards_by_slot[slot as usize] {
            self.maybe_defeat(g);
        }
    }

    /// Mapping base slot (by atom) became tainted.
    fn taint_mapping(&mut self, base: u32) {
        if !self.st.tainted_mappings.insert(base) {
            return;
        }
        let idx = self.idx;
        for &l in &idx.sload_mapping[base as usize] {
            push(&mut self.queue, &mut self.queued, l);
        }
    }

    /// Mapping (by atom) became attacker-writable (enrollment).
    fn make_writable(&mut self, base: u32) {
        if !self.st.writable_mappings.insert(base) {
            return;
        }
        let idx = self.idx;
        for &g in &idx.guards_by_membership[base as usize] {
            self.maybe_defeat(g);
        }
    }

    /// StorageWrite-2 fired for the first time.
    fn set_all_slots_tainted(&mut self) {
        if self.st.all_slots_tainted {
            return;
        }
        self.st.all_slots_tainted = true;
        let idx = self.idx;
        for &l in &idx.sload_const_all {
            push(&mut self.queue, &mut self.queued, l);
        }
        for &g in &idx.guards_slot_kind {
            self.maybe_defeat(g);
        }
    }

    /// A tainted store to an unresolved address appeared.
    fn set_unknown_store_tainted(&mut self) {
        if self.st.unknown_store_tainted {
            return;
        }
        self.st.unknown_store_tainted = true;
        let idx = self.idx;
        for &l in &idx.sload_unknown {
            push(&mut self.queue, &mut self.queued, l);
        }
    }

    /// A guard condition variable changed: re-check its guards.
    fn defeat_candidates_by_cond(&mut self, v: Var) {
        let idx = self.idx;
        for &g in &idx.guards_by_cond[v.0 as usize] {
            self.maybe_defeat(g);
        }
    }

    /// Re-evaluates the (shared) defeat predicate for one guard and, on
    /// defeat, applies the delta-rba update: decrement the region's
    /// cover counts and flip exactly the blocks whose last covering
    /// guard fell.
    fn maybe_defeat(&mut self, g: usize) {
        if self.st.defeated[g] || self.cfg.freeze_guards {
            return;
        }
        let prep = self.prep;
        let idx = self.idx;
        if !guard_defeated(&prep.guards[g], &prep.guard_atoms[g], self.st, self.cfg) {
            return;
        }
        self.st.defeated[g] = true;
        self.st.any_defeat = true;
        // Convergence effort statistic: 1 + defeat waves (each defeat is
        // the sparse analogue of a dense re-scan round).
        self.st.rounds += 1;
        for &blk in &prep.guards[g].region {
            let bi = blk.0 as usize;
            self.cover[bi] -= 1;
            if self.cover[bi] == 0 {
                // Same reachability function as recompute_rba, applied to
                // this block only.
                let now_rba = prep.dom.is_reachable(blk) && prep.live_block[bi];
                if now_rba && !self.st.rba[bi] {
                    self.st.rba[bi] = true;
                    // Everything in the block sees a new rba bit: its
                    // CallDataLoads, taint propagation, and SStore rules
                    // may all fire now.
                    for &sid in &idx.block_stmts[bi] {
                        push(&mut self.queue, &mut self.queued, sid);
                    }
                }
            }
        }
    }
}
