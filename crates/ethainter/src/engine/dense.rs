//! Naive (dense) fixpoint evaluation — the executable specification.
//!
//! Every round re-scans every statement: taint propagation to an inner
//! fixpoint, then storage writes, then guard defeat, then a full
//! `ReachableByAttacker` recomputation, until a round changes nothing.
//! O(rounds × stmts) and deliberately simple; the sparse engine is
//! differentially tested against this one.
//!
//! Because this engine's evaluation order is fully deterministic
//! (statement order, then guard order), it doubles as the **canonical
//! provenance recorder**: [`run_recording`] is the same fixpoint with a
//! [`Provenance`] attached, noting the first derivation of every fact.
//! The witness layer replays it even when the production engine is
//! sparse, so witnesses never depend on worklist scheduling.

use super::provenance::{Edge, FactId, Provenance};
use super::{
    guard_defeated, recompute_rba, Guard, GuardCond, GuardKind, KeyClass, Prepared, State,
};
use crate::analysis::deadline_exceeded;
use crate::config::{Config, StorageModel};
use decompiler::{Op, Var};
use evm::opcode::Opcode;

/// Runs the dense fixpoint, mutating `st` in place until convergence,
/// timeout, or the 64-round safety cap.
pub(crate) fn run(cfg: &Config, prep: &Prepared<'_>, st: &mut State) {
    run_impl(cfg, prep, st, None);
}

/// [`run`], recording the first derivation of every fact into `prov`.
pub(crate) fn run_recording(
    cfg: &Config,
    prep: &Prepared<'_>,
    st: &mut State,
    prov: &mut Provenance,
) {
    run_impl(cfg, prep, st, Some(prov));
}

/// The prerequisite facts that defeat `guard` under the current state —
/// the provenance mirror of [`guard_defeated`]. Membership tests run
/// over atoms (`atoms` is the guard's [`Prepared::guard_atoms`] row);
/// the cited [`FactId`]s carry the 256-bit slots straight from the
/// guard kinds, so witnesses stay atom-free.
fn defeat_sources(guard: &Guard, atoms: &[Option<u32>], st: &State) -> Vec<FactId> {
    let ci = guard.cond.0;
    if st.input_tainted[ci as usize] {
        return vec![FactId::Input(ci)];
    }
    if st.storage_tainted[ci as usize] {
        return vec![FactId::Storage(ci)];
    }
    let kind_fact = |(i, k): (usize, &GuardKind)| -> Option<FactId> {
        match k {
            GuardKind::SenderEqSlot(v) => {
                if atoms[i].is_some_and(|a| st.tainted_slots.contains(a)) {
                    Some(FactId::Slot(*v))
                } else if st.all_slots_tainted {
                    Some(FactId::AllSlots)
                } else {
                    None
                }
            }
            GuardKind::Membership(base) => atoms[i]
                .is_some_and(|a| st.writable_mappings.contains(a))
                .then_some(FactId::Writable(*base)),
            GuardKind::SenderEqOther | GuardKind::SenderOpaque => None,
        }
    };
    let defeated: Vec<FactId> = guard
        .cond_kind
        .kinds()
        .iter()
        .enumerate()
        .filter_map(kind_fact)
        .collect();
    match &guard.cond_kind {
        // One defeated disjunct suffices; cite only the first.
        GuardCond::Disj(_) => defeated.into_iter().take(1).collect(),
        _ => defeated,
    }
}

fn run_impl(
    cfg: &Config,
    prep: &Prepared<'_>,
    st: &mut State,
    mut prov: Option<&mut Provenance>,
) {
    let p = prep.ctx.p;
    // Reborrow-per-record helper: provenance is recorded only when a
    // recorder is attached, and only for first derivations.
    macro_rules! rec {
        ($fact:expr, $edge:expr) => {
            if let Some(pr) = prov.as_deref_mut() {
                pr.record($fact, $edge);
            }
        };
    }
    let first_with = |uses: &[Var], pred: &dyn Fn(Var) -> bool| -> Option<Var> {
        uses.iter().copied().find(|&u| pred(u))
    };
    loop {
        st.rounds += 1;
        let mut changed = false;
        if deadline_exceeded() {
            st.timed_out = true;
            break;
        }

        // Taint propagation (inner pass repeated within the round until
        // stable — statement order is arbitrary).
        loop {
            let mut inner_changed = false;
            for s in p.iter_stmts() {
                let stmt_rba = st.rba[s.block.0 as usize];
                let Some(d) = s.def else {
                    continue;
                };
                let di = d.0 as usize;
                match &s.op {
                    Op::CallDataLoad
                        // TaintedFlow(x,x) :- ReachableByAttacker(s),
                        //                     CALLDATALOAD(s, x).
                        if stmt_rba && !st.input_tainted[di] => {
                            st.input_tainted[di] = true;
                            rec!(FactId::Input(d.0), Edge {
                                rule: "source-calldata",
                                stmt: Some(s.id),
                                via: None,
                                sources: vec![FactId::Reach(s.block.0)],
                            });
                            inner_changed = true;
                        }
                    // OriginFlow / TimeFlow sources (detector suite v2):
                    // environment reads, unconditional like storage
                    // taint — the value exists on every path.
                    Op::Env(Opcode::Origin) if !st.origin_tainted[di] => {
                        st.origin_tainted[di] = true;
                        rec!(FactId::Origin(d.0), Edge {
                            rule: "source-origin",
                            stmt: Some(s.id),
                            via: None,
                            sources: vec![],
                        });
                        inner_changed = true;
                    }
                    Op::Env(Opcode::Timestamp) if !st.time_tainted[di] => {
                        st.time_tainted[di] = true;
                        rec!(FactId::Time(d.0), Edge {
                            rule: "source-timestamp",
                            stmt: Some(s.id),
                            via: None,
                            sources: vec![],
                        });
                        inner_changed = true;
                    }
                    Op::Copy
                    | Op::Bin(_)
                    | Op::Un(_)
                    | Op::Hash2
                    | Op::Sha3
                    | Op::Other(_) => {
                        let any_in = s.uses.iter().any(|u| st.input_tainted[u.0 as usize]);
                        let any_st =
                            s.uses.iter().any(|u| st.storage_tainted[u.0 as usize]);
                        let any_or = s.uses.iter().any(|u| st.origin_tainted[u.0 as usize]);
                        let any_tm = s.uses.iter().any(|u| st.time_tainted[u.0 as usize]);
                        if any_or && !st.origin_tainted[di] {
                            let u = first_with(&s.uses, &|u: Var| {
                                st.origin_tainted[u.0 as usize]
                            });
                            st.origin_tainted[di] = true;
                            rec!(FactId::Origin(d.0), Edge {
                                rule: "flow",
                                stmt: Some(s.id),
                                via: None,
                                sources: vec![FactId::Origin(u.expect("any_or").0)],
                            });
                            inner_changed = true;
                        }
                        if any_tm && !st.time_tainted[di] {
                            let u = first_with(&s.uses, &|u: Var| {
                                st.time_tainted[u.0 as usize]
                            });
                            st.time_tainted[di] = true;
                            rec!(FactId::Time(d.0), Edge {
                                rule: "flow",
                                stmt: Some(s.id),
                                via: None,
                                sources: vec![FactId::Time(u.expect("any_tm").0)],
                            });
                            inner_changed = true;
                        }
                        // Input taint moves only through attacker-reachable
                        // statements (Guard-2); storage taint through all
                        // (Guard-1).
                        if any_in && stmt_rba && !st.input_tainted[di] {
                            // Source lookup precedes the mutation so a
                            // self-referential def can't cite itself.
                            let u = first_with(&s.uses, &|u: Var| {
                                st.input_tainted[u.0 as usize]
                            });
                            st.input_tainted[di] = true;
                            rec!(FactId::Input(d.0), Edge {
                                rule: "flow",
                                stmt: Some(s.id),
                                via: None,
                                sources: vec![
                                    FactId::Input(u.expect("any_in").0),
                                    FactId::Reach(s.block.0),
                                ],
                            });
                            inner_changed = true;
                        }
                        if any_st && !st.storage_tainted[di] {
                            let u = first_with(&s.uses, &|u: Var| {
                                st.storage_tainted[u.0 as usize]
                            });
                            st.storage_tainted[di] = true;
                            rec!(FactId::Storage(d.0), Edge {
                                rule: "flow",
                                stmt: Some(s.id),
                                via: None,
                                sources: vec![FactId::Storage(u.expect("any_st").0)],
                            });
                            inner_changed = true;
                        }
                    }
                    Op::MLoad => {
                        // Local memory modeling: values stored at the same
                        // constant offset flow to this load.
                        if let Some(off) = prep.ctx.consts[s.uses[0].0 as usize] {
                            if let Some(stores) = prep.mem_stores.get(&off) {
                                let any_in = stores
                                    .iter()
                                    .any(|(_, v)| st.input_tainted[v.0 as usize]);
                                let any_st = stores
                                    .iter()
                                    .any(|(_, v)| st.storage_tainted[v.0 as usize]);
                                if any_in && stmt_rba && !st.input_tainted[di] {
                                    let (sid, v) = *stores
                                        .iter()
                                        .find(|(_, v)| st.input_tainted[v.0 as usize])
                                        .expect("any_in");
                                    st.input_tainted[di] = true;
                                    rec!(FactId::Input(d.0), Edge {
                                        rule: "mem-flow",
                                        stmt: Some(s.id),
                                        via: Some(sid),
                                        sources: vec![
                                            FactId::Input(v.0),
                                            FactId::Reach(s.block.0),
                                        ],
                                    });
                                    inner_changed = true;
                                }
                                if any_st && !st.storage_tainted[di] {
                                    let (sid, v) = *stores
                                        .iter()
                                        .find(|(_, v)| st.storage_tainted[v.0 as usize])
                                        .expect("any_st");
                                    st.storage_tainted[di] = true;
                                    rec!(FactId::Storage(d.0), Edge {
                                        rule: "mem-flow",
                                        stmt: Some(s.id),
                                        via: Some(sid),
                                        sources: vec![FactId::Storage(v.0)],
                                    });
                                    inner_changed = true;
                                }
                                let or_store = stores
                                    .iter()
                                    .find(|(_, v)| st.origin_tainted[v.0 as usize]);
                                if let Some(&(sid, v)) = or_store {
                                    if !st.origin_tainted[di] {
                                        st.origin_tainted[di] = true;
                                        rec!(FactId::Origin(d.0), Edge {
                                            rule: "mem-flow",
                                            stmt: Some(s.id),
                                            via: Some(sid),
                                            sources: vec![FactId::Origin(v.0)],
                                        });
                                        inner_changed = true;
                                    }
                                }
                                let tm_store = stores
                                    .iter()
                                    .find(|(_, v)| st.time_tainted[v.0 as usize]);
                                if let Some(&(sid, v)) = tm_store {
                                    if !st.time_tainted[di] {
                                        st.time_tainted[di] = true;
                                        rec!(FactId::Time(d.0), Edge {
                                            rule: "mem-flow",
                                            stmt: Some(s.id),
                                            via: Some(sid),
                                            sources: vec![FactId::Time(v.0)],
                                        });
                                        inner_changed = true;
                                    }
                                }
                            }
                        }
                    }
                    Op::SLoad => {
                        if !cfg.storage_taint {
                            continue;
                        }
                        let addr = prep.key_class[s.id.0 as usize].as_ref().unwrap();
                        let tainted_load = match addr {
                            KeyClass::Const(a) => {
                                st.tainted_slots.contains(*a) || st.all_slots_tainted
                            }
                            KeyClass::Mapping { base, .. } => {
                                st.tainted_mappings.contains(*base)
                            }
                            KeyClass::Unknown => {
                                cfg.storage_model == StorageModel::Conservative
                                    && st.unknown_store_tainted
                            }
                        };
                        // StorageLoad: loads of tainted storage are
                        // storage-tainted, eluding guards.
                        if tainted_load && !st.storage_tainted[di] {
                            st.storage_tainted[di] = true;
                            let source = match addr {
                                KeyClass::Const(a) if st.tainted_slots.contains(*a) => {
                                    FactId::Slot(*prep.slots.resolve(*a))
                                }
                                KeyClass::Const(_) => FactId::AllSlots,
                                KeyClass::Mapping { base, .. } => {
                                    FactId::MappingTaint(*prep.slots.resolve(*base))
                                }
                                KeyClass::Unknown => FactId::UnknownStore,
                            };
                            rec!(FactId::Storage(d.0), Edge {
                                rule: "storage-load",
                                stmt: Some(s.id),
                                via: None,
                                sources: vec![source],
                            });
                            inner_changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !inner_changed || deadline_exceeded() {
                break;
            }
            changed = true;
        }

        // Storage writes (StorageWrite-1 / StorageWrite-2 and the
        // attacker-enrollment rule for sender-keyed structures).
        if cfg.storage_taint {
            for s in p.iter_stmts() {
                if s.op != Op::SStore {
                    continue;
                }
                let stmt_rba = st.rba[s.block.0 as usize];
                let key = s.uses[0];
                let value = s.uses[1];
                let v_in = st.input_tainted[value.0 as usize];
                let v_st = st.storage_tainted[value.0 as usize];
                // `msg.sender`-derived values written by the attacker are
                // attacker-chosen (public-initializer pattern: anyone can
                // become owner).
                let v_ds = prep.ctx.ds[value.0 as usize];
                let attacker_value = (v_in || v_ds) && stmt_rba;
                let tainted_value = v_st || attacker_value;
                if !tainted_value {
                    continue;
                }
                // The fact that makes this store's value tainted, for
                // provenance (storage taint first, mirroring rule
                // priority; attacker-reachability cited when needed).
                let value_sources = || -> Vec<FactId> {
                    if v_st {
                        vec![FactId::Storage(value.0)]
                    } else if v_in {
                        vec![FactId::Input(value.0), FactId::Reach(s.block.0)]
                    } else {
                        vec![FactId::Sender(value.0), FactId::Reach(s.block.0)]
                    }
                };
                match prep.key_class[s.id.0 as usize].as_ref().unwrap() {
                    KeyClass::Const(a) => {
                        if st.tainted_slots.insert(*a) {
                            rec!(FactId::Slot(*prep.slots.resolve(*a)), Edge {
                                rule: "storage-write",
                                stmt: Some(s.id),
                                via: None,
                                sources: value_sources(),
                            });
                            changed = true;
                        }
                    }
                    KeyClass::Mapping { base, keys } => {
                        if st.tainted_mappings.insert(*base) {
                            rec!(FactId::MappingTaint(*prep.slots.resolve(*base)), Edge {
                                rule: "storage-write",
                                stmt: Some(s.id),
                                via: None,
                                sources: value_sources(),
                            });
                            changed = true;
                        }
                        let key_attacker = keys.iter().any(|k| {
                            prep.ctx.ds[k.0 as usize] || st.input_tainted[k.0 as usize]
                        });
                        if key_attacker && st.writable_mappings.insert(*base) {
                            let k = *keys
                                .iter()
                                .find(|k| {
                                    prep.ctx.ds[k.0 as usize]
                                        || st.input_tainted[k.0 as usize]
                                })
                                .expect("key_attacker");
                            let key_fact = if prep.ctx.ds[k.0 as usize] {
                                FactId::Sender(k.0)
                            } else {
                                FactId::Input(k.0)
                            };
                            let mut sources = vec![key_fact];
                            sources.extend(value_sources());
                            rec!(FactId::Writable(*prep.slots.resolve(*base)), Edge {
                                rule: "enroll",
                                stmt: Some(s.id),
                                via: None,
                                sources,
                            });
                            changed = true;
                        }
                    }
                    KeyClass::Unknown => {
                        // StorageWrite-2: tainted value at a tainted
                        // (attacker-influenced) address taints all known
                        // slots. Conservative mode does this for *any*
                        // unknown address.
                        let key_tainted = st.input_tainted[key.0 as usize]
                            || st.storage_tainted[key.0 as usize];
                        let conservative =
                            cfg.storage_model == StorageModel::Conservative;
                        if key_tainted || conservative {
                            let sources = || -> Vec<FactId> {
                                let mut srcs = value_sources();
                                if st.input_tainted[key.0 as usize] {
                                    srcs.push(FactId::Input(key.0));
                                } else if st.storage_tainted[key.0 as usize] {
                                    srcs.push(FactId::Storage(key.0));
                                }
                                srcs
                            };
                            if !st.all_slots_tainted {
                                st.all_slots_tainted = true;
                                rec!(FactId::AllSlots, Edge {
                                    rule: "storage-write-unknown",
                                    stmt: Some(s.id),
                                    via: None,
                                    sources: sources(),
                                });
                                changed = true;
                            }
                            if !st.unknown_store_tainted {
                                st.unknown_store_tainted = true;
                                rec!(FactId::UnknownStore, Edge {
                                    rule: "storage-write-unknown",
                                    stmt: Some(s.id),
                                    via: None,
                                    sources: sources(),
                                });
                                changed = true;
                            }
                        }
                    }
                }
            }
            // Enrollment without taint: an attacker-reachable write of a
            // *non-zero constant* into a structure keyed by the attacker
            // (users[msg.sender] = true) makes its membership guards
            // passable.
            for s in p.iter_stmts() {
                if s.op != Op::SStore || !st.rba[s.block.0 as usize] {
                    continue;
                }
                let value_const = prep.ctx.consts[s.uses[1].0 as usize];
                let value_nonzero_const = value_const.is_some_and(|c| !c.is_zero());
                let value_attacker = value_nonzero_const
                    || st.input_tainted[s.uses[1].0 as usize]
                    || st.storage_tainted[s.uses[1].0 as usize]
                    || prep.ctx.ds[s.uses[1].0 as usize];
                if !value_attacker {
                    continue;
                }
                if let KeyClass::Mapping { base, keys } =
                    prep.key_class[s.id.0 as usize].as_ref().unwrap()
                {
                    let key_attacker = keys.iter().any(|k| {
                        prep.ctx.ds[k.0 as usize] || st.input_tainted[k.0 as usize]
                    });
                    if key_attacker && st.writable_mappings.insert(*base) {
                        let k = *keys
                            .iter()
                            .find(|k| {
                                prep.ctx.ds[k.0 as usize]
                                    || st.input_tainted[k.0 as usize]
                            })
                            .expect("key_attacker");
                        let key_fact = if prep.ctx.ds[k.0 as usize] {
                            FactId::Sender(k.0)
                        } else {
                            FactId::Input(k.0)
                        };
                        rec!(FactId::Writable(*prep.slots.resolve(*base)), Edge {
                            rule: "enroll",
                            stmt: Some(s.id),
                            via: None,
                            sources: vec![key_fact, FactId::Reach(s.block.0)],
                        });
                        changed = true;
                    }
                }
            }
        }

        // Guard defeat:
        // ReachableByAttacker(s) :- StaticallyGuardedStatement(s, guard),
        //                           TaintedFlow(_, guard).
        for g in 0..prep.guards.len() {
            if st.defeated[g] {
                continue;
            }
            if guard_defeated(&prep.guards[g], &prep.guard_atoms[g], st, cfg)
                && !cfg.freeze_guards
            {
                st.defeated[g] = true;
                st.any_defeat = true;
                rec!(FactId::Defeated(g), Edge {
                    rule: "guard-defeat",
                    stmt: None,
                    via: None,
                    sources: defeat_sources(&prep.guards[g], &prep.guard_atoms[g], st),
                });
                changed = true;
            }
        }
        // When recording, diff `rba` around the recomputation so blocks
        // opened by this round's defeats get a provenance edge citing
        // every (now defeated) guard that was covering them.
        let rba_before = prov.is_some().then(|| st.rba.clone());
        recompute_rba(prep, &st.defeated, &mut st.rba);
        if let Some(before) = rba_before {
            for (b, (&was, &now)) in before.iter().zip(&st.rba).enumerate() {
                if was || !now {
                    continue;
                }
                let covering: Vec<FactId> = prep
                    .guards
                    .iter()
                    .enumerate()
                    .filter(|(g, guard)| {
                        st.defeated[*g]
                            && guard.region.iter().any(|blk| blk.0 as usize == b)
                    })
                    .map(|(g, _)| FactId::Defeated(g))
                    .collect();
                rec!(FactId::Reach(b as u32), Edge {
                    rule: "guards-defeated",
                    stmt: None,
                    via: None,
                    sources: covering,
                });
            }
        }

        if !changed || st.rounds > 64 {
            break;
        }
    }
}
