//! Naive (dense) fixpoint evaluation — the executable specification.
//!
//! Every round re-scans every statement: taint propagation to an inner
//! fixpoint, then storage writes, then guard defeat, then a full
//! `ReachableByAttacker` recomputation, until a round changes nothing.
//! O(rounds × stmts) and deliberately simple; the sparse engine is
//! differentially tested against this one.

use super::{guard_defeated, recompute_rba, Prepared, SAddr, State};
use crate::analysis::deadline_exceeded;
use crate::config::{Config, StorageModel};
use decompiler::Op;

/// Runs the dense fixpoint, mutating `st` in place until convergence,
/// timeout, or the 64-round safety cap.
pub(crate) fn run(cfg: &Config, prep: &mut Prepared<'_>, st: &mut State) {
    let p = prep.ctx.p;
    loop {
        st.rounds += 1;
        let mut changed = false;
        if deadline_exceeded() {
            st.timed_out = true;
            break;
        }

        // Taint propagation (inner pass repeated within the round until
        // stable — statement order is arbitrary).
        loop {
            let mut inner_changed = false;
            for s in p.iter_stmts() {
                let stmt_rba = st.rba[s.block.0 as usize];
                let Some(d) = s.def else {
                    continue;
                };
                let di = d.0 as usize;
                match &s.op {
                    Op::CallDataLoad
                        // TaintedFlow(x,x) :- ReachableByAttacker(s),
                        //                     CALLDATALOAD(s, x).
                        if stmt_rba && !st.input_tainted[di] => {
                            st.input_tainted[di] = true;
                            inner_changed = true;
                        }
                    Op::Copy
                    | Op::Bin(_)
                    | Op::Un(_)
                    | Op::Hash2
                    | Op::Sha3
                    | Op::Other(_) => {
                        let any_in = s.uses.iter().any(|u| st.input_tainted[u.0 as usize]);
                        let any_st =
                            s.uses.iter().any(|u| st.storage_tainted[u.0 as usize]);
                        // Input taint moves only through attacker-reachable
                        // statements (Guard-2); storage taint through all
                        // (Guard-1).
                        if any_in && stmt_rba && !st.input_tainted[di] {
                            st.input_tainted[di] = true;
                            inner_changed = true;
                        }
                        if any_st && !st.storage_tainted[di] {
                            st.storage_tainted[di] = true;
                            inner_changed = true;
                        }
                    }
                    Op::MLoad => {
                        // Local memory modeling: values stored at the same
                        // constant offset flow to this load.
                        if let Some(off) = prep.ctx.consts[s.uses[0].0 as usize] {
                            if let Some(stores) = prep.mem_stores.get(&off) {
                                let any_in = stores
                                    .iter()
                                    .any(|(_, v)| st.input_tainted[v.0 as usize]);
                                let any_st = stores
                                    .iter()
                                    .any(|(_, v)| st.storage_tainted[v.0 as usize]);
                                if any_in && stmt_rba && !st.input_tainted[di] {
                                    st.input_tainted[di] = true;
                                    inner_changed = true;
                                }
                                if any_st && !st.storage_tainted[di] {
                                    st.storage_tainted[di] = true;
                                    inner_changed = true;
                                }
                            }
                        }
                    }
                    Op::SLoad => {
                        if !cfg.storage_taint {
                            continue;
                        }
                        let tainted_load = match prep.ctx.classify_addr(s.uses[0]) {
                            SAddr::Const(v) => {
                                st.tainted_slots.contains(&v) || st.all_slots_tainted
                            }
                            SAddr::Mapping { base, .. } => {
                                st.tainted_mappings.contains(&base)
                            }
                            SAddr::Unknown => {
                                cfg.storage_model == StorageModel::Conservative
                                    && st.unknown_store_tainted
                            }
                        };
                        // StorageLoad: loads of tainted storage are
                        // storage-tainted, eluding guards.
                        if tainted_load && !st.storage_tainted[di] {
                            st.storage_tainted[di] = true;
                            inner_changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !inner_changed || deadline_exceeded() {
                break;
            }
            changed = true;
        }

        // Storage writes (StorageWrite-1 / StorageWrite-2 and the
        // attacker-enrollment rule for sender-keyed structures).
        if cfg.storage_taint {
            for s in p.iter_stmts() {
                if s.op != Op::SStore {
                    continue;
                }
                let stmt_rba = st.rba[s.block.0 as usize];
                let key = s.uses[0];
                let value = s.uses[1];
                let v_in = st.input_tainted[value.0 as usize];
                let v_st = st.storage_tainted[value.0 as usize];
                // `msg.sender`-derived values written by the attacker are
                // attacker-chosen (public-initializer pattern: anyone can
                // become owner).
                let v_ds = prep.ctx.ds[value.0 as usize];
                let attacker_value = (v_in || v_ds) && stmt_rba;
                let tainted_value = v_st || attacker_value;
                if !tainted_value {
                    continue;
                }
                match prep.ctx.classify_addr(key) {
                    SAddr::Const(v) => {
                        if st.tainted_slots.insert(v) {
                            changed = true;
                        }
                    }
                    SAddr::Mapping { base, keys } => {
                        if st.tainted_mappings.insert(base) {
                            changed = true;
                        }
                        let key_attacker = keys.iter().any(|k| {
                            prep.ctx.ds[k.0 as usize] || st.input_tainted[k.0 as usize]
                        });
                        if key_attacker && st.writable_mappings.insert(base) {
                            changed = true;
                        }
                    }
                    SAddr::Unknown => {
                        // StorageWrite-2: tainted value at a tainted
                        // (attacker-influenced) address taints all known
                        // slots. Conservative mode does this for *any*
                        // unknown address.
                        let key_tainted = st.input_tainted[key.0 as usize]
                            || st.storage_tainted[key.0 as usize];
                        let conservative =
                            cfg.storage_model == StorageModel::Conservative;
                        if key_tainted || conservative {
                            if !st.all_slots_tainted {
                                st.all_slots_tainted = true;
                                changed = true;
                            }
                            if !st.unknown_store_tainted {
                                st.unknown_store_tainted = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            // Enrollment without taint: an attacker-reachable write of a
            // *non-zero constant* into a structure keyed by the attacker
            // (users[msg.sender] = true) makes its membership guards
            // passable.
            for s in p.iter_stmts() {
                if s.op != Op::SStore || !st.rba[s.block.0 as usize] {
                    continue;
                }
                let value_const = prep.ctx.consts[s.uses[1].0 as usize];
                let value_nonzero_const = value_const.is_some_and(|c| !c.is_zero());
                let value_attacker = value_nonzero_const
                    || st.input_tainted[s.uses[1].0 as usize]
                    || st.storage_tainted[s.uses[1].0 as usize]
                    || prep.ctx.ds[s.uses[1].0 as usize];
                if !value_attacker {
                    continue;
                }
                if let SAddr::Mapping { base, keys } = prep.ctx.classify_addr(s.uses[0]) {
                    let key_attacker = keys.iter().any(|k| {
                        prep.ctx.ds[k.0 as usize] || st.input_tainted[k.0 as usize]
                    });
                    if key_attacker && st.writable_mappings.insert(base) {
                        changed = true;
                    }
                }
            }
        }

        // Guard defeat:
        // ReachableByAttacker(s) :- StaticallyGuardedStatement(s, guard),
        //                           TaintedFlow(_, guard).
        for g in 0..prep.guards.len() {
            if st.defeated[g] {
                continue;
            }
            if guard_defeated(&prep.guards[g], st, cfg) && !cfg.freeze_guards {
                st.defeated[g] = true;
                st.any_defeat = true;
                changed = true;
            }
        }
        recompute_rba(prep, &st.defeated, &mut st.rba);

        if !changed || st.rounds > 64 {
            break;
        }
    }
}
