//! First-derivation provenance for the fixpoint relations.
//!
//! When witnesses are requested, the dense engine re-runs the fixpoint
//! from a fresh [`State`](super::State) with a [`Provenance`] recorder
//! attached, and every mutation site records *why* the fact first
//! became true: the rule name, the statement that fired, and the
//! prerequisite facts ([`FactId`]s). Because the rule system is
//! monotone, first-derivation edges form an acyclic graph rooted at the
//! axioms (CALLDATALOAD sources, `msg.sender`, unguarded blocks), so
//! backtracking from any sink fact replays a concrete source→sink path.
//!
//! The dense engine's iteration order is fully deterministic (statement
//! order, then guard order, then block order), which is what makes
//! witnesses **byte-identical across engines**: the production engine
//! may be sparse, but provenance always comes from the same canonical
//! dense replay. The replay costs one extra dense fixpoint and is only
//! paid when [`Config::witness`](crate::Config) is on.

use super::Prepared;
use decompiler::StmtId;
use evm::U256;
use std::collections::HashMap;

/// A fact of the fixpoint state, addressable for provenance lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum FactId {
    /// Variable carries input taint (`TaintedFlow`).
    Input(u32),
    /// Variable carries storage taint (`AttackerModelInfoflow`).
    Storage(u32),
    /// Constant storage slot holds tainted data.
    Slot(U256),
    /// Mapping base slot holds tainted data.
    MappingTaint(U256),
    /// Mapping base slot the attacker can enroll into.
    Writable(U256),
    /// `StorageWrite-2` fired: every known slot tainted.
    AllSlots,
    /// A tainted store to an unresolved address exists.
    UnknownStore,
    /// Guard (by index into `Prepared::guards`) was defeated.
    Defeated(usize),
    /// Block is `ReachableByAttacker`.
    Reach(u32),
    /// Variable is `msg.sender`-derived (Figure 4's `DS`) — a static
    /// axiom, never carries an edge.
    Sender(u32),
    /// Variable carries `ORIGIN`-derived taint (`OriginFlow`).
    Origin(u32),
    /// Variable carries `TIMESTAMP`-derived taint (`TimeFlow`).
    Time(u32),
}

/// Why a fact first became true: the deriving rule, the statement that
/// fired (plus an optional secondary site, e.g. the `MSTORE` feeding an
/// `MLOAD`), and the prerequisite facts.
#[derive(Clone, Debug)]
pub(crate) struct Edge {
    pub rule: &'static str,
    pub stmt: Option<StmtId>,
    pub via: Option<StmtId>,
    pub sources: Vec<FactId>,
}

/// First-derivation edges for every fact the replay derived. Facts with
/// no entry are axioms (or were never derived).
pub(crate) struct Provenance {
    input: Vec<Option<Edge>>,
    storage: Vec<Option<Edge>>,
    slots: HashMap<U256, Edge>,
    mappings: HashMap<U256, Edge>,
    writable: HashMap<U256, Edge>,
    all_slots: Option<Edge>,
    unknown_store: Option<Edge>,
    defeated: Vec<Option<Edge>>,
    reach: Vec<Option<Edge>>,
    origin: Vec<Option<Edge>>,
    time: Vec<Option<Edge>>,
}

impl Provenance {
    /// Empty recorder sized for `prep`'s program.
    pub fn new(prep: &Prepared<'_>) -> Provenance {
        Provenance {
            input: vec![None; prep.ctx.p.n_vars as usize],
            storage: vec![None; prep.ctx.p.n_vars as usize],
            slots: HashMap::new(),
            mappings: HashMap::new(),
            writable: HashMap::new(),
            all_slots: None,
            unknown_store: None,
            defeated: vec![None; prep.guards.len()],
            reach: vec![None; prep.ctx.p.blocks.len()],
            origin: vec![None; prep.ctx.p.n_vars as usize],
            time: vec![None; prep.ctx.p.n_vars as usize],
        }
    }

    /// Records the first derivation of `fact`; later derivations are
    /// ignored (the dense replay visits sites in deterministic order,
    /// so "first" is canonical).
    pub fn record(&mut self, fact: FactId, edge: Edge) {
        let slot = match fact {
            FactId::Input(v) => &mut self.input[v as usize],
            FactId::Storage(v) => &mut self.storage[v as usize],
            FactId::Slot(k) => {
                self.slots.entry(k).or_insert(edge);
                return;
            }
            FactId::MappingTaint(k) => {
                self.mappings.entry(k).or_insert(edge);
                return;
            }
            FactId::Writable(k) => {
                self.writable.entry(k).or_insert(edge);
                return;
            }
            FactId::AllSlots => &mut self.all_slots,
            FactId::UnknownStore => &mut self.unknown_store,
            FactId::Defeated(g) => &mut self.defeated[g],
            FactId::Reach(b) => &mut self.reach[b as usize],
            FactId::Sender(_) => return, // static axiom
            FactId::Origin(v) => &mut self.origin[v as usize],
            FactId::Time(v) => &mut self.time[v as usize],
        };
        if slot.is_none() {
            *slot = Some(edge);
        }
    }

    /// The first-derivation edge of `fact`, if it was derived (axioms
    /// and never-derived facts return `None`).
    pub fn get(&self, fact: FactId) -> Option<&Edge> {
        match fact {
            FactId::Input(v) => self.input.get(v as usize)?.as_ref(),
            FactId::Storage(v) => self.storage.get(v as usize)?.as_ref(),
            FactId::Slot(k) => self.slots.get(&k),
            FactId::MappingTaint(k) => self.mappings.get(&k),
            FactId::Writable(k) => self.writable.get(&k),
            FactId::AllSlots => self.all_slots.as_ref(),
            FactId::UnknownStore => self.unknown_store.as_ref(),
            FactId::Defeated(g) => self.defeated.get(g)?.as_ref(),
            FactId::Reach(b) => self.reach.get(b as usize)?.as_ref(),
            FactId::Sender(_) => None,
            FactId::Origin(v) => self.origin.get(v as usize)?.as_ref(),
            FactId::Time(v) => self.time.get(v as usize)?.as_ref(),
        }
    }
}
