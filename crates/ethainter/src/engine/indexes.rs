//! One-time program indexes for the sparse worklist engine.
//!
//! Built once per program (counted into the `index_build` timing phase)
//! and immutable during the fixpoint: for every kind of state change the
//! rules can make, an index answers "which statements (or guards) could
//! now fire?" so the engine re-evaluates exactly those. The def→use-site
//! half lives in [`decompiler::DefUse`]; this module adds the
//! analysis-specific edges — constant-offset memory def-use, storage
//! slot/mapping → load-site maps, guard trigger maps, and the per-block
//! guard cover counts behind delta `ReachableByAttacker` updates.

use super::{GuardKind, Prepared, SAddr};
use decompiler::{Op, StmtId, Var};
use evm::U256;
use std::collections::HashMap;

/// All sparse-engine indexes for one program.
pub(crate) struct SparseIndexes {
    /// Const memory offset → `MLoad` statements at that offset.
    /// (Paired with `Prepared::mem_stores` for the store side.)
    pub mem_loads: HashMap<U256, Vec<StmtId>>,
    /// Per-statement storage-address classification of the key operand
    /// (`Some` exactly for `SLoad`/`SStore` statements), precomputed so
    /// the fixpoint never consults the memoizing classifier.
    pub key_class: Vec<Option<SAddr>>,
    /// Constant slot → `SLoad` statements reading it.
    pub sload_const: HashMap<U256, Vec<StmtId>>,
    /// Every `SLoad` with a constant-slot key (for the
    /// `all_slots_tainted` event, which fires them all).
    pub sload_const_all: Vec<StmtId>,
    /// Mapping base slot → `SLoad` statements reading an element of it.
    pub sload_mapping: HashMap<U256, Vec<StmtId>>,
    /// `SLoad`s with unresolved keys (fired by `unknown_store_tainted`
    /// under the conservative storage model).
    pub sload_unknown: Vec<StmtId>,
    /// Mapping *key* variable → `SStore` statements whose key
    /// classification lists it. Mapping keys are operands of the
    /// `Hash2` chain, **not** of the store itself, so the def→use index
    /// alone would miss `key_attacker` flips when a key variable becomes
    /// input-tainted.
    pub mapping_key_deps: HashMap<Var, Vec<StmtId>>,
    /// Guard condition variable → guard indexes (condition-taint defeat).
    pub guards_by_cond: HashMap<Var, Vec<usize>>,
    /// Owner slot → guards with a `SenderEqSlot` kind on it.
    pub guards_by_slot: HashMap<U256, Vec<usize>>,
    /// Mapping base → guards with a `Membership` kind on it.
    pub guards_by_membership: HashMap<U256, Vec<usize>>,
    /// Guards with *any* `SenderEqSlot` kind (re-checked when
    /// `all_slots_tainted` fires).
    pub guards_slot_kind: Vec<usize>,
    /// Worklist seeds: statements whose rules can fire from static facts
    /// alone (`CallDataLoad` introduces taint; `SStore` can act on
    /// `DS`/constant values with no prior taint).
    pub seeds: Vec<StmtId>,
    /// Per block: statements, for bulk re-push when the block flips to
    /// attacker-reachable.
    pub block_stmts: Vec<Vec<StmtId>>,
}

impl SparseIndexes {
    /// Builds every index in two passes (statements, then guards).
    /// Needs `&mut` only for the memoizing address classifier.
    pub fn build(prep: &mut Prepared<'_>) -> SparseIndexes {
        let p = prep.ctx.p;
        let n_stmts = p.stmts.len();
        let mut ix = SparseIndexes {
            mem_loads: HashMap::new(),
            key_class: vec![None; n_stmts],
            sload_const: HashMap::new(),
            sload_const_all: Vec::new(),
            sload_mapping: HashMap::new(),
            sload_unknown: Vec::new(),
            mapping_key_deps: HashMap::new(),
            guards_by_cond: HashMap::new(),
            guards_by_slot: HashMap::new(),
            guards_by_membership: HashMap::new(),
            guards_slot_kind: Vec::new(),
            seeds: Vec::new(),
            block_stmts: vec![Vec::new(); p.blocks.len()],
        };
        for s in p.iter_stmts() {
            ix.block_stmts[s.block.0 as usize].push(s.id);
            match &s.op {
                Op::MLoad => {
                    if let Some(off) = prep.ctx.consts[s.uses[0].0 as usize] {
                        ix.mem_loads.entry(off).or_default().push(s.id);
                    }
                }
                Op::SLoad => {
                    let class = prep.ctx.classify_addr(s.uses[0]);
                    match &class {
                        SAddr::Const(v) => {
                            ix.sload_const.entry(*v).or_default().push(s.id);
                            ix.sload_const_all.push(s.id);
                        }
                        SAddr::Mapping { base, .. } => {
                            ix.sload_mapping.entry(*base).or_default().push(s.id);
                        }
                        SAddr::Unknown => ix.sload_unknown.push(s.id),
                    }
                    ix.key_class[s.id.0 as usize] = Some(class);
                }
                Op::SStore => {
                    let class = prep.ctx.classify_addr(s.uses[0]);
                    if let SAddr::Mapping { keys, .. } = &class {
                        for &k in keys {
                            let deps = ix.mapping_key_deps.entry(k).or_default();
                            if deps.last() != Some(&s.id) {
                                deps.push(s.id);
                            }
                        }
                    }
                    ix.key_class[s.id.0 as usize] = Some(class);
                    ix.seeds.push(s.id);
                }
                Op::CallDataLoad => ix.seeds.push(s.id),
                _ => {}
            }
        }
        for (g, guard) in prep.guards.iter().enumerate() {
            ix.guards_by_cond.entry(guard.cond).or_default().push(g);
            let mut has_slot_kind = false;
            for k in guard.cond_kind.kinds() {
                match k {
                    GuardKind::SenderEqSlot(v) => {
                        let slot = ix.guards_by_slot.entry(*v).or_default();
                        if slot.last() != Some(&g) {
                            slot.push(g);
                        }
                        has_slot_kind = true;
                    }
                    GuardKind::Membership(base) => {
                        let ms = ix.guards_by_membership.entry(*base).or_default();
                        if ms.last() != Some(&g) {
                            ms.push(g);
                        }
                    }
                    GuardKind::SenderEqOther | GuardKind::SenderOpaque => {}
                }
            }
            if has_slot_kind {
                ix.guards_slot_kind.push(g);
            }
        }
        ix
    }
}
