//! One-time program indexes for the sparse worklist engine.
//!
//! Built once per program (counted into the `index_build` timing phase)
//! and immutable during the fixpoint: for every kind of state change the
//! rules can make, an index answers "which statements (or guards) could
//! now fire?" so the engine re-evaluates exactly those. The def→use-site
//! half lives in [`decompiler::DefUse`]; this module adds the
//! analysis-specific edges — constant-offset memory def-use, storage
//! slot/mapping → load-site maps, guard trigger maps, and the per-block
//! guard cover counts behind delta `ReachableByAttacker` updates.
//!
//! Every index here is a **dense `Vec` keyed by an interned atom**, not
//! a hash map keyed by a 256-bit constant or a `Var`: storage slots are
//! atoms from [`Prepared::slots`], constant memory offsets get their own
//! [`Interner`] built here, and variable-keyed triggers index by the
//! variable number directly. The fixpoint inner loops therefore never
//! hash a 32-byte key.

use super::{GuardKind, KeyClass, Prepared};
use datalog::Interner;
use decompiler::{Op, StmtId, Var};
use evm::U256;

/// All sparse-engine indexes for one program.
pub(crate) struct SparseIndexes {
    /// Constant memory offsets seen by `MLoad`/`MStore`, interned.
    pub mem: Interner<U256>,
    /// Per statement: the interned atom of its constant memory offset
    /// (`Some` exactly for `MLoad`/`MStore` with a constant key).
    pub stmt_mem: Vec<Option<u32>>,
    /// Memory atom → `MLoad` statements at that offset.
    pub mem_loads: Vec<Vec<StmtId>>,
    /// Memory atom → (store statement, stored value var) pairs — the
    /// atom-indexed mirror of [`Prepared::mem_stores`].
    pub mem_store_vals: Vec<Vec<(StmtId, Var)>>,
    /// Slot atom → `SLoad` statements reading that constant slot.
    pub sload_const: Vec<Vec<StmtId>>,
    /// Every `SLoad` with a constant-slot key (for the
    /// `all_slots_tainted` event, which fires them all).
    pub sload_const_all: Vec<StmtId>,
    /// Slot atom → `SLoad` statements reading an element of that
    /// mapping.
    pub sload_mapping: Vec<Vec<StmtId>>,
    /// `SLoad`s with unresolved keys (fired by `unknown_store_tainted`
    /// under the conservative storage model).
    pub sload_unknown: Vec<StmtId>,
    /// Mapping *key* variable → `SStore` statements whose key
    /// classification lists it. Mapping keys are operands of the
    /// `Hash2` chain, **not** of the store itself, so the def→use index
    /// alone would miss `key_attacker` flips when a key variable becomes
    /// input-tainted. Indexed by variable number.
    pub mapping_key_deps: Vec<Vec<StmtId>>,
    /// Guard condition variable → guard indexes (condition-taint
    /// defeat). Indexed by variable number.
    pub guards_by_cond: Vec<Vec<usize>>,
    /// Slot atom → guards with a `SenderEqSlot` kind on it.
    pub guards_by_slot: Vec<Vec<usize>>,
    /// Slot atom → guards with a `Membership` kind on it.
    pub guards_by_membership: Vec<Vec<usize>>,
    /// Guards with *any* `SenderEqSlot` kind (re-checked when
    /// `all_slots_tainted` fires).
    pub guards_slot_kind: Vec<usize>,
    /// Worklist seeds: statements whose rules can fire from static facts
    /// alone (`CallDataLoad` introduces taint; `SStore` can act on
    /// `DS`/constant values with no prior taint; `ORIGIN`/`TIMESTAMP`
    /// reads introduce the detector-suite-v2 flavors).
    pub seeds: Vec<StmtId>,
    /// Per block: statements, for bulk re-push when the block flips to
    /// attacker-reachable.
    pub block_stmts: Vec<Vec<StmtId>>,
}

impl SparseIndexes {
    /// Builds every index in two passes (statements, then guards). The
    /// key classifications and slot atoms are already resolved in
    /// [`Prepared`], so this only distributes statement ids into the
    /// atom-indexed tables.
    pub fn build(prep: &Prepared<'_>) -> SparseIndexes {
        telemetry::metrics::counter("ethainter_sparse_index_builds_total").inc();
        let p = prep.ctx.p;
        let n_stmts = p.stmts.len();
        let n_vars = p.n_vars as usize;
        let n_slots = prep.slots.len();
        let mut ix = SparseIndexes {
            mem: Interner::new(),
            stmt_mem: vec![None; n_stmts],
            mem_loads: Vec::new(),
            mem_store_vals: Vec::new(),
            sload_const: vec![Vec::new(); n_slots],
            sload_const_all: Vec::new(),
            sload_mapping: vec![Vec::new(); n_slots],
            sload_unknown: Vec::new(),
            mapping_key_deps: vec![Vec::new(); n_vars],
            guards_by_cond: vec![Vec::new(); n_vars],
            guards_by_slot: vec![Vec::new(); n_slots],
            guards_by_membership: vec![Vec::new(); n_slots],
            guards_slot_kind: Vec::new(),
            seeds: Vec::new(),
            block_stmts: vec![Vec::new(); p.blocks.len()],
        };
        for s in p.iter_stmts() {
            ix.block_stmts[s.block.0 as usize].push(s.id);
            match &s.op {
                Op::MLoad | Op::MStore => {
                    if let Some(off) = prep.ctx.consts[s.uses[0].0 as usize] {
                        let a = ix.mem.intern(off);
                        if a as usize >= ix.mem_loads.len() {
                            ix.mem_loads.push(Vec::new());
                            ix.mem_store_vals.push(Vec::new());
                        }
                        ix.stmt_mem[s.id.0 as usize] = Some(a);
                        if s.op == Op::MLoad {
                            ix.mem_loads[a as usize].push(s.id);
                        } else {
                            ix.mem_store_vals[a as usize].push((s.id, s.uses[1]));
                        }
                    }
                }
                Op::SLoad => {
                    match prep.key_class[s.id.0 as usize].as_ref().unwrap() {
                        KeyClass::Const(a) => {
                            ix.sload_const[*a as usize].push(s.id);
                            ix.sload_const_all.push(s.id);
                        }
                        KeyClass::Mapping { base, .. } => {
                            ix.sload_mapping[*base as usize].push(s.id);
                        }
                        KeyClass::Unknown => ix.sload_unknown.push(s.id),
                    }
                }
                Op::SStore => {
                    if let KeyClass::Mapping { keys, .. } =
                        prep.key_class[s.id.0 as usize].as_ref().unwrap()
                    {
                        for &k in keys {
                            let deps = &mut ix.mapping_key_deps[k.0 as usize];
                            if deps.last() != Some(&s.id) {
                                deps.push(s.id);
                            }
                        }
                    }
                    ix.seeds.push(s.id);
                }
                Op::CallDataLoad => ix.seeds.push(s.id),
                Op::Env(evm::opcode::Opcode::Origin | evm::opcode::Opcode::Timestamp) => {
                    ix.seeds.push(s.id)
                }
                _ => {}
            }
        }
        for (g, guard) in prep.guards.iter().enumerate() {
            ix.guards_by_cond[guard.cond.0 as usize].push(g);
            let mut has_slot_kind = false;
            for (i, k) in guard.cond_kind.kinds().iter().enumerate() {
                let Some(atom) = prep.guard_atoms[g][i] else { continue };
                match k {
                    GuardKind::SenderEqSlot(_) => {
                        let slot = &mut ix.guards_by_slot[atom as usize];
                        if slot.last() != Some(&g) {
                            slot.push(g);
                        }
                        has_slot_kind = true;
                    }
                    GuardKind::Membership(_) => {
                        let ms = &mut ix.guards_by_membership[atom as usize];
                        if ms.last() != Some(&g) {
                            ms.push(g);
                        }
                    }
                    GuardKind::SenderEqOther | GuardKind::SenderOpaque => {}
                }
            }
            if has_slot_kind {
                ix.guards_slot_kind.push(g);
            }
        }
        ix
    }
}
