//! Fixpoint engines for the Figure 5 mutual recursion.
//!
//! The rule system (taint propagation, storage writes, guard defeat) is
//! **monotone**: every relation only ever grows — input/storage taint
//! per variable, tainted slots and mappings, writable mappings, the
//! defeated-guard set, and `ReachableByAttacker` (which is an
//! anti-monotone function of the *undefeated* guards, hence monotone in
//! the defeated set). A monotone system has a unique least fixpoint, so
//! *any* fair evaluation strategy computes the same relations. This
//! module offers two:
//!
//! - [`dense`] — naive evaluation, re-scanning every statement per
//!   round. Simple enough to read as the executable specification.
//! - [`sparse`] — worklist evaluation over the one-time [`indexes`]:
//!   only statements whose inputs changed are re-evaluated. The
//!   production default ([`Engine::Sparse`](crate::config::Engine)).
//!
//! Everything semantic is shared here — guard discovery, storage-address
//! classification, the `DS`/`DSA` relations, the defeat predicate, and
//! the [`State`] both engines fill — so the engines differ only in
//! *scheduling*, never in rules. The differential suites in
//! `crates/bench/tests/engine_differential.rs` hold them to that.

pub(crate) mod dense;
pub(crate) mod indexes;
pub(crate) mod provenance;
pub(crate) mod sparse;

use crate::config::Config;
use datalog::{BitSet, Interner};
use decompiler::{BlockId, DefUse, Dominators, Op, Program, StmtId, Var};
use evm::opcode::Opcode;
use evm::U256;
use std::collections::{HashMap, HashSet, VecDeque};

/// How a guard scrutinizes the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum GuardKind {
    /// `msg.sender == SLOAD(slot)` — an owner comparison; `slot` is also
    /// an *inferred sink* (§4.5).
    SenderEqSlot(U256),
    /// `msg.sender` compared against something non-constant (still
    /// sanitizing; defeated only by tainting the compared value).
    SenderEqOther,
    /// A sender-keyed data-structure membership test over the mapping
    /// with the given base slot (`require(m[msg.sender])`).
    Membership(U256),
    /// Sender-derived condition with no recognized shape (kept
    /// sanitizing, defeated only via condition taint).
    SenderOpaque,
}

/// How atomic guard kinds compose in a compound condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum GuardCond {
    /// A single sender check.
    Single(GuardKind),
    /// `a && b`: the attacker must defeat **every** conjunct.
    Conj(Vec<GuardKind>),
    /// `a || b`: defeating **any** disjunct suffices.
    Disj(Vec<GuardKind>),
}

impl GuardCond {
    /// The atomic kinds of this condition, in syntax order.
    pub(crate) fn kinds(&self) -> &[GuardKind] {
        match self {
            GuardCond::Single(k) => std::slice::from_ref(k),
            GuardCond::Conj(ks) | GuardCond::Disj(ks) => ks,
        }
    }
}

/// A branch region for the detector suite v2: a `JumpI`'s peeled
/// condition variable plus the blocks its edge-dominant successor
/// dominates. Unlike [`Guard`], the condition is *not* required to
/// scrutinize the caller — `tx.origin` and `block.timestamp` guards are
/// exactly the ones the sanitizing-guard machinery rejects.
#[derive(Clone, Debug)]
pub(crate) struct CondRegion {
    /// The `JumpI` statement.
    pub stmt: StmtId,
    /// Base condition variable (after peeling `ISZERO` chains).
    pub cond: Var,
    /// Blocks dominated by the edge-dominant successor, sorted.
    pub region: Vec<BlockId>,
}

/// A sanitizing guard: condition + the blocks it protects.
#[derive(Clone, Debug)]
pub(crate) struct Guard {
    /// Base condition variable (after peeling `ISZERO` chains).
    pub cond: Var,
    pub cond_kind: GuardCond,
    /// Bytecode offset of the guarding `JUMPI`.
    pub pc: usize,
    /// Blocks dominated by the guard's chosen successor.
    pub region: Vec<BlockId>,
}

/// Storage address classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum SAddr {
    Const(U256),
    /// `Hash2*`-derived mapping element: base slot + key variables
    /// (outermost first).
    Mapping { base: U256, keys: Vec<Var> },
    Unknown,
}

/// [`SAddr`] with the 256-bit slot constants interned into dense atoms
/// (see [`datalog::Interner`]). Precomputed per `SLoad`/`SStore`
/// statement during index build, so the fixpoint inner loops test slot
/// membership against [`BitSet`]s instead of hashing 32-byte keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum KeyClass {
    /// Constant slot, by atom.
    Const(u32),
    /// Mapping element: interned base-slot atom + key variables.
    Mapping {
        /// Atom of the mapping's base slot.
        base: u32,
        /// Key variables, outermost first.
        keys: Vec<Var>,
    },
    Unknown,
}

/// Static (taint-independent) analysis context shared by both engines:
/// def/use sites, constants, the Figure 4 `DS`/`DSA` relations, and the
/// memoized storage-address classifier.
pub(crate) struct Ctx<'a> {
    pub p: &'a Program,
    /// Def→use-site index (params have one def per predecessor copy).
    pub du: DefUse,
    /// var → constant value, when uniquely determined.
    pub consts: Vec<Option<U256>>,
    /// Figure 4 relations over TAC vars.
    pub ds: Vec<bool>,
    pub dsa: Vec<bool>,
    /// var → storage-address classification (for SLoad/SStore keys).
    pub saddr_cache: HashMap<Var, SAddr>,
}

/// Per-opcode statement buckets for the detector sweeps, built once per
/// program so neither the main evaluation nor the frozen composite
/// re-run ever walks `iter_stmts()` again. Bucket order is statement
/// order; the findings they feed are sorted by `(vuln, stmt)` before
/// reporting, so bucket iteration order can never change output.
#[derive(Default)]
pub(crate) struct SinkIndex {
    /// `SELFDESTRUCT` statements.
    pub selfdestructs: Vec<StmtId>,
    /// `DELEGATECALL` statements.
    pub delegatecalls: Vec<StmtId>,
    /// `STATICCALL` statements.
    pub staticcalls: Vec<StmtId>,
    /// `SSTORE` statements (the tainted-owner sink scan universe).
    pub sstores: Vec<StmtId>,
    /// Any `CALL`/`CALLCODE` exists — gates the effect-summary
    /// detectors (most contracts have none).
    pub has_ext_call: bool,
    /// Selectors of functions owning a `RETURNDATASIZE` statement
    /// (sorted, deduped) — the §3.5 compiler-inserted check that clears
    /// an unchecked-staticcall finding.
    pub rds_selectors: Vec<u32>,
    /// Blocks holding a `RETURNDATASIZE` statement (sorted, deduped) —
    /// the block-equality fallback when function ownership is
    /// unavailable for the *call* site.
    pub rds_blocks: Vec<BlockId>,
    /// Blocks of `RETURNDATASIZE` statements whose own function
    /// ownership is unavailable — the fallback when ownership is known
    /// for the call but not for the check.
    pub rds_unowned_blocks: Vec<BlockId>,
}

/// Everything the engines need, built once per program during the
/// index-build phase: the static context, the discovered guards, CFG
/// facts, and the constant-offset memory def-use edges.
pub(crate) struct Prepared<'a> {
    pub ctx: Ctx<'a>,
    pub guards: Vec<Guard>,
    /// Per guard, aligned with `cond_kind.kinds()`: the interned slot
    /// atom of `SenderEqSlot`/`Membership` kinds (`None` for kinds with
    /// no slot). Lets the defeat predicate test bitsets directly.
    pub guard_atoms: Vec<Vec<Option<u32>>>,
    pub dom: Dominators,
    /// Per block: false when only reachable through interval-proven
    /// dead `JumpI` edges (range-guard pruning), true otherwise.
    pub live_block: Vec<bool>,
    pub n_dead_edges: usize,
    /// Const memory offset → (MSTORE stmt, stored value var).
    pub mem_stores: HashMap<U256, Vec<(StmtId, Var)>>,
    /// Universe of storage slot constants (slots + mapping bases) seen
    /// by key classification or guard kinds, interned to dense atoms.
    pub slots: Interner<U256>,
    /// Per statement: atom-resolved key classification (`Some` exactly
    /// for `SLoad`/`SStore`), shared by both engines so neither pays
    /// the memoizing classifier during the fixpoint.
    pub key_class: Vec<Option<KeyClass>>,
    /// Slots compared against `msg.sender` in some guard (§4.5 inferred
    /// sinks), hoisted out of the sink scan so the frozen composite
    /// re-run never recomputes them.
    pub guard_slots: HashSet<U256>,
    /// Per-opcode statement buckets for the detector sweeps.
    pub sinks: SinkIndex,
}

impl<'a> Prepared<'a> {
    /// Assembles the prepared program: interns the slot universe,
    /// resolves per-statement key classifications, and precomputes the
    /// per-guard atom table.
    pub fn build(
        mut ctx: Ctx<'a>,
        guards: Vec<Guard>,
        dom: Dominators,
        live_block: Vec<bool>,
        n_dead_edges: usize,
        mem_stores: HashMap<U256, Vec<(StmtId, Var)>>,
    ) -> Prepared<'a> {
        telemetry::metrics::counter("ethainter_prepared_builds_total").inc();
        let mut slots = Interner::new();
        let mut sinks = SinkIndex::default();
        let mut key_class: Vec<Option<KeyClass>> = vec![None; ctx.p.stmts.len()];
        for (id, kc) in key_class.iter_mut().enumerate() {
            let sid = StmtId(id as u32);
            let s = ctx.p.stmt(sid);
            match &s.op {
                Op::SelfDestruct => sinks.selfdestructs.push(sid),
                Op::Call { kind: Opcode::DelegateCall } => {
                    sinks.delegatecalls.push(sid)
                }
                Op::Call { kind: Opcode::StaticCall } => sinks.staticcalls.push(sid),
                Op::Call { kind: Opcode::Call | Opcode::CallCode } => {
                    sinks.has_ext_call = true
                }
                Op::Env(Opcode::ReturnDataSize) => {
                    match ctx.p.block_functions.get(s.block.0 as usize) {
                        Some(owners) => sinks.rds_selectors.extend(owners),
                        None => sinks.rds_unowned_blocks.push(s.block),
                    }
                    sinks.rds_blocks.push(s.block);
                }
                _ => {}
            }
            if !matches!(s.op, Op::SLoad | Op::SStore) {
                continue;
            }
            if s.op == Op::SStore {
                sinks.sstores.push(sid);
            }
            let key = s.uses[0];
            *kc = Some(match ctx.classify_addr(key) {
                SAddr::Const(v) => KeyClass::Const(slots.intern(v)),
                SAddr::Mapping { base, keys } => {
                    KeyClass::Mapping { base: slots.intern(base), keys }
                }
                SAddr::Unknown => KeyClass::Unknown,
            });
        }
        sinks.rds_selectors.sort_unstable();
        sinks.rds_selectors.dedup();
        sinks.rds_blocks.sort_unstable();
        sinks.rds_blocks.dedup();
        sinks.rds_unowned_blocks.sort_unstable();
        sinks.rds_unowned_blocks.dedup();
        let guard_slots: HashSet<U256> = guards
            .iter()
            .flat_map(|g| {
                g.cond_kind.kinds().iter().filter_map(|k| match k {
                    GuardKind::SenderEqSlot(v) => Some(*v),
                    _ => None,
                })
            })
            .collect();
        let guard_atoms = guards
            .iter()
            .map(|g| {
                g.cond_kind
                    .kinds()
                    .iter()
                    .map(|k| match k {
                        GuardKind::SenderEqSlot(v) => Some(slots.intern(*v)),
                        GuardKind::Membership(base) => Some(slots.intern(*base)),
                        GuardKind::SenderEqOther | GuardKind::SenderOpaque => None,
                    })
                    .collect()
            })
            .collect();
        Prepared {
            ctx,
            guards,
            guard_atoms,
            dom,
            live_block,
            n_dead_edges,
            mem_stores,
            slots,
            key_class,
            guard_slots,
            sinks,
        }
    }
}

/// The mutable fixpoint state both engines drive to the (unique) least
/// fixpoint. Every field is monotone: booleans only flip `false → true`,
/// sets only grow.
pub(crate) struct State {
    /// `TaintedFlow` — input taint per variable.
    pub input_tainted: Vec<bool>,
    /// `AttackerModelInfoflow` — storage taint per variable.
    pub storage_tainted: Vec<bool>,
    /// `OriginFlow` — `ORIGIN`-derived taint per variable (detector
    /// suite v2). Propagates unconditionally, like storage taint: the
    /// phishable origin value exists on every path.
    pub origin_tainted: Vec<bool>,
    /// `TimeFlow` — `TIMESTAMP`-derived taint per variable (detector
    /// suite v2). Unconditional, like `origin_tainted`.
    pub time_tainted: Vec<bool>,
    /// Constant storage slots holding tainted data (atoms into
    /// [`Prepared::slots`]).
    pub tainted_slots: BitSet,
    /// Mapping base slots holding tainted data (atoms).
    pub tainted_mappings: BitSet,
    /// Mapping base slots the attacker can enroll into (atoms).
    pub writable_mappings: BitSet,
    /// `StorageWrite-2` fired: every known slot is tainted.
    pub all_slots_tainted: bool,
    /// A tainted store to an unresolved address exists (conservative
    /// storage model).
    pub unknown_store_tainted: bool,
    /// Per guard: defeated by the fixpoint.
    pub defeated: Vec<bool>,
    /// Any guard was defeated (composite machinery engaged).
    pub any_defeat: bool,
    /// `ReachableByAttacker`, per block.
    pub rba: Vec<bool>,
    /// Convergence effort: outer passes (dense) or 1 + defeat waves
    /// (sparse). An engine-dependent *statistic*, unlike the relations
    /// above, which are engine-independent.
    pub rounds: usize,
    /// The cooperative deadline fired mid-fixpoint; relations are a
    /// valid under-approximation, not the fixpoint.
    pub timed_out: bool,
}

impl State {
    /// Fresh pre-fixpoint state: nothing tainted, no guard defeated,
    /// `rba` as implied by the undefeated guards and CFG reachability.
    pub fn new(prep: &Prepared<'_>) -> State {
        let n_vars = prep.ctx.p.n_vars as usize;
        let n_blocks = prep.ctx.p.blocks.len();
        let mut st = State {
            input_tainted: vec![false; n_vars],
            storage_tainted: vec![false; n_vars],
            origin_tainted: vec![false; n_vars],
            time_tainted: vec![false; n_vars],
            tainted_slots: BitSet::with_capacity(prep.slots.len()),
            tainted_mappings: BitSet::with_capacity(prep.slots.len()),
            writable_mappings: BitSet::with_capacity(prep.slots.len()),
            all_slots_tainted: false,
            unknown_store_tainted: false,
            defeated: vec![false; prep.guards.len()],
            any_defeat: false,
            rba: vec![true; n_blocks],
            rounds: 0,
            timed_out: false,
        };
        recompute_rba(prep, &st.defeated, &mut st.rba);
        st
    }
}

/// Rebuilds `ReachableByAttacker` from scratch: a block is reachable by
/// the attacker unless an *undefeated* guard's region covers it, and
/// never when the CFG (or interval analysis) proves it unreachable.
pub(crate) fn recompute_rba(prep: &Prepared<'_>, defeated: &[bool], rba: &mut [bool]) {
    for b in rba.iter_mut() {
        *b = true;
    }
    for (g, guard) in prep.guards.iter().enumerate() {
        if !defeated[g] {
            for &blk in &guard.region {
                rba[blk.0 as usize] = false;
            }
        }
    }
    // Unreachable blocks are not attacker-reachable either — whether
    // structurally (no CFG path) or because every path crosses a
    // branch the interval analysis decided statically.
    for (i, b) in rba.iter_mut().enumerate() {
        if !prep.dom.is_reachable(BlockId(i as u32)) || !prep.live_block[i] {
            *b = false;
        }
    }
}

/// The guard-defeat predicate of Figure 5, shared verbatim by both
/// engines:
///
/// ```text
/// ReachableByAttacker(s) :- StaticallyGuardedStatement(s, guard),
///                           TaintedFlow(_, guard).
/// ```
///
/// plus the structural defeats (owner slot tainted, membership mapping
/// attacker-writable), composed per the guard's `&&`/`||` shape.
///
/// `atoms` is the guard's row of [`Prepared::guard_atoms`], aligned with
/// `cond_kind.kinds()` — the slot membership tests run against the
/// interned-atom bitsets, never the 256-bit constants.
pub(crate) fn guard_defeated(
    guard: &Guard,
    atoms: &[Option<u32>],
    st: &State,
    cfg: &Config,
) -> bool {
    let ci = guard.cond.0 as usize;
    let cond_tainted = st.input_tainted[ci] || st.storage_tainted[ci];
    let kind_defeated = |(i, k): (usize, &GuardKind)| match k {
        GuardKind::SenderEqSlot(_) => {
            cfg.storage_taint
                && (st.all_slots_tainted
                    || atoms[i].is_some_and(|a| st.tainted_slots.contains(a)))
        }
        GuardKind::Membership(_) => {
            cfg.storage_taint && atoms[i].is_some_and(|a| st.writable_mappings.contains(a))
        }
        GuardKind::SenderEqOther | GuardKind::SenderOpaque => false,
    };
    let mut kinds = guard.cond_kind.kinds().iter().enumerate();
    let structural = match &guard.cond_kind {
        GuardCond::Single(_) | GuardCond::Conj(_) => kinds.all(kind_defeated),
        GuardCond::Disj(_) => kinds.any(kind_defeated),
    };
    cond_tainted || structural
}

impl Ctx<'_> {
    /// Constant propagation (`ConstValue`, C(x) = v): through `Const`
    /// definitions and `Copy` chains where all definitions agree.
    ///
    /// Worklist form: a variable is (re)examined only when first seeded
    /// or when a variable it copies from resolves. The resolution
    /// predicate is monotone (sources never change once `Some`), so this
    /// reaches the same least fixpoint as the naive rescan it replaced —
    /// in O(copy edges) instead of O(rounds × vars).
    pub fn compute_consts(&mut self) {
        let n = self.consts.len();
        let mut queue: VecDeque<u32> = (0..n as u32).collect();
        let mut queued = vec![true; n];
        while let Some(v) = queue.pop_front() {
            let vi = v as usize;
            queued[vi] = false;
            if self.consts[vi].is_some() {
                continue;
            }
            let defs = self.du.defs(Var(v));
            if defs.is_empty() {
                continue;
            }
            let mut val: Option<U256> = None;
            let mut ok = true;
            for &d in defs {
                let s = self.p.stmt(d);
                let this = match &s.op {
                    Op::Const(c) => Some(*c),
                    Op::Copy => self.consts[s.uses[0].0 as usize],
                    _ => None,
                };
                match (this, val) {
                    (Some(a), None) => val = Some(a),
                    (Some(a), Some(b)) if a == b => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let Some(c) = val else { continue };
            self.consts[vi] = Some(c);
            // Copies *of* v may now resolve — requeue their defined vars.
            for &u in self.du.uses(Var(v)) {
                let s = self.p.stmt(u);
                if s.op != Op::Copy {
                    continue;
                }
                let Some(d) = s.def else { continue };
                let di = d.0 as usize;
                if self.consts[di].is_none() && !queued[di] {
                    queued[di] = true;
                    queue.push_back(d.0);
                }
            }
        }
    }

    /// Figure 4 over TAC: `DS` (caller-identity data) and `DSA`
    /// (addresses of caller-keyed structure elements).
    ///
    /// Worklist form: every statement is examined once, then only
    /// re-examined when `ds`/`dsa` flips on one of its operands (the
    /// def's use-sites are requeued on a flip). Both relations are
    /// monotone, so this is the same least fixpoint as the naive
    /// all-statements rescan — without the O(rounds × stmts) cost that
    /// dominated index build on context-cloned megacontracts.
    pub fn compute_ds(&mut self) {
        let n_stmts = self.p.stmts.len();
        let mut queue: VecDeque<u32> = (0..n_stmts as u32).collect();
        let mut queued = vec![true; n_stmts];
        while let Some(id) = queue.pop_front() {
            queued[id as usize] = false;
            let s = self.p.stmt(StmtId(id));
            let Some(d) = s.def else { continue };
            let di = d.0 as usize;
            let mut flip_ds = false;
            let mut flip_dsa = false;
            match &s.op {
                // DS-SenderKey
                Op::Env(Opcode::Caller) if !self.ds[di] => flip_ds = true,
                // DS-Lookup / DSA-Lookup: the mapping hash of a
                // sender-derived key (or of a structure address) is a
                // structure address.
                Op::Hash2 => {
                    let k = s.uses[0].0 as usize;
                    let b = s.uses[1].0 as usize;
                    if (self.ds[k] || self.dsa[k] || self.dsa[b]) && !self.dsa[di] {
                        flip_dsa = true;
                    }
                }
                // DS-AddrOp: arithmetic on structure addresses.
                Op::Bin(_)
                    if s.uses.iter().any(|u| self.dsa[u.0 as usize])
                        && !self.dsa[di] =>
                {
                    flip_dsa = true;
                }
                // DSA-Load: dereferencing a structure address yields
                // caller-pertinent data.
                Op::SLoad if self.dsa[s.uses[0].0 as usize] && !self.ds[di] => {
                    flip_ds = true;
                }
                Op::Copy => {
                    let u = s.uses[0].0 as usize;
                    if self.ds[u] && !self.ds[di] {
                        flip_ds = true;
                    }
                    if self.dsa[u] && !self.dsa[di] {
                        flip_dsa = true;
                    }
                }
                _ => {}
            }
            if !flip_ds && !flip_dsa {
                continue;
            }
            if flip_ds {
                self.ds[di] = true;
            }
            if flip_dsa {
                self.dsa[di] = true;
            }
            for &u in self.du.uses(d) {
                let ui = u.0 as usize;
                if !queued[ui] {
                    queued[ui] = true;
                    queue.push_back(u.0);
                }
            }
        }
    }

    /// Storage-address classification for a key variable.
    pub fn classify_addr(&mut self, v: Var) -> SAddr {
        if let Some(cached) = self.saddr_cache.get(&v) {
            return cached.clone();
        }
        let result = self.classify_addr_inner(v, 0);
        self.saddr_cache.insert(v, result.clone());
        result
    }

    fn classify_addr_inner(&mut self, v: Var, depth: usize) -> SAddr {
        if depth > 16 {
            return SAddr::Unknown;
        }
        if let Some(c) = self.consts[v.0 as usize] {
            return SAddr::Const(c);
        }
        let defs: Vec<StmtId> = self.du.defs(v).to_vec();
        let mut result: Option<SAddr> = None;
        for d in defs {
            let s = self.p.stmt(d);
            let this = match &s.op {
                Op::Hash2 => {
                    let key = s.uses[0];
                    match self.classify_addr_inner(s.uses[1], depth + 1) {
                        SAddr::Const(base) => SAddr::Mapping { base, keys: vec![key] },
                        SAddr::Mapping { base, mut keys } => {
                            keys.push(key);
                            SAddr::Mapping { base, keys }
                        }
                        SAddr::Unknown => SAddr::Unknown,
                    }
                }
                Op::Copy => self.classify_addr_inner(s.uses[0], depth + 1),
                _ => SAddr::Unknown,
            };
            match (&result, this) {
                (None, t) => result = Some(t),
                (Some(a), t) if *a == t => {}
                _ => return SAddr::Unknown,
            }
        }
        result.unwrap_or(SAddr::Unknown)
    }

    /// Finds sanitizing guards: `JUMPI`s whose condition scrutinizes the
    /// caller, guarding the region dominated by their chosen successor.
    ///
    /// Regions are collected by DFS over the dominator-tree children
    /// index ([`Dominators::children`]) — O(region size) per guard —
    /// instead of testing `dom.dominates(succ, b)` for every block,
    /// which walked an idom chain per (guard, block) pair.
    pub fn find_guards(&mut self, dom: &Dominators) -> Vec<Guard> {
        let children = dom.children();
        let mut out = Vec::new();
        for s in self.p.iter_stmts() {
            if s.op != Op::JumpI {
                continue;
            }
            let block = self.p.block(s.block);
            // Peel ISZERO chains off the condition, tracking polarity.
            let (base, polarity) = self.peel_iszero(s.uses[0]);
            for (i, &succ) in block.succs.iter().enumerate() {
                // succs = [taken, fallthrough] when the target resolved;
                // the taken edge asserts cond != 0, fallthrough cond == 0.
                let edge_polarity = if block.succs.len() == 2 {
                    i == 0
                } else {
                    // Single successor: no information.
                    continue;
                };
                if edge_polarity != polarity {
                    continue;
                }
                // The region is sound only when the successor's sole
                // predecessor is this block (edge dominance).
                let succ_block = self.p.block(succ);
                if !(succ_block.preds.len() == 1 && succ_block.preds[0] == s.block) {
                    continue;
                }
                let Some(cond_kind) = self.guard_cond(base, 0) else { continue };
                // The dominated region is exactly the dominator-tree
                // subtree rooted at `succ` (when `succ` is reachable).
                let mut region: Vec<BlockId> = Vec::new();
                if dom.is_reachable(succ) {
                    let mut stack = vec![succ];
                    while let Some(b) = stack.pop() {
                        region.push(b);
                        stack.extend(&children[b.0 as usize]);
                    }
                    region.sort_unstable();
                }
                if !region.is_empty() {
                    out.push(Guard { cond: base, cond_kind, pc: s.pc, region });
                }
            }
        }
        out
    }

    /// Enumerates *all* branch regions, one per edge-dominant `JumpI`
    /// successor, regardless of what the condition scrutinizes — the
    /// detector suite v2 consumes these with its own taint predicates
    /// (`origin_tainted`/`time_tainted` on the peeled condition).
    /// Deterministic: statement order, then successor order.
    pub fn cond_regions(&self, dom: &Dominators) -> Vec<CondRegion> {
        let children = dom.children();
        let mut out = Vec::new();
        for s in self.p.iter_stmts() {
            if s.op != Op::JumpI {
                continue;
            }
            let block = self.p.block(s.block);
            let (base, _) = self.peel_iszero(s.uses[0]);
            if block.succs.len() != 2 {
                continue;
            }
            for &succ in &block.succs {
                let succ_block = self.p.block(succ);
                if !(succ_block.preds.len() == 1 && succ_block.preds[0] == s.block) {
                    continue;
                }
                if !dom.is_reachable(succ) {
                    continue;
                }
                let mut region: Vec<BlockId> = Vec::new();
                let mut stack = vec![succ];
                while let Some(b) = stack.pop() {
                    region.push(b);
                    stack.extend(&children[b.0 as usize]);
                }
                region.sort_unstable();
                if !region.is_empty() {
                    out.push(CondRegion { stmt: s.id, cond: base, region });
                }
            }
        }
        out
    }

    /// Follows `ISZERO` chains: returns the base variable and the
    /// polarity under which "cond true" asserts the base is true.
    fn peel_iszero(&self, v: Var) -> (Var, bool) {
        let mut cur = v;
        let mut polarity = true;
        for _ in 0..16 {
            let defs = self.du.defs(cur);
            if defs.len() != 1 {
                break;
            }
            let s = self.p.stmt(defs[0]);
            match &s.op {
                Op::Un(Opcode::IsZero) => {
                    polarity = !polarity;
                    cur = s.uses[0];
                }
                Op::Copy => cur = s.uses[0],
                _ => break,
            }
        }
        (cur, polarity)
    }

    /// Classifies a (possibly compound) guard condition. `&&`/`||`
    /// compile to bitwise AND/OR over normalized booleans; recurse into
    /// them so each conjunct/disjunct is scrutinized separately.
    fn guard_cond(&mut self, base: Var, depth: usize) -> Option<GuardCond> {
        if depth > 8 {
            return None;
        }
        let defs: Vec<StmtId> = self.du.defs(base).to_vec();
        if defs.len() == 1 {
            let s = self.p.stmt(defs[0]);
            if let Op::Bin(op @ (Opcode::And | Opcode::Or)) = s.op {
                let (a, _) = self.peel_iszero(s.uses[0]);
                let (b, _) = self.peel_iszero(s.uses[1]);
                let ka = self.guard_cond(a, depth + 1);
                let kb = self.guard_cond(b, depth + 1);
                let flatten = |c: GuardCond| -> Vec<GuardKind> {
                    match c {
                        GuardCond::Single(k) => vec![k],
                        GuardCond::Conj(ks) | GuardCond::Disj(ks) => ks,
                    }
                };
                return match (op, ka, kb) {
                    // a && b: any sanitizing conjunct keeps the guard; all
                    // sanitizing conjuncts must fall for defeat.
                    (Opcode::And, Some(x), Some(y)) => {
                        let mut ks = flatten(x);
                        ks.extend(flatten(y));
                        Some(GuardCond::Conj(ks))
                    }
                    (Opcode::And, Some(x), None) | (Opcode::And, None, Some(x)) => Some(x),
                    // a || b: a non-sender disjunct lets the attacker
                    // through outright (Uguard-NDS on that side).
                    (Opcode::Or, Some(x), Some(y)) => {
                        let mut ks = flatten(x);
                        ks.extend(flatten(y));
                        Some(GuardCond::Disj(ks))
                    }
                    _ => None,
                };
            }
        }
        self.guard_kind(base).map(GuardCond::Single)
    }

    /// Does an atomic condition scrutinize the caller, and how?
    fn guard_kind(&mut self, base: Var) -> Option<GuardKind> {
        // Membership: the condition is itself caller-pertinent data
        // (require(m[msg.sender])).
        if self.ds[base.0 as usize] {
            // Identify the mapping base if the shape is recognizable.
            let defs: Vec<StmtId> = self.du.defs(base).to_vec();
            for d in defs {
                let s = self.p.stmt(d);
                if s.op == Op::SLoad {
                    if let SAddr::Mapping { base: b, .. } = self.classify_addr(s.uses[0]) {
                        return Some(GuardKind::Membership(b));
                    }
                }
            }
            return Some(GuardKind::SenderOpaque);
        }
        // Comparison: Eq with a caller-derived side (Uguard-NDS excludes
        // conditions with no DS side).
        let defs: Vec<StmtId> = self.du.defs(base).to_vec();
        if defs.len() != 1 {
            return None;
        }
        let s = self.p.stmt(defs[0]);
        let Op::Bin(Opcode::Eq) = s.op else { return None };
        let (a, b) = (s.uses[0], s.uses[1]);
        let a_ds = self.ds[a.0 as usize];
        let b_ds = self.ds[b.0 as usize];
        if !a_ds && !b_ds {
            return None; // Uguard-NDS: not a sanitizing guard.
        }
        let other = if a_ds { b } else { a };
        // msg.sender == SLOAD(const slot): the owner pattern; the slot is
        // an inferred sink.
        let other_defs: Vec<StmtId> = self.du.defs(other).to_vec();
        if other_defs.len() == 1 {
            let od = self.p.stmt(other_defs[0]);
            if od.op == Op::SLoad {
                if let SAddr::Const(v) = self.classify_addr(od.uses[0]) {
                    return Some(GuardKind::SenderEqSlot(v));
                }
            }
        }
        Some(GuardKind::SenderEqOther)
    }
}
