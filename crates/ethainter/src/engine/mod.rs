//! Fixpoint engines for the Figure 5 mutual recursion.
//!
//! The rule system (taint propagation, storage writes, guard defeat) is
//! **monotone**: every relation only ever grows — input/storage taint
//! per variable, tainted slots and mappings, writable mappings, the
//! defeated-guard set, and `ReachableByAttacker` (which is an
//! anti-monotone function of the *undefeated* guards, hence monotone in
//! the defeated set). A monotone system has a unique least fixpoint, so
//! *any* fair evaluation strategy computes the same relations. This
//! module offers two:
//!
//! - [`dense`] — naive evaluation, re-scanning every statement per
//!   round. Simple enough to read as the executable specification.
//! - [`sparse`] — worklist evaluation over the one-time [`indexes`]:
//!   only statements whose inputs changed are re-evaluated. The
//!   production default ([`Engine::Sparse`](crate::config::Engine)).
//!
//! Everything semantic is shared here — guard discovery, storage-address
//! classification, the `DS`/`DSA` relations, the defeat predicate, and
//! the [`State`] both engines fill — so the engines differ only in
//! *scheduling*, never in rules. The differential suites in
//! `crates/bench/tests/engine_differential.rs` hold them to that.

pub(crate) mod dense;
pub(crate) mod indexes;
pub(crate) mod provenance;
pub(crate) mod sparse;

use crate::config::Config;
use decompiler::{BlockId, DefUse, Dominators, Op, Program, StmtId, Var};
use evm::opcode::Opcode;
use evm::U256;
use std::collections::{HashMap, HashSet};

/// How a guard scrutinizes the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum GuardKind {
    /// `msg.sender == SLOAD(slot)` — an owner comparison; `slot` is also
    /// an *inferred sink* (§4.5).
    SenderEqSlot(U256),
    /// `msg.sender` compared against something non-constant (still
    /// sanitizing; defeated only by tainting the compared value).
    SenderEqOther,
    /// A sender-keyed data-structure membership test over the mapping
    /// with the given base slot (`require(m[msg.sender])`).
    Membership(U256),
    /// Sender-derived condition with no recognized shape (kept
    /// sanitizing, defeated only via condition taint).
    SenderOpaque,
}

/// How atomic guard kinds compose in a compound condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum GuardCond {
    /// A single sender check.
    Single(GuardKind),
    /// `a && b`: the attacker must defeat **every** conjunct.
    Conj(Vec<GuardKind>),
    /// `a || b`: defeating **any** disjunct suffices.
    Disj(Vec<GuardKind>),
}

impl GuardCond {
    /// The atomic kinds of this condition, in syntax order.
    pub(crate) fn kinds(&self) -> &[GuardKind] {
        match self {
            GuardCond::Single(k) => std::slice::from_ref(k),
            GuardCond::Conj(ks) | GuardCond::Disj(ks) => ks,
        }
    }
}

/// A sanitizing guard: condition + the blocks it protects.
#[derive(Clone, Debug)]
pub(crate) struct Guard {
    /// Base condition variable (after peeling `ISZERO` chains).
    pub cond: Var,
    pub cond_kind: GuardCond,
    /// Bytecode offset of the guarding `JUMPI`.
    pub pc: usize,
    /// Blocks dominated by the guard's chosen successor.
    pub region: Vec<BlockId>,
}

/// Storage address classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum SAddr {
    Const(U256),
    /// `Hash2*`-derived mapping element: base slot + key variables
    /// (outermost first).
    Mapping { base: U256, keys: Vec<Var> },
    Unknown,
}

/// Static (taint-independent) analysis context shared by both engines:
/// def/use sites, constants, the Figure 4 `DS`/`DSA` relations, and the
/// memoized storage-address classifier.
pub(crate) struct Ctx<'a> {
    pub p: &'a Program,
    /// Def→use-site index (params have one def per predecessor copy).
    pub du: DefUse,
    /// var → constant value, when uniquely determined.
    pub consts: Vec<Option<U256>>,
    /// Figure 4 relations over TAC vars.
    pub ds: Vec<bool>,
    pub dsa: Vec<bool>,
    /// var → storage-address classification (for SLoad/SStore keys).
    pub saddr_cache: HashMap<Var, SAddr>,
}

/// Everything the engines need, built once per program during the
/// index-build phase: the static context, the discovered guards, CFG
/// facts, and the constant-offset memory def-use edges.
pub(crate) struct Prepared<'a> {
    pub ctx: Ctx<'a>,
    pub guards: Vec<Guard>,
    pub dom: Dominators,
    /// Per block: false when only reachable through interval-proven
    /// dead `JumpI` edges (range-guard pruning), true otherwise.
    pub live_block: Vec<bool>,
    pub n_dead_edges: usize,
    /// Const memory offset → (MSTORE stmt, stored value var).
    pub mem_stores: HashMap<U256, Vec<(StmtId, Var)>>,
}

/// The mutable fixpoint state both engines drive to the (unique) least
/// fixpoint. Every field is monotone: booleans only flip `false → true`,
/// sets only grow.
pub(crate) struct State {
    /// `TaintedFlow` — input taint per variable.
    pub input_tainted: Vec<bool>,
    /// `AttackerModelInfoflow` — storage taint per variable.
    pub storage_tainted: Vec<bool>,
    /// Constant storage slots holding tainted data.
    pub tainted_slots: HashSet<U256>,
    /// Mapping base slots holding tainted data.
    pub tainted_mappings: HashSet<U256>,
    /// Mapping base slots the attacker can enroll into.
    pub writable_mappings: HashSet<U256>,
    /// `StorageWrite-2` fired: every known slot is tainted.
    pub all_slots_tainted: bool,
    /// A tainted store to an unresolved address exists (conservative
    /// storage model).
    pub unknown_store_tainted: bool,
    /// Per guard: defeated by the fixpoint.
    pub defeated: Vec<bool>,
    /// Any guard was defeated (composite machinery engaged).
    pub any_defeat: bool,
    /// `ReachableByAttacker`, per block.
    pub rba: Vec<bool>,
    /// Convergence effort: outer passes (dense) or 1 + defeat waves
    /// (sparse). An engine-dependent *statistic*, unlike the relations
    /// above, which are engine-independent.
    pub rounds: usize,
    /// The cooperative deadline fired mid-fixpoint; relations are a
    /// valid under-approximation, not the fixpoint.
    pub timed_out: bool,
}

impl State {
    /// Fresh pre-fixpoint state: nothing tainted, no guard defeated,
    /// `rba` as implied by the undefeated guards and CFG reachability.
    pub fn new(prep: &Prepared<'_>) -> State {
        let n_vars = prep.ctx.p.n_vars as usize;
        let n_blocks = prep.ctx.p.blocks.len();
        let mut st = State {
            input_tainted: vec![false; n_vars],
            storage_tainted: vec![false; n_vars],
            tainted_slots: HashSet::new(),
            tainted_mappings: HashSet::new(),
            writable_mappings: HashSet::new(),
            all_slots_tainted: false,
            unknown_store_tainted: false,
            defeated: vec![false; prep.guards.len()],
            any_defeat: false,
            rba: vec![true; n_blocks],
            rounds: 0,
            timed_out: false,
        };
        recompute_rba(prep, &st.defeated, &mut st.rba);
        st
    }
}

/// Rebuilds `ReachableByAttacker` from scratch: a block is reachable by
/// the attacker unless an *undefeated* guard's region covers it, and
/// never when the CFG (or interval analysis) proves it unreachable.
pub(crate) fn recompute_rba(prep: &Prepared<'_>, defeated: &[bool], rba: &mut [bool]) {
    for b in rba.iter_mut() {
        *b = true;
    }
    for (g, guard) in prep.guards.iter().enumerate() {
        if !defeated[g] {
            for &blk in &guard.region {
                rba[blk.0 as usize] = false;
            }
        }
    }
    // Unreachable blocks are not attacker-reachable either — whether
    // structurally (no CFG path) or because every path crosses a
    // branch the interval analysis decided statically.
    for (i, b) in rba.iter_mut().enumerate() {
        if !prep.dom.is_reachable(BlockId(i as u32)) || !prep.live_block[i] {
            *b = false;
        }
    }
}

/// The guard-defeat predicate of Figure 5, shared verbatim by both
/// engines:
///
/// ```text
/// ReachableByAttacker(s) :- StaticallyGuardedStatement(s, guard),
///                           TaintedFlow(_, guard).
/// ```
///
/// plus the structural defeats (owner slot tainted, membership mapping
/// attacker-writable), composed per the guard's `&&`/`||` shape.
pub(crate) fn guard_defeated(guard: &Guard, st: &State, cfg: &Config) -> bool {
    let ci = guard.cond.0 as usize;
    let cond_tainted = st.input_tainted[ci] || st.storage_tainted[ci];
    let kind_defeated = |k: &GuardKind| match k {
        GuardKind::SenderEqSlot(v) => {
            cfg.storage_taint && (st.tainted_slots.contains(v) || st.all_slots_tainted)
        }
        GuardKind::Membership(base) => {
            cfg.storage_taint && st.writable_mappings.contains(base)
        }
        GuardKind::SenderEqOther | GuardKind::SenderOpaque => false,
    };
    let structural = match &guard.cond_kind {
        GuardCond::Single(k) => kind_defeated(k),
        GuardCond::Conj(ks) => ks.iter().all(kind_defeated),
        GuardCond::Disj(ks) => ks.iter().any(kind_defeated),
    };
    cond_tainted || structural
}

impl Ctx<'_> {
    /// Constant propagation (`ConstValue`, C(x) = v): through `Const`
    /// definitions and `Copy` chains where all definitions agree.
    pub fn compute_consts(&mut self) {
        loop {
            let mut changed = false;
            for v in 0..self.consts.len() {
                if self.consts[v].is_some() {
                    continue;
                }
                let defs = self.du.defs(Var(v as u32));
                if defs.is_empty() {
                    continue;
                }
                let mut val: Option<U256> = None;
                let mut ok = true;
                for &d in defs {
                    let s = self.p.stmt(d);
                    let this = match &s.op {
                        Op::Const(c) => Some(*c),
                        Op::Copy => self.consts[s.uses[0].0 as usize],
                        _ => None,
                    };
                    match (this, val) {
                        (Some(a), None) => val = Some(a),
                        (Some(a), Some(b)) if a == b => {}
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    if let Some(c) = val {
                        self.consts[v] = Some(c);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Figure 4 over TAC: `DS` (caller-identity data) and `DSA`
    /// (addresses of caller-keyed structure elements).
    pub fn compute_ds(&mut self) {
        loop {
            let mut changed = false;
            for s in self.p.iter_stmts() {
                let Some(d) = s.def else { continue };
                let di = d.0 as usize;
                match &s.op {
                    // DS-SenderKey
                    Op::Env(Opcode::Caller)
                        if !self.ds[di] => {
                            self.ds[di] = true;
                            changed = true;
                        }
                    // DS-Lookup / DSA-Lookup: the mapping hash of a
                    // sender-derived key (or of a structure address) is a
                    // structure address.
                    Op::Hash2 => {
                        let k = s.uses[0].0 as usize;
                        let b = s.uses[1].0 as usize;
                        if (self.ds[k] || self.dsa[k] || self.dsa[b]) && !self.dsa[di] {
                            self.dsa[di] = true;
                            changed = true;
                        }
                    }
                    // DS-AddrOp: arithmetic on structure addresses.
                    Op::Bin(_)
                        if s.uses.iter().any(|u| self.dsa[u.0 as usize]) && !self.dsa[di] => {
                            self.dsa[di] = true;
                            changed = true;
                        }
                    // DSA-Load: dereferencing a structure address yields
                    // caller-pertinent data.
                    Op::SLoad
                        if self.dsa[s.uses[0].0 as usize] && !self.ds[di] => {
                            self.ds[di] = true;
                            changed = true;
                        }
                    Op::Copy => {
                        let u = s.uses[0].0 as usize;
                        if self.ds[u] && !self.ds[di] {
                            self.ds[di] = true;
                            changed = true;
                        }
                        if self.dsa[u] && !self.dsa[di] {
                            self.dsa[di] = true;
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Storage-address classification for a key variable.
    pub fn classify_addr(&mut self, v: Var) -> SAddr {
        if let Some(cached) = self.saddr_cache.get(&v) {
            return cached.clone();
        }
        let result = self.classify_addr_inner(v, 0);
        self.saddr_cache.insert(v, result.clone());
        result
    }

    fn classify_addr_inner(&mut self, v: Var, depth: usize) -> SAddr {
        if depth > 16 {
            return SAddr::Unknown;
        }
        if let Some(c) = self.consts[v.0 as usize] {
            return SAddr::Const(c);
        }
        let defs: Vec<StmtId> = self.du.defs(v).to_vec();
        let mut result: Option<SAddr> = None;
        for d in defs {
            let s = self.p.stmt(d);
            let this = match &s.op {
                Op::Hash2 => {
                    let key = s.uses[0];
                    match self.classify_addr_inner(s.uses[1], depth + 1) {
                        SAddr::Const(base) => SAddr::Mapping { base, keys: vec![key] },
                        SAddr::Mapping { base, mut keys } => {
                            keys.push(key);
                            SAddr::Mapping { base, keys }
                        }
                        SAddr::Unknown => SAddr::Unknown,
                    }
                }
                Op::Copy => self.classify_addr_inner(s.uses[0], depth + 1),
                _ => SAddr::Unknown,
            };
            match (&result, this) {
                (None, t) => result = Some(t),
                (Some(a), t) if *a == t => {}
                _ => return SAddr::Unknown,
            }
        }
        result.unwrap_or(SAddr::Unknown)
    }

    /// Finds sanitizing guards: `JUMPI`s whose condition scrutinizes the
    /// caller, guarding the region dominated by their chosen successor.
    pub fn find_guards(&mut self, dom: &Dominators) -> Vec<Guard> {
        let mut out = Vec::new();
        for s in self.p.iter_stmts() {
            if s.op != Op::JumpI {
                continue;
            }
            let block = self.p.block(s.block);
            // Peel ISZERO chains off the condition, tracking polarity.
            let (base, polarity) = self.peel_iszero(s.uses[0]);
            for (i, &succ) in block.succs.iter().enumerate() {
                // succs = [taken, fallthrough] when the target resolved;
                // the taken edge asserts cond != 0, fallthrough cond == 0.
                let edge_polarity = if block.succs.len() == 2 {
                    i == 0
                } else {
                    // Single successor: no information.
                    continue;
                };
                if edge_polarity != polarity {
                    continue;
                }
                // The region is sound only when the successor's sole
                // predecessor is this block (edge dominance).
                let succ_block = self.p.block(succ);
                if !(succ_block.preds.len() == 1 && succ_block.preds[0] == s.block) {
                    continue;
                }
                let Some(cond_kind) = self.guard_cond(base, 0) else { continue };
                let region: Vec<BlockId> = (0..self.p.blocks.len() as u32)
                    .map(BlockId)
                    .filter(|&b| dom.dominates(succ, b))
                    .collect();
                if !region.is_empty() {
                    out.push(Guard { cond: base, cond_kind, pc: s.pc, region });
                }
            }
        }
        out
    }

    /// Follows `ISZERO` chains: returns the base variable and the
    /// polarity under which "cond true" asserts the base is true.
    fn peel_iszero(&self, v: Var) -> (Var, bool) {
        let mut cur = v;
        let mut polarity = true;
        for _ in 0..16 {
            let defs = self.du.defs(cur);
            if defs.len() != 1 {
                break;
            }
            let s = self.p.stmt(defs[0]);
            match &s.op {
                Op::Un(Opcode::IsZero) => {
                    polarity = !polarity;
                    cur = s.uses[0];
                }
                Op::Copy => cur = s.uses[0],
                _ => break,
            }
        }
        (cur, polarity)
    }

    /// Classifies a (possibly compound) guard condition. `&&`/`||`
    /// compile to bitwise AND/OR over normalized booleans; recurse into
    /// them so each conjunct/disjunct is scrutinized separately.
    fn guard_cond(&mut self, base: Var, depth: usize) -> Option<GuardCond> {
        if depth > 8 {
            return None;
        }
        let defs: Vec<StmtId> = self.du.defs(base).to_vec();
        if defs.len() == 1 {
            let s = self.p.stmt(defs[0]);
            if let Op::Bin(op @ (Opcode::And | Opcode::Or)) = s.op {
                let (a, _) = self.peel_iszero(s.uses[0]);
                let (b, _) = self.peel_iszero(s.uses[1]);
                let ka = self.guard_cond(a, depth + 1);
                let kb = self.guard_cond(b, depth + 1);
                let flatten = |c: GuardCond| -> Vec<GuardKind> {
                    match c {
                        GuardCond::Single(k) => vec![k],
                        GuardCond::Conj(ks) | GuardCond::Disj(ks) => ks,
                    }
                };
                return match (op, ka, kb) {
                    // a && b: any sanitizing conjunct keeps the guard; all
                    // sanitizing conjuncts must fall for defeat.
                    (Opcode::And, Some(x), Some(y)) => {
                        let mut ks = flatten(x);
                        ks.extend(flatten(y));
                        Some(GuardCond::Conj(ks))
                    }
                    (Opcode::And, Some(x), None) | (Opcode::And, None, Some(x)) => Some(x),
                    // a || b: a non-sender disjunct lets the attacker
                    // through outright (Uguard-NDS on that side).
                    (Opcode::Or, Some(x), Some(y)) => {
                        let mut ks = flatten(x);
                        ks.extend(flatten(y));
                        Some(GuardCond::Disj(ks))
                    }
                    _ => None,
                };
            }
        }
        self.guard_kind(base).map(GuardCond::Single)
    }

    /// Does an atomic condition scrutinize the caller, and how?
    fn guard_kind(&mut self, base: Var) -> Option<GuardKind> {
        // Membership: the condition is itself caller-pertinent data
        // (require(m[msg.sender])).
        if self.ds[base.0 as usize] {
            // Identify the mapping base if the shape is recognizable.
            let defs: Vec<StmtId> = self.du.defs(base).to_vec();
            for d in defs {
                let s = self.p.stmt(d);
                if s.op == Op::SLoad {
                    if let SAddr::Mapping { base: b, .. } = self.classify_addr(s.uses[0]) {
                        return Some(GuardKind::Membership(b));
                    }
                }
            }
            return Some(GuardKind::SenderOpaque);
        }
        // Comparison: Eq with a caller-derived side (Uguard-NDS excludes
        // conditions with no DS side).
        let defs: Vec<StmtId> = self.du.defs(base).to_vec();
        if defs.len() != 1 {
            return None;
        }
        let s = self.p.stmt(defs[0]);
        let Op::Bin(Opcode::Eq) = s.op else { return None };
        let (a, b) = (s.uses[0], s.uses[1]);
        let a_ds = self.ds[a.0 as usize];
        let b_ds = self.ds[b.0 as usize];
        if !a_ds && !b_ds {
            return None; // Uguard-NDS: not a sanitizing guard.
        }
        let other = if a_ds { b } else { a };
        // msg.sender == SLOAD(const slot): the owner pattern; the slot is
        // an inferred sink.
        let other_defs: Vec<StmtId> = self.du.defs(other).to_vec();
        if other_defs.len() == 1 {
            let od = self.p.stmt(other_defs[0]);
            if od.op == Op::SLoad {
                if let SAddr::Const(v) = self.classify_addr(od.uses[0]) {
                    return Some(GuardKind::SenderEqSlot(v));
                }
            }
        }
        Some(GuardKind::SenderEqOther)
    }
}
