//! Taint-provenance witnesses: replaying a verdict into a concrete
//! source→sink path through the TAC IR.
//!
//! When [`Config::witness`](crate::Config) is on, the analysis re-runs
//! the **dense** fixpoint with a first-derivation recorder attached
//! (see `engine::provenance`) and, for every finding, backtracks from
//! the sink's seed facts through the derivation DAG to the axioms —
//! CALLDATALOAD sources, `msg.sender`, and unguarded blocks. The result
//! is a [`Witness`]: an ordered list of [`WitnessStep`]s where every
//! step's prerequisites appear before it and the last step is the sink
//! statement itself. `ethainter explain` renders these; the batch
//! driver attaches them to `Status::Analyzed` records (and the store
//! strips them from cache entries and `merged.jsonl`, like timings).
//!
//! Witnesses are **deterministic**: the dense replay visits statements,
//! guards, and blocks in a fixed order, so the same (bytecode, config)
//! pair yields a byte-identical witness regardless of the production
//! engine or cache temperature. The determinism suite in `crates/bench`
//! holds this across engines and runs.

use crate::engine::provenance::{Edge, FactId, Provenance};
use crate::engine::{Prepared, State};
use crate::report::{Finding, Vuln};
use decompiler::{Program, StmtId};
use serde::{Deserialize, Serialize};

/// Hard cap on steps per witness: derivation chains are short in
/// practice (a handful of flows plus a guard defeat or two); the cap
/// only guards against pathological DAGs.
const MAX_STEPS: usize = 64;

/// One derivation step of a witness path. Steps are ordered so that a
/// step's prerequisite facts always appear earlier in the list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessStep {
    /// The rule that derived the fact (`source-calldata`, `flow`,
    /// `storage-write`, `guard-defeat`, …) or `axiom-*` for leaves.
    pub rule: String,
    /// Human-readable fact, e.g. `v7 input-tainted` or
    /// `slot 0x0 tainted`.
    pub fact: String,
    /// TAC statement that fired the rule, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stmt: Option<u32>,
    /// Bytecode offset of that statement.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pc: Option<usize>,
    /// Rendered one-line TAC for that statement.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub code: Option<String>,
}

/// A source→sink explanation for one [`Finding`]. `vuln`/`stmt`/`pc`
/// mirror the finding so witnesses can be matched back to it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// The finding's vulnerability class.
    pub vuln: Vuln,
    /// The finding's sink statement id.
    pub stmt: u32,
    /// The finding's sink bytecode offset.
    pub pc: usize,
    /// Derivation steps, sources first, sink last.
    pub steps: Vec<WitnessStep>,
}

/// Renders a fact for humans.
fn fact_text(fact: FactId, prep: &Prepared<'_>) -> String {
    match fact {
        FactId::Input(v) => format!("v{v} input-tainted"),
        FactId::Storage(v) => format!("v{v} storage-tainted"),
        FactId::Slot(k) => format!("slot {k:?} tainted"),
        FactId::MappingTaint(k) => format!("mapping {k:?} tainted"),
        FactId::Writable(k) => format!("mapping {k:?} attacker-writable"),
        FactId::AllSlots => "all storage slots tainted".to_string(),
        FactId::UnknownStore => "unresolved storage write tainted".to_string(),
        FactId::Defeated(g) => {
            format!("guard @0x{:x} defeated", prep.guards[g].pc)
        }
        FactId::Reach(b) => format!("block B{b} attacker-reachable"),
        FactId::Sender(v) => format!("v{v} msg.sender-derived"),
        FactId::Origin(v) => format!("v{v} tx.origin-derived"),
        FactId::Time(v) => format!("v{v} timestamp-derived"),
    }
}

/// The axiom rule name for a fact with no recorded derivation.
fn axiom_rule(fact: FactId) -> &'static str {
    match fact {
        FactId::Sender(_) => "axiom-sender",
        FactId::Reach(_) => "axiom-unguarded",
        _ => "axiom",
    }
}

/// Emits `fact`'s derivation into `steps` in topological order
/// (prerequisites first), via iterative DFS with a visited set. The DAG
/// is acyclic because derivations are first-write-only over a monotone
/// rule system.
fn emit(
    fact: FactId,
    prep: &Prepared<'_>,
    prov: &Provenance,
    p: &Program,
    visited: &mut Vec<FactId>,
    steps: &mut Vec<WitnessStep>,
) {
    // (fact, next-source-index) DFS stack; a fact is emitted when its
    // sources are exhausted.
    let mut stack: Vec<(FactId, usize)> = vec![(fact, 0)];
    while let Some((f, i)) = stack.pop() {
        if steps.len() >= MAX_STEPS {
            return;
        }
        if i == 0 && visited.contains(&f) {
            continue;
        }
        let edge: Option<&Edge> = prov.get(f);
        let sources: &[FactId] = edge.map(|e| e.sources.as_slice()).unwrap_or(&[]);
        if i < sources.len() {
            stack.push((f, i + 1));
            stack.push((sources[i], 0));
            continue;
        }
        // All sources emitted (or none): emit this fact once.
        if visited.contains(&f) {
            continue;
        }
        visited.push(f);
        let step = match edge {
            Some(e) => {
                let site = e.via.or(e.stmt);
                WitnessStep {
                    rule: e.rule.to_string(),
                    fact: fact_text(f, prep),
                    stmt: e.stmt.map(|s| s.0),
                    pc: site.map(|s| p.stmt(s).pc),
                    code: e.stmt.map(|s| {
                        match e.via {
                            // An MLOAD cites the MSTORE that fed it.
                            Some(v) => {
                                format!("{} ⇐ {}", p.stmt_text(s), p.stmt_text(v))
                            }
                            None => p.stmt_text(s),
                        }
                    }),
                }
            }
            None => WitnessStep {
                rule: axiom_rule(f).to_string(),
                fact: fact_text(f, prep),
                stmt: None,
                pc: None,
                code: None,
            },
        };
        steps.push(step);
    }
}

/// The seed facts a finding's verdict rests on, mirroring the detector
/// conditions in `analysis.rs` (taint facts checked in the same order).
fn seeds(f: &Finding, prep: &Prepared<'_>, st: &State) -> Vec<FactId> {
    let p = prep.ctx.p;
    let s = p.stmt(StmtId(f.stmt));
    let block = FactId::Reach(s.block.0);
    let taint_of = |v: decompiler::Var| -> Option<FactId> {
        if st.input_tainted[v.0 as usize] {
            Some(FactId::Input(v.0))
        } else if st.storage_tainted[v.0 as usize] {
            Some(FactId::Storage(v.0))
        } else {
            None
        }
    };
    match f.vuln {
        Vuln::AccessibleSelfDestruct => vec![block],
        Vuln::TaintedSelfDestruct => {
            // uses[0] is the beneficiary.
            taint_of(s.uses[0]).into_iter().collect()
        }
        Vuln::TaintedDelegateCall => {
            // uses[1] is the call target.
            taint_of(s.uses[1]).into_iter().collect()
        }
        Vuln::TaintedOwnerVariable => {
            // An attacker-reachable write of an attacker value to a
            // guard slot: cite the value's provenance and reachability.
            let value = s.uses[1];
            let value_fact = taint_of(value).unwrap_or(FactId::Sender(value.0));
            vec![value_fact, block]
        }
        Vuln::UncheckedTaintedStaticCall => {
            // Target taint, or taint in the trusted input buffer.
            let mut out = Vec::new();
            if let Some(t) = taint_of(s.uses[1]) {
                out.push(t);
            } else if let Some(off) = prep.ctx.consts[s.uses[2].0 as usize] {
                if let Some(stores) = prep.mem_stores.get(&off) {
                    if let Some(t) =
                        stores.iter().find_map(|(_, v)| taint_of(*v))
                    {
                        out.push(t);
                    }
                }
            }
            out.push(block);
            out
        }
        // Detector suite v2. Reentrancy and unchecked-call-return rest
        // on attacker reachability of the call plus static ordering
        // facts (no taint lattice involved), so the block axiom is the
        // whole seed set.
        Vuln::Reentrancy | Vuln::UncheckedCallReturn => vec![block],
        Vuln::TxOriginAuth => {
            // Anchored at the guarding JumpI: cite the condition's
            // origin-taint derivation plus reachability.
            let mut out = Vec::new();
            let cond = s.uses[0];
            if st.origin_tainted[cond.0 as usize] {
                out.push(FactId::Origin(cond.0));
            }
            out.push(block);
            out
        }
        Vuln::TimestampDependence => {
            // Anchored at a time-tainted JumpI condition, or at a CALL
            // whose value operand is time-derived.
            let mut out = Vec::new();
            let carrier = match s.op {
                decompiler::Op::Call { .. } => Some(s.uses[2]),
                _ => Some(s.uses[0]),
            };
            if let Some(v) = carrier {
                if st.time_tainted[v.0 as usize] {
                    out.push(FactId::Time(v.0));
                }
            }
            out.push(block);
            out
        }
    }
}

/// Builds a witness for every finding from the recorded provenance.
///
/// `st` must be the state of the recording replay (it seeds fact
/// selection); findings whose seed facts did not reproduce in the
/// replay (never, for a deterministic analysis) still get a witness
/// with just the sink step.
pub(crate) fn build(
    findings: &[Finding],
    prep: &Prepared<'_>,
    st: &State,
    prov: &Provenance,
) -> Vec<Witness> {
    let mut out = Vec::with_capacity(findings.len());
    for f in findings {
        let p = prep.ctx.p;
        let sink = p.stmt(StmtId(f.stmt));
        let (sink_stmt, sink_pc, sink_code) =
            (sink.id.0, sink.pc, p.stmt_text(sink.id));
        let seed_facts = seeds(f, prep, st);
        let mut steps = Vec::new();
        let mut visited = Vec::new();
        for seed in seed_facts {
            emit(seed, prep, prov, p, &mut visited, &mut steps);
        }
        steps.push(WitnessStep {
            rule: format!("sink-{}", f.vuln.name().replace(' ', "-")),
            fact: f.vuln.to_string(),
            stmt: Some(sink_stmt),
            pc: Some(sink_pc),
            code: Some(sink_code),
        });
        out.push(Witness { vuln: f.vuln, stmt: f.stmt, pc: f.pc, steps });
    }
    out
}
