//! Reusable per-program analysis artifacts — build once, evaluate many.
//!
//! [`analyze`](crate::analyze) used to be monolithic: every call paid
//! guard discovery, dominators, constant propagation, `DS`/`DSA`, the
//! slot interner, the sparse engine's edge maps, and the detector
//! summaries — even the *composite-marker* pass, which recursively
//! re-analyzed the very same program under
//! [`Config::freeze_guards`](crate::Config) just to see which findings
//! survive single-transaction reasoning. At realistic scale that
//! recursion made the sink scan the dominant phase by 20×.
//!
//! This module splits the pipeline at its natural seam:
//!
//! - **Build** ([`AnalysisArtifacts::build`]) — everything derived from
//!   the program alone: the `Prepared` structures (guards, dominators,
//!   live blocks, interned slots, key classes, per-opcode sink buckets,
//!   guard slots), the sparse engine's indexes, and lazily-memoized
//!   detector summaries (storage write summaries, effect/ordering
//!   summaries, branch regions). None of it depends on
//!   `freeze_guards`/`storage_taint`/`witness`, so one build serves both
//!   the main evaluation and the frozen composite re-run.
//! - **Evaluate** ([`AnalysisArtifacts::evaluate`], implemented in
//!   [`analysis`](crate::analysis)) — the mutually-recursive fixpoint
//!   plus the detector sweeps, borrowing the artifacts immutably. The
//!   composite pass is now a second *evaluation* over the same
//!   artifacts: zero index rebuilds, zero re-summarization (proved by
//!   the `ethainter_prepared_builds_total` /
//!   `ethainter_sparse_index_builds_total` telemetry counters).
//!
//! The memoized summaries use [`std::cell::OnceCell`]: computed on
//! first use — never at all for contracts that don't need them (most
//! contracts have no external calls, so the effect summary never runs) —
//! and shared by every evaluation thereafter.

use crate::config::{Config, Engine};
use crate::engine::indexes::SparseIndexes;
use crate::engine::{CondRegion, Ctx, Prepared};
use decompiler::passes::{effects, storage};
use decompiler::{BlockId, DefUse, Dominators, Op, Program, StmtId, Var};
use evm::U256;
use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};

/// Every program-derived structure the analysis needs, built exactly
/// once and reusable across evaluations (main run, frozen composite
/// re-run, future incremental re-queries).
///
/// Built by [`AnalysisArtifacts::build`]; consumed by
/// [`AnalysisArtifacts::evaluate`]. [`analyze`](crate::analyze) is now
/// literally `AnalysisArtifacts::build(p, cfg).evaluate(cfg)`.
///
/// The artifacts are valid for any [`Config`] that agrees with the
/// build-time config on the two switches the build phase consumes —
/// `guard_modeling` (guard discovery) and `range_guards` (interval
/// branch pruning). In particular the frozen composite config (which
/// flips only `freeze_guards`, `storage_taint`, and `witness`) is
/// always compatible; `evaluate` asserts this.
pub struct AnalysisArtifacts<'a> {
    pub(crate) p: &'a Program,
    /// `None` for incomplete or empty programs — `evaluate` returns the
    /// same timed-out/empty report `analyze` always has.
    pub(crate) inner: Option<Inner<'a>>,
}

/// The artifacts proper (absent for incomplete/empty programs).
pub(crate) struct Inner<'a> {
    /// One-time engine structures (guards, dominators, interned slots,
    /// key classes, sink buckets, guard slots…).
    pub(crate) prep: Prepared<'a>,
    /// The config the build phase ran under — `evaluate` checks the
    /// build-relevant switches against its own config.
    pub(crate) built_for: Config,
    /// Wall-clock µs of the build phase, stamped into
    /// `timings.index_build_us` by the first evaluation.
    pub(crate) build_us: u64,
    /// The sparse engine's edge maps. Built eagerly (inside `build_us`)
    /// when the build config selects the sparse engine, lazily on first
    /// sparse evaluation otherwise.
    sparse: OnceCell<SparseIndexes>,
    /// Per-function storage write summaries (tainted-owner pre-filter).
    storage_summaries: OnceCell<Vec<storage::FunctionStorage>>,
    /// Interprocedural effect/ordering summary (detector suite v2).
    effects: OnceCell<effects::EffectSummary>,
    /// Checks-effects-interactions violations derived from `effects`.
    reordered: OnceCell<Vec<effects::ReorderedWrite>>,
    /// All edge-dominant branch regions (origin/time detectors).
    cond_regions: OnceCell<Vec<CondRegion>>,
}

impl<'a> AnalysisArtifacts<'a> {
    /// Builds every program-derived artifact: dominators, interval
    /// branch pruning, constants, `DS`/`DSA`, guards, memory def-use,
    /// the `Prepared` assembly, and (for the sparse engine) the
    /// worklist indexes. Nothing here depends on
    /// `freeze_guards`/`storage_taint`/`witness`.
    pub fn build(p: &'a Program, cfg: &Config) -> AnalysisArtifacts<'a> {
        if p.incomplete || p.blocks.is_empty() {
            return AnalysisArtifacts { p, inner: None };
        }
        let sp_index = telemetry::span("ethainter.index_build");

        let dom = Dominators::compute(p);

        // Range-proven branch pruning: interval analysis proves some
        // JumpI edges never taken; blocks only reachable through dead
        // edges can never execute, so they are not attacker-reachable.
        // This monotonically refines ReachableByAttacker (strictly fewer
        // findings behind statically-decided branches).
        let (live_block, n_dead_edges) = if cfg.range_guards {
            let iv = decompiler::passes::intervals::analyze(p);
            let dead: HashSet<(u32, usize)> =
                iv.dead_edges.iter().map(|&(b, i)| (b.0, i)).collect();
            let mut live = vec![false; p.blocks.len()];
            let mut stack = vec![BlockId(0)];
            while let Some(b) = stack.pop() {
                let bi = b.0 as usize;
                if live[bi] {
                    continue;
                }
                live[bi] = true;
                for (i, &s) in p.blocks[bi].succs.iter().enumerate() {
                    if !dead.contains(&(b.0, i)) {
                        stack.push(s);
                    }
                }
            }
            (live, dead.len())
        } else {
            (vec![true; p.blocks.len()], 0)
        };

        let mut ctx = Ctx {
            p,
            du: DefUse::build(p),
            consts: vec![None; p.n_vars as usize],
            ds: vec![false; p.n_vars as usize],
            dsa: vec![false; p.n_vars as usize],
            saddr_cache: HashMap::new(),
        };
        ctx.compute_consts();
        ctx.compute_ds();

        // Guards (StaticallyGuardedStatement).
        let guards = if cfg.guard_modeling { ctx.find_guards(&dom) } else { Vec::new() };

        // Memory def-use: const offset → (store stmts, value vars).
        let mut mem_stores: HashMap<U256, Vec<(StmtId, Var)>> = HashMap::new();
        for s in p.iter_stmts() {
            if s.op == Op::MStore {
                if let Some(off) = ctx.consts[s.uses[0].0 as usize] {
                    mem_stores.entry(off).or_default().push((s.id, s.uses[1]));
                }
            }
        }

        // Intern the slot universe and resolve per-statement key
        // classifications once; every evaluation then runs atom-indexed.
        let prep = Prepared::build(ctx, guards, dom, live_block, n_dead_edges, mem_stores);
        let mut inner = Inner {
            prep,
            built_for: *cfg,
            build_us: 0,
            sparse: OnceCell::new(),
            storage_summaries: OnceCell::new(),
            effects: OnceCell::new(),
            reordered: OnceCell::new(),
            cond_regions: OnceCell::new(),
        };
        // The sparse engine's edge maps are part of its index-build
        // cost; the dense engine never pays for them.
        if cfg.engine == Engine::Sparse {
            inner.sparse_indexes();
        }
        inner.build_us = sp_index.finish_us();
        AnalysisArtifacts { p, inner: Some(inner) }
    }
}

impl Inner<'_> {
    /// The sparse engine's worklist indexes, built on first use.
    pub(crate) fn sparse_indexes(&self) -> &SparseIndexes {
        self.sparse.get_or_init(|| SparseIndexes::build(&self.prep))
    }

    /// Per-function storage write summaries, computed at most once per
    /// program (the tainted-owner pre-filter consults them on every
    /// evaluation).
    pub(crate) fn storage_summaries(&self) -> &[storage::FunctionStorage] {
        self.storage_summaries.get_or_init(|| {
            telemetry::metrics::counter("ethainter_storage_summarize_total").inc();
            storage::summarize(self.prep.ctx.p)
        })
    }

    /// The interprocedural effect/ordering summary, computed at most
    /// once per program (only ever for contracts with external calls).
    pub(crate) fn effect_summary(&self) -> &effects::EffectSummary {
        self.effects.get_or_init(|| {
            telemetry::metrics::counter("ethainter_effects_summarize_total").inc();
            effects::summarize(self.prep.ctx.p)
        })
    }

    /// Checks-effects-interactions violations, derived once from the
    /// effect summary and dominators.
    pub(crate) fn reordered_writes(&self) -> &[effects::ReorderedWrite] {
        self.reordered.get_or_init(|| {
            effects::reordered_writes(self.prep.ctx.p, &self.prep.dom, self.effect_summary())
        })
    }

    /// All edge-dominant branch regions, computed at most once per
    /// program (only ever when origin/time taint exists).
    pub(crate) fn cond_regions(&self) -> &[CondRegion] {
        self.cond_regions.get_or_init(|| {
            telemetry::metrics::counter("ethainter_cond_regions_builds_total").inc();
            self.prep.ctx.cond_regions(&self.prep.dom)
        })
    }
}
