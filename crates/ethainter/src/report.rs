//! Findings and per-contract reports (Ethainter's output, consumed by
//! Ethainter-Kill and the evaluation harness).

use crate::timing::PhaseTimings;
use crate::witness::Witness;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The vulnerability classes of §3.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Vuln {
    /// §3.3 — `SELFDESTRUCT` executable by an arbitrary caller.
    AccessibleSelfDestruct,
    /// §3.4 — `SELFDESTRUCT` whose beneficiary is attacker-influenced.
    TaintedSelfDestruct,
    /// §3.1 — a storage slot used in a sender guard is attacker-writable.
    TaintedOwnerVariable,
    /// §3.2 — `DELEGATECALL` to an attacker-influenced address.
    TaintedDelegateCall,
    /// §3.5 — `STATICCALL` whose output window overlaps its input and is
    /// trusted without a `RETURNDATASIZE` check.
    UncheckedTaintedStaticCall,
    /// Detector suite v2 — external call ordered before the storage
    /// write that guards it (checks-effects-interactions violation).
    Reentrancy,
    /// Detector suite v2 — `ORIGIN` flowing into a guard comparison
    /// that gates a critical sink (phishable authentication).
    TxOriginAuth,
    /// Detector suite v2 — `TIMESTAMP` tainting a guard condition over
    /// a money flow, or a transferred value.
    TimestampDependence,
    /// Detector suite v2 — low-level `CALL` whose success flag never
    /// constrains a path or a storage write.
    UncheckedCallReturn,
}

impl Vuln {
    /// Number of vulnerability classes. [`Vuln::ALL`] is sized by this
    /// constant so adding a class is a one-enum-variant change — any
    /// per-class table should be `[T; Vuln::COUNT]` or driven by
    /// `Vuln::ALL.len()`, never a hardcoded arity.
    pub const COUNT: usize = 9;

    /// All vulnerability classes: the paper's five in its table order,
    /// then the detector-suite-v2 classes in declaration order.
    pub const ALL: [Vuln; Self::COUNT] = [
        Vuln::AccessibleSelfDestruct,
        Vuln::TaintedSelfDestruct,
        Vuln::TaintedOwnerVariable,
        Vuln::UncheckedTaintedStaticCall,
        Vuln::TaintedDelegateCall,
        Vuln::Reentrancy,
        Vuln::TxOriginAuth,
        Vuln::TimestampDependence,
        Vuln::UncheckedCallReturn,
    ];

    /// Short display name as in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Vuln::AccessibleSelfDestruct => "accessible selfdestruct",
            Vuln::TaintedSelfDestruct => "tainted selfdestruct",
            Vuln::TaintedOwnerVariable => "tainted owner variable",
            Vuln::TaintedDelegateCall => "tainted delegatecall",
            Vuln::UncheckedTaintedStaticCall => "unchecked tainted staticcall",
            Vuln::Reentrancy => "reentrancy",
            Vuln::TxOriginAuth => "tx.origin authentication",
            Vuln::TimestampDependence => "timestamp dependence",
            Vuln::UncheckedCallReturn => "unchecked call return",
        }
    }
}

impl fmt::Display for Vuln {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One flagged program point.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Vulnerability class.
    pub vuln: Vuln,
    /// TAC statement id of the sink/anchor.
    pub stmt: u32,
    /// Bytecode offset of the sink.
    pub pc: usize,
    /// Selectors of public functions from which the sink is reachable
    /// (Ethainter-Kill's entry-point candidates; empty when the
    /// dispatcher pattern was not recovered).
    pub selectors: Vec<u32>,
    /// Whether the composite machinery (guard tainting) was needed to
    /// establish this finding (the ✰ marker of Figure 6).
    pub composite: bool,
}

/// Per-relation fact counts at the analysis fixpoint — the sizes of the
/// Datalog-style relations of Figure 5, surfaced for perf triage of
/// batch runs (a contract with a pathological round count usually shows
/// an exploded relation here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactCounts {
    /// Variables carrying input taint (`TaintedFlow`).
    pub input_tainted: usize,
    /// Variables carrying storage taint (`AttackerModelInfoflow`).
    pub storage_tainted: usize,
    /// Constant storage slots holding tainted data.
    pub tainted_slots: usize,
    /// Mapping base slots holding tainted data.
    pub tainted_mappings: usize,
    /// Mapping base slots the attacker can enroll into.
    pub writable_mappings: usize,
    /// Sanitizing guards discovered (`StaticallyGuardedStatement`).
    pub guards: usize,
    /// Guards the fixpoint defeated.
    pub defeated_guards: usize,
    /// Variables with a unique constant value (`ConstValue`).
    pub consts: usize,
    /// Caller-identity variables (Figure 4's `DS`).
    pub ds: usize,
    /// Caller-keyed structure addresses (Figure 4's `DSA`).
    pub dsa: usize,
    /// Blocks attacker-reachable at the fixpoint (`ReachableByAttacker`).
    pub rba_blocks: usize,
    /// `JumpI` edges interval analysis proved never taken.
    pub dead_edges: usize,
    /// Variables carrying `ORIGIN`-derived taint (`OriginFlow`).
    /// Serde-defaulted: records written before detector suite v2 omit
    /// this relation.
    #[serde(default)]
    pub origin_tainted: usize,
    /// Variables carrying `TIMESTAMP`-derived taint (`TimeFlow`).
    #[serde(default)]
    pub time_tainted: usize,
}

/// Analysis statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stats {
    /// TAC blocks analyzed.
    pub blocks: usize,
    /// TAC statements analyzed (after IR passes, when enabled).
    pub stmts: usize,
    /// Convergence effort: outer re-scan passes for the dense engine,
    /// 1 + guard-defeat waves for the sparse engine. Engine-dependent by
    /// nature (unlike [`Stats::facts`], which both engines must agree
    /// on exactly).
    pub rounds: usize,
    /// Per-relation fact counts at the fixpoint.
    pub facts: FactCounts,
    /// Per-phase wall-clock timings. Observability only: excluded from
    /// equality-sensitive artifacts (`crates/store` strips them from
    /// cache entries and `merged.jsonl`).
    #[serde(default)]
    pub timings: PhaseTimings,
}

/// Full per-contract output.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Flagged vulnerabilities.
    pub findings: Vec<Finding>,
    /// True when decompilation hit its budget; findings may be partial
    /// (counted as a timeout in the evaluation, like the paper's 120 s
    /// cutoff).
    pub timed_out: bool,
    /// Bytecode offsets of the guard `JUMPI`s the fixpoint defeated —
    /// the provenance of every composite finding (the escalation chain
    /// an attacker walks through these guards, in pc order).
    pub defeated_guards: Vec<usize>,
    /// Statistics.
    pub stats: Stats,
    /// Source→sink provenance witnesses, one per finding in finding
    /// order — present only when [`Config::witness`](crate::Config) was
    /// on. Observability riding on the verdicts: `crates/store` strips
    /// witnesses from cache entries and `merged.jsonl` exactly like
    /// timings, and the field serializes as *absent* (not `null`) when
    /// unset so witness-off and witness-stripped records stay
    /// byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub witnesses: Option<Vec<Witness>>,
}

impl Report {
    /// True if any finding has the given class.
    pub fn has(&self, vuln: Vuln) -> bool {
        self.findings.iter().any(|f| f.vuln == vuln)
    }

    /// Findings of one class.
    pub fn of(&self, vuln: Vuln) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.vuln == vuln)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_class_exactly_once() {
        assert_eq!(Vuln::ALL.len(), Vuln::COUNT);
        let unique: std::collections::BTreeSet<_> = Vuln::ALL.iter().collect();
        assert_eq!(unique.len(), Vuln::COUNT, "duplicate class in Vuln::ALL");
    }

    #[test]
    fn every_class_round_trips_through_serde() {
        for v in Vuln::ALL {
            let json = serde_json::to_string(&v).unwrap();
            let back: Vuln = serde_json::from_str(&json).unwrap();
            assert_eq!(v, back, "serde round-trip changed {v:?} via {json}");
        }
        // The whole array round-trips as one value too (batch records
        // embed class lists, not single variants).
        let json = serde_json::to_string(&Vuln::ALL.to_vec()).unwrap();
        let back: Vec<Vuln> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Vuln::ALL.to_vec());
    }

    #[test]
    fn class_names_are_unique() {
        let names: std::collections::BTreeSet<_> =
            Vuln::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), Vuln::COUNT);
    }
}
