//! The paper's §4 formalism, transcribed and runnable.
//!
//! This module implements the *abstract input language* of Figure 1 and
//! the inference rules of Figures 3 and 4 exactly as published, on top of
//! the `datalog` engine. It exists for its "independent value" (§1): the
//! rules can be studied, tested, and property-checked in isolation from
//! the bytecode pipeline.
//!
//! Relations (Figure 2):
//!
//! | Paper              | Here                                  |
//! |--------------------|---------------------------------------|
//! | `↓I x`             | [`Solution::input_tainted`]           |
//! | `↓T x`             | [`Solution::storage_tainted`]         |
//! | `↓T S(v)`          | [`Solution::tainted_storage`]         |
//! | `↛ p`              | [`Solution::non_sanitizing`]          |
//! | `C(x) = v`         | input facts ([`Program::const_value`])|
//! | `x ∼ S(v)`         | input facts ([`Program::storage_alias`])|
//! | `DS(x)` / `DSA(x)` | [`Solution::ds`] / [`Solution::dsa`]  |

use datalog::{join_relation_into, Iteration, Relation};
use std::collections::{HashMap, HashSet};

/// An abstract-language variable (interned).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct V(pub u32);

/// A storage location constant.
pub type Slot = u64;

/// Instructions of the abstract input language (Figure 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `x := OP(y, z)` — any operation, including phi and non-equality
    /// comparisons.
    Op {
        /// Defined variable.
        x: V,
        /// First operand.
        y: V,
        /// Second operand.
        z: V,
    },
    /// `x := (y = z)` — equality, written explicitly because the
    /// `Uguard-*` rules inspect it. It behaves as an `OP` for taint.
    OpEq {
        /// Defined variable.
        x: V,
        /// Left operand.
        y: V,
        /// Right operand.
        z: V,
    },
    /// `x := INPUT()` — a taint source.
    Input {
        /// Defined variable.
        x: V,
    },
    /// `x := HASH(y)`.
    Hash {
        /// Defined variable.
        x: V,
        /// Hashed operand.
        y: V,
    },
    /// `x := GUARD(p, y)` — `x` receives `y` sanitized under predicate `p`.
    Guard {
        /// Defined variable.
        x: V,
        /// Sender predicate.
        p: V,
        /// Guarded value.
        y: V,
    },
    /// `SSTORE(f, t)` — store local `f` to storage address `t`.
    SStore {
        /// Value stored.
        f: V,
        /// Address expression.
        t: V,
    },
    /// `SLOAD(f, t)` — load storage address `f` into local `t`.
    SLoad {
        /// Address expression.
        f: V,
        /// Loaded variable.
        t: V,
    },
    /// `SINK(x)` — a sensitive instruction.
    Sink {
        /// Observed variable.
        x: V,
    },
}

/// An abstract-language program plus its auxiliary input relations.
#[derive(Clone, Debug, Default)]
pub struct Program {
    insts: Vec<Inst>,
    /// `C(x) = v` facts.
    const_value: HashMap<V, Slot>,
    /// `x ∼ S(v)` facts.
    storage_alias: HashMap<V, Slot>,
    sender: Option<V>,
    n_vars: u32,
    names: HashMap<String, V>,
}

/// The fixpoint of the Figure 3 / Figure 4 rules.
#[derive(Clone, Debug, Default)]
pub struct Solution {
    /// `↓I x` — input-tainted variables.
    pub input_tainted: HashSet<V>,
    /// `↓T x` — storage-tainted variables.
    pub storage_tainted: HashSet<V>,
    /// `↓T S(v)` — tainted constant storage locations.
    pub tainted_storage: HashSet<Slot>,
    /// `↛ p` — non-sanitizing guard predicates.
    pub non_sanitizing: HashSet<V>,
    /// `DS(x)`.
    pub ds: HashSet<V>,
    /// `DSA(x)`.
    pub dsa: HashSet<V>,
    /// Indices of `SINK` instructions whose operand is tainted
    /// (the `Violation` rule).
    pub violations: Vec<usize>,
    /// Inferred sinks (§4.5): variables `z` compared against `sender` in
    /// a guard over tainted data, where `z ∼ S(v)`.
    pub inferred_sinks: HashSet<V>,
}

impl Solution {
    /// True when any kind of taint reaches `x`.
    pub fn tainted(&self, x: V) -> bool {
        self.input_tainted.contains(&x) || self.storage_tainted.contains(&x)
    }
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable by name; `"sender"` is the reserved caller
    /// variable.
    pub fn var(&mut self, name: &str) -> V {
        if let Some(&v) = self.names.get(name) {
            return v;
        }
        let v = V(self.n_vars);
        self.n_vars += 1;
        self.names.insert(name.to_string(), v);
        if name == "sender" {
            self.sender = Some(v);
        }
        v
    }

    /// Appends an instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        self.insts.push(i);
        self
    }

    /// Adds a `C(x) = v` fact.
    pub fn const_value(&mut self, x: V, v: Slot) -> &mut Self {
        self.const_value.insert(x, v);
        self
    }

    /// Adds an `x ∼ S(v)` fact.
    pub fn storage_alias(&mut self, x: V, v: Slot) -> &mut Self {
        self.storage_alias.insert(x, v);
        self
    }

    /// All constant storage locations mentioned by the program (the range
    /// of the `StorageWrite-2` universal quantifier).
    fn known_slots(&self) -> Vec<Slot> {
        let mut out: Vec<Slot> = self
            .const_value
            .values()
            .chain(self.storage_alias.values())
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Computes `DS` and `DSA` (Figure 4) — an earlier stratum,
    /// independent of taint, evaluated with the datalog engine.
    fn solve_ds(&self) -> (HashSet<V>, HashSet<V>) {
        // Facts as (key, ()) pairs for the engine.
        let hash_edges: Relation<(V, V)> = self
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Hash { x, y } => Some((*y, *x)),
                _ => None,
            })
            .collect();
        let op_edges: Relation<(V, V)> = self
            .insts
            .iter()
            .flat_map(|i| match i {
                Inst::Op { x, y, z } | Inst::OpEq { x, y, z } => {
                    vec![(*y, *x), (*z, *x)]
                }
                _ => Vec::new(),
            })
            .collect();
        let load_edges: Relation<(V, V)> = self
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::SLoad { f, t } => Some((*f, *t)),
                _ => None,
            })
            .collect();

        let mut it = Iteration::new();
        let ds = it.variable::<(V, ())>("DS");
        let dsa = it.variable::<(V, ())>("DSA");
        if let Some(s) = self.sender {
            ds.extend(vec![(s, ())]); // DS-SenderKey
        }
        while it.changed() {
            // DS-Lookup: x := HASH(y), DS(y) ⊢ DSA(x)
            join_relation_into(&ds, &hash_edges, &dsa, |_, _, &x| (x, ()));
            // DSA-Lookup: x := HASH(y), DSA(y) ⊢ DSA(x)
            join_relation_into(&dsa, &hash_edges, &dsa, |_, _, &x| (x, ()));
            // DS-AddrOp-1/2: DSA(y), x := OP(y, ∗) ⊢ DSA(x)
            join_relation_into(&dsa, &op_edges, &dsa, |_, _, &x| (x, ()));
            // DSA-Load: DSA(x), SLOAD(x, y) ⊢ DS(y)
            join_relation_into(&dsa, &load_edges, &ds, |_, _, &y| (y, ()));
        }
        let ds: HashSet<V> = ds.complete().into_iter().map(|(v, ())| v).collect();
        let dsa: HashSet<V> = dsa.complete().into_iter().map(|(v, ())| v).collect();
        (ds, dsa)
    }

    /// Runs the full analysis (Figure 3, with Figure 4 as an earlier
    /// stratum), to fixpoint.
    pub fn solve(&self) -> Solution {
        let (ds, dsa) = self.solve_ds();
        let known_slots = self.known_slots();

        let mut sol = Solution { ds, dsa, ..Solution::default() };

        // The four mutually-recursive relations grow monotonically; a
        // simple round-based fixpoint mirrors the paper's "iterate from
        // empty up to fixpoint".
        loop {
            let before = (
                sol.input_tainted.len(),
                sol.storage_tainted.len(),
                sol.tainted_storage.len(),
                sol.non_sanitizing.len(),
                sol.inferred_sinks.len(),
            );

            for inst in &self.insts {
                match inst {
                    // LoadInput
                    Inst::Input { x } => {
                        sol.input_tainted.insert(*x);
                    }
                    // Operation-1/2 (taint flavor preserved)
                    Inst::Op { x, y, z } | Inst::OpEq { x, y, z } => {
                        if sol.input_tainted.contains(y) || sol.input_tainted.contains(z) {
                            sol.input_tainted.insert(*x);
                        }
                        if sol.storage_tainted.contains(y) || sol.storage_tainted.contains(z)
                        {
                            sol.storage_tainted.insert(*x);
                        }
                    }
                    // HASH behaves as a unary OP for taint.
                    Inst::Hash { x, y } => {
                        if sol.input_tainted.contains(y) {
                            sol.input_tainted.insert(*x);
                        }
                        if sol.storage_tainted.contains(y) {
                            sol.storage_tainted.insert(*x);
                        }
                    }
                    // Guard-1: storage taint passes through guards.
                    // Guard-2: input taint passes only non-sanitizing ones.
                    Inst::Guard { x, p, y } => {
                        if sol.storage_tainted.contains(y) {
                            sol.storage_tainted.insert(*x);
                        }
                        if sol.input_tainted.contains(y) && sol.non_sanitizing.contains(p) {
                            sol.input_tainted.insert(*x);
                        }
                    }
                    // StorageWrite-1 / StorageWrite-2
                    Inst::SStore { f, t } => {
                        let f_tainted = sol.tainted(*f);
                        if f_tainted {
                            if let Some(v) = self.const_value.get(t) {
                                sol.tainted_storage.insert(*v);
                            }
                            if sol.tainted(*t) {
                                // ∀i: ↓T S(i)
                                sol.tainted_storage.extend(known_slots.iter().copied());
                            }
                        }
                    }
                    // StorageLoad
                    Inst::SLoad { f, t } => {
                        if let Some(v) = self.const_value.get(f) {
                            if sol.tainted_storage.contains(v) {
                                sol.storage_tainted.insert(*t);
                            }
                        }
                    }
                    Inst::Sink { .. } => {}
                }
            }

            // Uguard-T and Uguard-NDS: a predicate p defined by an
            // equality fails to sanitize.
            for inst in &self.insts {
                let Inst::OpEq { x: p, y, z } = inst else { continue };
                // Uguard-T: p := (sender = z), z ∼ S(v), ↓T S(v)
                if Some(*y) == self.sender || Some(*z) == self.sender {
                    let other = if Some(*y) == self.sender { z } else { y };
                    if let Some(v) = self.storage_alias.get(other) {
                        if sol.tainted_storage.contains(v) {
                            sol.non_sanitizing.insert(*p);
                        }
                    }
                } else if !sol.ds.contains(y) && !sol.ds.contains(z) {
                    // Uguard-NDS: neither side scrutinizes the caller.
                    sol.non_sanitizing.insert(*p);
                }
            }

            // §4.5 sink inference: ∗ := GUARD(sender = z, x), ↓I/T x,
            // z ∼ S(∗)  ⊢  SINK(z)
            for inst in &self.insts {
                let Inst::Guard { p, y, .. } = inst else { continue };
                if !sol.tainted(*y) {
                    continue;
                }
                // Find p's definition as an equality with sender.
                for def in &self.insts {
                    let Inst::OpEq { x, y: a, z: b } = def else { continue };
                    if x != p {
                        continue;
                    }
                    let other = if Some(*a) == self.sender {
                        Some(b)
                    } else if Some(*b) == self.sender {
                        Some(a)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if self.storage_alias.contains_key(o) {
                            sol.inferred_sinks.insert(*o);
                        }
                    }
                }
            }

            let after = (
                sol.input_tainted.len(),
                sol.storage_tainted.len(),
                sol.tainted_storage.len(),
                sol.non_sanitizing.len(),
                sol.inferred_sinks.len(),
            );
            if before == after {
                break;
            }
        }

        // Violation: SINK(x), ↓∗ x — plus inferred sinks whose slot is
        // tainted.
        for (i, inst) in self.insts.iter().enumerate() {
            if let Inst::Sink { x } = inst {
                if sol.tainted(*x) {
                    sol.violations.push(i);
                }
            }
        }

        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §3.1 tainted owner: `initOwner` writes input to slot 0; `kill` is
    /// guarded by `sender == owner`.
    #[test]
    fn tainted_owner_defeats_guard() {
        let mut p = Program::new();
        let input = p.var("input");
        let t_owner = p.var("t_owner"); // address of owner slot
        let owner = p.var("owner"); // loaded owner
        let sender = p.var("sender");
        let pred = p.var("pred");
        let payload = p.var("payload");
        let guarded = p.var("guarded");

        p.const_value(t_owner, 0);
        p.storage_alias(owner, 0);
        p.inst(Inst::Input { x: input });
        // initOwner: owner := input
        p.inst(Inst::SStore { f: input, t: t_owner });
        // kill: load owner, guard on sender == owner, then sink.
        p.inst(Inst::SLoad { f: t_owner, t: owner });
        p.inst(Inst::OpEq { x: pred, y: sender, z: owner });
        p.inst(Inst::Input { x: payload });
        p.inst(Inst::Guard { x: guarded, p: pred, y: payload });
        p.inst(Inst::Sink { x: guarded });

        let sol = p.solve();
        // Slot 0 is tainted, so the guard is non-sanitizing (Uguard-T)
        // and input taint flows through to the sink.
        assert!(sol.tainted_storage.contains(&0));
        assert!(sol.non_sanitizing.contains(&pred));
        assert!(sol.input_tainted.contains(&guarded));
        assert_eq!(sol.violations.len(), 1);
        // §4.5: owner is an inferred sink.
        assert!(sol.inferred_sinks.contains(&owner));
    }

    /// With no way to taint the owner slot, the guard sanitizes.
    #[test]
    fn effective_guard_blocks_input_taint() {
        let mut p = Program::new();
        let t_owner = p.var("t_owner");
        let owner = p.var("owner");
        let sender = p.var("sender");
        let pred = p.var("pred");
        let payload = p.var("payload");
        let guarded = p.var("guarded");

        p.const_value(t_owner, 0);
        p.storage_alias(owner, 0);
        p.inst(Inst::SLoad { f: t_owner, t: owner });
        p.inst(Inst::OpEq { x: pred, y: sender, z: owner });
        p.inst(Inst::Input { x: payload });
        p.inst(Inst::Guard { x: guarded, p: pred, y: payload });
        p.inst(Inst::Sink { x: guarded });

        let sol = p.solve();
        assert!(!sol.non_sanitizing.contains(&pred));
        assert!(!sol.input_tainted.contains(&guarded));
        assert!(sol.violations.is_empty());
    }

    /// Guard-1: storage taint ignores guards entirely.
    #[test]
    fn storage_taint_passes_guards() {
        let mut p = Program::new();
        let input = p.var("input");
        let t_slot = p.var("t_slot");
        let loaded = p.var("loaded");
        let sender = p.var("sender");
        let owner = p.var("owner");
        let t_owner = p.var("t_owner");
        let pred = p.var("pred");
        let guarded = p.var("guarded");

        p.const_value(t_slot, 5);
        p.const_value(t_owner, 0);
        p.storage_alias(owner, 0);
        p.inst(Inst::Input { x: input });
        // Unguarded write into slot 5.
        p.inst(Inst::SStore { f: input, t: t_slot });
        // Later, slot 5 is read and flows through an owner guard.
        p.inst(Inst::SLoad { f: t_slot, t: loaded });
        p.inst(Inst::SLoad { f: t_owner, t: owner });
        p.inst(Inst::OpEq { x: pred, y: sender, z: owner });
        p.inst(Inst::Guard { x: guarded, p: pred, y: loaded });
        p.inst(Inst::Sink { x: guarded });

        let sol = p.solve();
        // The owner slot itself is NOT tainted, the guard is sanitizing —
        // but storage taint flows through regardless (Guard-1).
        assert!(!sol.non_sanitizing.contains(&pred));
        assert!(sol.storage_tainted.contains(&guarded));
        assert_eq!(sol.violations.len(), 1);
    }

    /// Uguard-NDS: a guard not involving the sender sanitizes nothing.
    #[test]
    fn non_sender_guard_is_non_sanitizing() {
        let mut p = Program::new();
        let input = p.var("input");
        let c1 = p.var("c1");
        let c2 = p.var("c2");
        let pred = p.var("pred");
        let guarded = p.var("guarded");
        let _sender = p.var("sender");

        p.inst(Inst::Input { x: input });
        p.inst(Inst::OpEq { x: pred, y: c1, z: c2 });
        p.inst(Inst::Guard { x: guarded, p: pred, y: input });
        p.inst(Inst::Sink { x: guarded });

        let sol = p.solve();
        assert!(sol.non_sanitizing.contains(&pred));
        assert_eq!(sol.violations.len(), 1);
    }

    /// Figure 4: `m[sender]` lookups scrutinize the caller, so comparing
    /// against them is sanitizing (no Uguard-NDS).
    #[test]
    fn sender_keyed_lookup_counts_as_scrutiny() {
        let mut p = Program::new();
        let sender = p.var("sender");
        let h = p.var("h");
        let elem = p.var("elem");
        let one = p.var("one");
        let pred = p.var("pred");
        let input = p.var("input");
        let guarded = p.var("guarded");

        // h := HASH(sender); elem := SLOAD(h)  — m[sender]
        p.inst(Inst::Hash { x: h, y: sender });
        p.inst(Inst::SLoad { f: h, t: elem });
        // pred := (elem = one) — membership test
        p.inst(Inst::OpEq { x: pred, y: elem, z: one });
        p.inst(Inst::Input { x: input });
        p.inst(Inst::Guard { x: guarded, p: pred, y: input });
        p.inst(Inst::Sink { x: guarded });

        let sol = p.solve();
        assert!(sol.ds.contains(&sender));
        assert!(sol.dsa.contains(&h));
        assert!(sol.ds.contains(&elem));
        assert!(!sol.non_sanitizing.contains(&pred));
        assert!(sol.violations.is_empty());
    }

    /// Nested data structures: HASH of HASH, plus address arithmetic
    /// (DS-AddrOp), still reach DS through a load.
    #[test]
    fn nested_structure_address_arithmetic() {
        let mut p = Program::new();
        let sender = p.var("sender");
        let h1 = p.var("h1");
        let h2 = p.var("h2");
        let off = p.var("off");
        let addr = p.var("addr");
        let elem = p.var("elem");

        p.inst(Inst::Hash { x: h1, y: sender });
        p.inst(Inst::Hash { x: h2, y: h1 });
        p.inst(Inst::Op { x: addr, y: h2, z: off }); // addr := h2 + off
        p.inst(Inst::SLoad { f: addr, t: elem });

        let sol = p.solve();
        assert!(sol.dsa.contains(&h2));
        assert!(sol.dsa.contains(&addr));
        assert!(sol.ds.contains(&elem));
    }

    /// StorageWrite-2: a tainted store to a tainted address taints every
    /// known constant slot (the deliberate over-approximation, §4.4).
    #[test]
    fn tainted_address_store_taints_all_slots() {
        let mut p = Program::new();
        let input = p.var("input");
        let addr = p.var("addr");
        let t1 = p.var("t1");
        let t2 = p.var("t2");
        let l1 = p.var("l1");
        let l2 = p.var("l2");

        p.const_value(t1, 1);
        p.const_value(t2, 2);
        p.inst(Inst::Input { x: input });
        // addr := OP(input, input) — attacker-controlled address
        p.inst(Inst::Op { x: addr, y: input, z: input });
        p.inst(Inst::SStore { f: input, t: addr });
        p.inst(Inst::SLoad { f: t1, t: l1 });
        p.inst(Inst::SLoad { f: t2, t: l2 });

        let sol = p.solve();
        assert!(sol.tainted_storage.contains(&1));
        assert!(sol.tainted_storage.contains(&2));
        assert!(sol.storage_tainted.contains(&l1));
        assert!(sol.storage_tainted.contains(&l2));
    }

    /// The §2 Victim chain in the abstract language: tainting a guard
    /// enables more tainting (composite escalation).
    #[test]
    fn composite_escalation_through_guards() {
        let mut p = Program::new();
        let sender = p.var("sender");
        // Stage 1 (referAdmin, wrongly guarded by a user check that the
        // attacker satisfies — modeled as a non-sanitizing guard since the
        // membership is attacker-settable; here distilled: an unguarded
        // write of input into the admins slot region = owner slot 7).
        let input = p.var("input");
        let t_admin = p.var("t_admin");
        p.const_value(t_admin, 7);
        p.inst(Inst::Input { x: input });
        p.inst(Inst::SStore { f: input, t: t_admin });

        // Stage 2 (changeOwner guarded by admins-slot comparison).
        let admin = p.var("admin");
        let pred = p.var("pred");
        let new_owner = p.var("new_owner");
        let guarded = p.var("guarded");
        let t_owner = p.var("t_owner");
        p.const_value(t_owner, 8);
        p.storage_alias(admin, 7);
        p.inst(Inst::SLoad { f: t_admin, t: admin });
        p.inst(Inst::OpEq { x: pred, y: sender, z: admin });
        p.inst(Inst::Input { x: new_owner });
        p.inst(Inst::Guard { x: guarded, p: pred, y: new_owner });
        p.inst(Inst::SStore { f: guarded, t: t_owner });

        // Stage 3 (kill guarded by owner).
        let owner = p.var("owner");
        let pred2 = p.var("pred2");
        let beneficiary = p.var("beneficiary");
        let guarded2 = p.var("guarded2");
        p.storage_alias(owner, 8);
        p.inst(Inst::SLoad { f: t_owner, t: owner });
        p.inst(Inst::OpEq { x: pred2, y: sender, z: owner });
        p.inst(Inst::Input { x: beneficiary });
        p.inst(Inst::Guard { x: guarded2, p: pred2, y: beneficiary });
        p.inst(Inst::Sink { x: guarded2 });

        let sol = p.solve();
        // Escalation: slot 7 tainted → pred non-sanitizing → slot 8
        // tainted → pred2 non-sanitizing → sink violation.
        assert!(sol.tainted_storage.contains(&7));
        assert!(sol.non_sanitizing.contains(&pred));
        assert!(sol.tainted_storage.contains(&8));
        assert!(sol.non_sanitizing.contains(&pred2));
        assert_eq!(sol.violations.len(), 1);
    }

    /// Monotonicity (used by the property tests): adding instructions
    /// never removes violations.
    #[test]
    fn adding_sources_is_monotone() {
        let mut p = Program::new();
        let t = p.var("t");
        let l = p.var("l");
        let s = p.var("s");
        p.const_value(t, 3);
        p.inst(Inst::SLoad { f: t, t: l });
        p.inst(Inst::Op { x: s, y: l, z: l });
        p.inst(Inst::Sink { x: s });
        let before = p.solve().violations.len();

        let input = p.var("input");
        p.inst(Inst::Input { x: input });
        p.inst(Inst::SStore { f: input, t });
        let after = p.solve().violations.len();
        assert!(after >= before);
        assert_eq!(after, 1);
    }
}
