//! Analysis configuration — including the §6.4 ablation switches.

use serde::{Deserialize, Serialize};

/// How statically-unresolved storage addresses are treated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum StorageModel {
    /// The paper's default: only constant slots and recognized
    /// data-structure addresses participate; unknown addresses are
    /// ignored except for the `StorageWrite-2` rule (tainted value *and*
    /// tainted address taints every known slot). Favors precision (§4.4).
    #[default]
    Precise,
    /// Figure 8c: any store to an unknown location may reach any
    /// location, and loads from unknown locations are tainted whenever
    /// any tainted unknown store exists. Favors completeness, hurts
    /// precision.
    Conservative,
}

/// Which fixpoint evaluation strategy runs the Figure 5 mutual
/// recursion. Both engines compute the **same unique fixpoint** (the
/// rule system is monotone), so the choice affects speed only — see the
/// differential suites in `crates/bench/tests/engine_differential.rs`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum Engine {
    /// Naive evaluation: every round re-scans every statement until
    /// nothing changes. O(rounds × stmts); kept as the executable
    /// specification the sparse engine is differentially tested against.
    Dense,
    /// Worklist-driven evaluation over one-time def→use / storage /
    /// guard-region indexes: only statements whose inputs changed are
    /// re-evaluated, and a defeated guard re-pushes exactly its region.
    /// The production default.
    #[default]
    Sparse,
}

impl Engine {
    /// CLI / display name (`dense` | `sparse`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Dense => "dense",
            Engine::Sparse => "sparse",
        }
    }

    /// Parses a CLI `--engine` value.
    pub fn parse(s: &str) -> Result<Engine, String> {
        match s {
            "dense" => Ok(Engine::Dense),
            "sparse" => Ok(Engine::Sparse),
            other => Err(format!("unknown engine `{other}` (expected dense|sparse)")),
        }
    }
}

/// Analysis switches. The defaults reproduce the paper's main
/// configuration; the ablations of Figure 8 flip one switch each.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Config {
    /// Model guards (Figure 8b ablation sets this to `false`:
    /// every statement becomes attacker-reachable).
    pub guard_modeling: bool,
    /// Allow taint to propagate through persistent storage — and hence
    /// across transactions (Figure 8a ablation sets this to `false`).
    pub storage_taint: bool,
    /// Storage address modeling (Figure 8c ablation).
    pub storage_model: StorageModel,
    /// Internal: forbid guard defeat (guards stay effective even when
    /// tainted). Used to compute exact per-finding composite markers —
    /// a finding is *composite* iff it vanishes under this restriction.
    #[serde(default)]
    pub freeze_guards: bool,
    /// Run the IR optimization pipeline (constant propagation + dead
    /// code elimination) on the decompiled program before analysis.
    /// Verdict-preserving by construction; `false` is the ablation /
    /// differential-testing switch.
    pub optimize_ir: bool,
    /// Use interval-analysis branch pruning: blocks only reachable
    /// through `JumpI` edges proven dead are not attacker-reachable.
    /// Refines `ReachableByAttacker` monotonically (strictly fewer
    /// false positives behind statically-decided branches).
    pub range_guards: bool,
    /// Fixpoint evaluation strategy. **Deliberately excluded from
    /// [`Config::fingerprint`]**: the sparse and dense engines compute
    /// the same unique fixpoint of the same monotone rule system, so
    /// they can never change verdicts, findings, or fact counts — a
    /// guarantee enforced forever by the 500-contract differential test
    /// and the proptest equivalence suite in
    /// `crates/bench/tests/engine_differential.rs`. Keeping it out of
    /// the fingerprint means a result cache populated under one engine
    /// stays warm after switching engines (asserted by
    /// `crates/store/tests/resume.rs::warm_hits_survive_engine_switch`).
    #[serde(default)]
    pub engine: Engine,
    /// Record taint provenance and attach a source→sink
    /// [`Witness`](crate::witness::Witness) to every finding, via a
    /// second (dense, recording) fixpoint run. Costs roughly one extra
    /// dense fixpoint per contract; off by default. Like
    /// [`Config::engine`], **excluded from [`Config::fingerprint`]**:
    /// witnesses are derived observability riding on the verdicts, never
    /// changing findings, fact counts, or rounds — and the store strips
    /// them from cache entries and `merged.jsonl`, so a cache populated
    /// without witnesses stays warm when they are turned on.
    #[serde(default)]
    pub witness: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            guard_modeling: true,
            storage_taint: true,
            storage_model: StorageModel::Precise,
            freeze_guards: false,
            optimize_ir: true,
            range_guards: true,
            engine: Engine::default(),
            witness: false,
        }
    }
}

/// Version tag for the canonical [`Config::fingerprint`] encoding. Bump
/// whenever a field is added, removed, or its meaning changes, so stale
/// cache entries keyed on the old encoding can never be mistaken for
/// results of the new analysis.
const FINGERPRINT_DOMAIN: &str = "ethainter-config-v1";

impl Config {
    /// Stable 256-bit fingerprint of the *effective* analysis
    /// configuration — the config half of `crates/store`'s
    /// content-addressed cache key.
    ///
    /// The fingerprint is the Keccak-256 of a canonical textual encoding
    /// that names every field explicitly (`guard_modeling=true;…`), so:
    ///
    /// - equal configs always fingerprint equally, across processes and
    ///   runs (no dependence on struct layout or hasher seeds);
    /// - flipping any single switch — including the ablations and the
    ///   IR-pass toggles — produces a different fingerprint;
    /// - adding a field later forces a new encoding (the field list is
    ///   spelled out here), and the `ethainter-config-v1` domain tag
    ///   versions the scheme itself.
    ///
    /// Two fields are deliberately **not** part of the fingerprint:
    /// [`Config::engine`] and [`Config::witness`]. The fingerprint's
    /// contract is "equal fingerprints ⇒ equal verdicts", and the engine
    /// cannot change verdicts by the differential guarantee (both
    /// engines reach the same unique fixpoint of the same monotone
    /// rules). Including it would cold-start every result cache on an
    /// engine switch for no correctness gain; excluding it makes warm
    /// hits survive `--engine dense` ⇄ `--engine sparse`. Likewise
    /// `witness` only adds derived observability (stripped from cache
    /// entries anyway) and can never change a verdict. If a future
    /// engine is ever *not* verdict-equivalent, it must be a new
    /// analyzer version ([`crate::ANALYZER_VERSION`] bump), not a
    /// fingerprint field.
    pub fn fingerprint(&self) -> [u8; 32] {
        let canonical = format!(
            "{FINGERPRINT_DOMAIN};guard_modeling={};storage_taint={};storage_model={};\
             freeze_guards={};optimize_ir={};range_guards={}",
            self.guard_modeling,
            self.storage_taint,
            match self.storage_model {
                StorageModel::Precise => "precise",
                StorageModel::Conservative => "conservative",
            },
            self.freeze_guards,
            self.optimize_ir,
            self.range_guards,
        );
        evm::keccak256(canonical.as_bytes())
    }

    /// [`Config::fingerprint`] as lowercase hex (manifest / display form).
    pub fn fingerprint_hex(&self) -> String {
        self.fingerprint().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Figure 8a: no storage modeling (completeness ablation).
    pub fn no_storage_taint() -> Self {
        Config { storage_taint: false, ..Config::default() }
    }

    /// Figure 8b: no guard modeling (precision ablation).
    pub fn no_guard_model() -> Self {
        Config { guard_modeling: false, ..Config::default() }
    }

    /// Figure 8c: conservative storage modeling (precision ablation).
    pub fn conservative_storage() -> Self {
        Config { storage_model: StorageModel::Conservative, ..Config::default() }
    }

    /// IR passes off: raw decompiler output, no branch pruning — the
    /// baseline side of the pass-pipeline differential test.
    pub fn no_passes() -> Self {
        Config { optimize_ir: false, range_guards: false, ..Config::default() }
    }
}
