//! Analysis configuration — including the §6.4 ablation switches.

use serde::{Deserialize, Serialize};

/// How statically-unresolved storage addresses are treated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum StorageModel {
    /// The paper's default: only constant slots and recognized
    /// data-structure addresses participate; unknown addresses are
    /// ignored except for the `StorageWrite-2` rule (tainted value *and*
    /// tainted address taints every known slot). Favors precision (§4.4).
    #[default]
    Precise,
    /// Figure 8c: any store to an unknown location may reach any
    /// location, and loads from unknown locations are tainted whenever
    /// any tainted unknown store exists. Favors completeness, hurts
    /// precision.
    Conservative,
}

/// Analysis switches. The defaults reproduce the paper's main
/// configuration; the ablations of Figure 8 flip one switch each.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Config {
    /// Model guards (Figure 8b ablation sets this to `false`:
    /// every statement becomes attacker-reachable).
    pub guard_modeling: bool,
    /// Allow taint to propagate through persistent storage — and hence
    /// across transactions (Figure 8a ablation sets this to `false`).
    pub storage_taint: bool,
    /// Storage address modeling (Figure 8c ablation).
    pub storage_model: StorageModel,
    /// Internal: forbid guard defeat (guards stay effective even when
    /// tainted). Used to compute exact per-finding composite markers —
    /// a finding is *composite* iff it vanishes under this restriction.
    #[serde(default)]
    pub freeze_guards: bool,
    /// Run the IR optimization pipeline (constant propagation + dead
    /// code elimination) on the decompiled program before analysis.
    /// Verdict-preserving by construction; `false` is the ablation /
    /// differential-testing switch.
    pub optimize_ir: bool,
    /// Use interval-analysis branch pruning: blocks only reachable
    /// through `JumpI` edges proven dead are not attacker-reachable.
    /// Refines `ReachableByAttacker` monotonically (strictly fewer
    /// false positives behind statically-decided branches).
    pub range_guards: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            guard_modeling: true,
            storage_taint: true,
            storage_model: StorageModel::Precise,
            freeze_guards: false,
            optimize_ir: true,
            range_guards: true,
        }
    }
}

/// Version tag for the canonical [`Config::fingerprint`] encoding. Bump
/// whenever a field is added, removed, or its meaning changes, so stale
/// cache entries keyed on the old encoding can never be mistaken for
/// results of the new analysis.
const FINGERPRINT_DOMAIN: &str = "ethainter-config-v1";

impl Config {
    /// Stable 256-bit fingerprint of the *effective* analysis
    /// configuration — the config half of `crates/store`'s
    /// content-addressed cache key.
    ///
    /// The fingerprint is the Keccak-256 of a canonical textual encoding
    /// that names every field explicitly (`guard_modeling=true;…`), so:
    ///
    /// - equal configs always fingerprint equally, across processes and
    ///   runs (no dependence on struct layout or hasher seeds);
    /// - flipping any single switch — including the ablations and the
    ///   IR-pass toggles — produces a different fingerprint;
    /// - adding a field later forces a new encoding (the field list is
    ///   spelled out here), and the `ethainter-config-v1` domain tag
    ///   versions the scheme itself.
    pub fn fingerprint(&self) -> [u8; 32] {
        let canonical = format!(
            "{FINGERPRINT_DOMAIN};guard_modeling={};storage_taint={};storage_model={};\
             freeze_guards={};optimize_ir={};range_guards={}",
            self.guard_modeling,
            self.storage_taint,
            match self.storage_model {
                StorageModel::Precise => "precise",
                StorageModel::Conservative => "conservative",
            },
            self.freeze_guards,
            self.optimize_ir,
            self.range_guards,
        );
        evm::keccak256(canonical.as_bytes())
    }

    /// [`Config::fingerprint`] as lowercase hex (manifest / display form).
    pub fn fingerprint_hex(&self) -> String {
        self.fingerprint().iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Figure 8a: no storage modeling (completeness ablation).
    pub fn no_storage_taint() -> Self {
        Config { storage_taint: false, ..Config::default() }
    }

    /// Figure 8b: no guard modeling (precision ablation).
    pub fn no_guard_model() -> Self {
        Config { guard_modeling: false, ..Config::default() }
    }

    /// Figure 8c: conservative storage modeling (precision ablation).
    pub fn conservative_storage() -> Self {
        Config { storage_model: StorageModel::Conservative, ..Config::default() }
    }

    /// IR passes off: raw decompiler output, no branch pruning — the
    /// baseline side of the pass-pipeline differential test.
    pub fn no_passes() -> Self {
        Config { optimize_ir: false, range_guards: false, ..Config::default() }
    }
}
