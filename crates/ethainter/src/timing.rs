//! Per-phase wall-clock timing for the analysis pipeline.
//!
//! A zero-dependency, monotonic-clock ([`std::time::Instant`]) timing
//! layer: each pipeline stage accumulates microseconds into one field
//! of [`PhaseTimings`], which rides on
//! [`Stats`](crate::report::Stats) and on the batch driver's
//! `Status::Analyzed` JSONL records. Timings are *observability, not
//! verdicts*: `crates/store` strips them from cache entries and
//! `merged.jsonl` so deterministic outputs stay byte-comparable across
//! machines and engines (see `store::checkpoint::VerdictRecord`).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Microseconds spent in each pipeline phase for one contract.
///
/// The five phases cover the whole cold-scan pipeline:
///
/// 1. `decompile` — bytecode → TAC (context-cloning abstract
///    interpretation);
/// 2. `passes` — the IR optimization pipeline (constprop + DCE), when
///    enabled;
/// 3. `index_build` — one-time analysis indexes: def/use sites,
///    constants, `DS`/`DSA`, guard discovery, and the sparse engine's
///    edge maps;
/// 4. `fixpoint` — the mutually-recursive taint/guard-defeat fixpoint
///    (the engine-dependent hot path the `BENCH_fixpoint.json`
///    trajectory tracks);
/// 5. `sink_scan` — detectors, the tainted-owner sink scan, and the
///    composite-marker pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Bytecode → TAC decompilation, µs.
    #[serde(default)]
    pub decompile_us: u64,
    /// IR optimization passes, µs (0 when `optimize_ir` is off).
    #[serde(default)]
    pub passes_us: u64,
    /// Analysis index construction, µs.
    #[serde(default)]
    pub index_build_us: u64,
    /// Taint/guard-defeat fixpoint, µs.
    #[serde(default)]
    pub fixpoint_us: u64,
    /// Detectors + sink scan + composite markers, µs.
    #[serde(default)]
    pub sink_scan_us: u64,
}

impl PhaseTimings {
    /// Total microseconds across all phases.
    pub fn total_us(&self) -> u64 {
        self.decompile_us
            + self.passes_us
            + self.index_build_us
            + self.fixpoint_us
            + self.sink_scan_us
    }
}

/// A running phase stopwatch over the monotonic clock.
///
/// ```
/// use ethainter::timing::{PhaseTimer, PhaseTimings};
/// let mut t = PhaseTimings::default();
/// let timer = PhaseTimer::start();
/// // ... do the work ...
/// t.fixpoint_us += timer.elapsed_us();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer(Instant);

impl PhaseTimer {
    /// Starts the stopwatch.
    pub fn start() -> PhaseTimer {
        PhaseTimer(Instant::now())
    }

    /// Microseconds since [`PhaseTimer::start`] (saturating).
    pub fn elapsed_us(&self) -> u64 {
        self.0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_phases() {
        let t = PhaseTimings {
            decompile_us: 1,
            passes_us: 2,
            index_build_us: 3,
            fixpoint_us: 4,
            sink_scan_us: 5,
        };
        assert_eq!(t.total_us(), 15);
    }

    #[test]
    fn timer_is_monotone() {
        let timer = PhaseTimer::start();
        let a = timer.elapsed_us();
        let b = timer.elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn default_serializes_and_round_trips() {
        let t = PhaseTimings { fixpoint_us: 42, ..Default::default() };
        let json = serde_json::to_string(&t).unwrap();
        let back: PhaseTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
