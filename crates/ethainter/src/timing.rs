//! Per-phase wall-clock timing for the analysis pipeline.
//!
//! A zero-dependency, monotonic-clock ([`std::time::Instant`]) timing
//! layer: each pipeline stage accumulates microseconds into one field
//! of [`PhaseTimings`], which rides on
//! [`Stats`](crate::report::Stats) and on the batch driver's
//! `Status::Analyzed` JSONL records. Timings are *observability, not
//! verdicts*: `crates/store` strips them from cache entries and
//! `merged.jsonl` so deterministic outputs stay byte-comparable across
//! machines and engines (see `store::checkpoint::VerdictRecord`).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Microseconds spent in each pipeline phase for one contract.
///
/// The seven phases cover the whole scan pipeline:
///
/// 1. `cache_lookup` — result-cache key derivation + lookup, when the
///    scan runs with a cache (0 otherwise);
/// 2. `decompile` — bytecode → TAC (context-cloning abstract
///    interpretation);
/// 3. `passes` — the IR optimization pipeline (constprop + DCE), when
///    enabled;
/// 4. `index_build` — one-time analysis indexes: def/use sites,
///    constants, `DS`/`DSA`, guard discovery, and the sparse engine's
///    edge maps;
/// 5. `fixpoint` — the mutually-recursive taint/guard-defeat fixpoint
///    (the engine-dependent hot path the `BENCH_fixpoint.json`
///    trajectory tracks);
/// 6. `sink_scan` — detectors, the tainted-owner sink scan, and the
///    composite-marker pass;
/// 7. `witness` — the provenance replay + source→sink path
///    reconstruction, when [`Config::witness`](crate::Config) is on.
///
/// The `sink_scan` phase additionally carries a three-way breakdown —
/// `detectors_us` (the per-opcode sink sweeps), `effects_us` (the
/// effect-summary and branch-region detector suite), and `composite_us`
/// (the frozen re-evaluation that computes exact composite markers) —
/// so the composite re-run can never hide inside an opaque number.
/// The breakdown fields are `Option`s that serialize as *absent* when
/// unset: zeroed (stripped) timings in cache entries and `merged.jsonl`
/// stay byte-identical to records written before the split. Invariant:
/// when stamped via [`PhaseTimings::stamp_sink_scan`],
/// `sink_scan_us == detectors_us + effects_us + composite_us`, and the
/// sub-phases are **not** added again by [`PhaseTimings::phase_sum`]
/// (they are contained in `sink_scan_us`).
///
/// `total_us` is a *derived* field: whoever finishes stamping phases
/// calls [`PhaseTimings::stamp_total`], establishing the invariant
/// `total_us == phase_sum()` that the driver tests assert.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Result-cache key + lookup, µs (0 when scanning without a cache).
    #[serde(default)]
    pub cache_lookup_us: u64,
    /// Bytecode → TAC decompilation, µs.
    #[serde(default)]
    pub decompile_us: u64,
    /// IR optimization passes, µs (0 when `optimize_ir` is off).
    #[serde(default)]
    pub passes_us: u64,
    /// Analysis index construction, µs.
    #[serde(default)]
    pub index_build_us: u64,
    /// Taint/guard-defeat fixpoint, µs.
    #[serde(default)]
    pub fixpoint_us: u64,
    /// Detectors + sink scan + composite markers, µs. When the
    /// breakdown fields below are stamped, this is exactly their sum.
    #[serde(default)]
    pub sink_scan_us: u64,
    /// Sub-phase of `sink_scan`: the per-opcode detector sweeps
    /// (selfdestruct/delegatecall/staticcall sinks + the tainted-owner
    /// scan), µs. Absent on records predating the split and on stripped
    /// (zeroed) timings, so deterministic artifacts stay byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub detectors_us: Option<u64>,
    /// Sub-phase of `sink_scan`: the effect-summary and branch-region
    /// detector suite (reentrancy, unchecked call return, tx.origin,
    /// timestamp dependence), µs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub effects_us: Option<u64>,
    /// Sub-phase of `sink_scan`: the frozen re-evaluation computing the
    /// exact composite (✰) markers, µs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub composite_us: Option<u64>,
    /// Provenance replay + witness path reconstruction, µs.
    #[serde(default)]
    pub witness_us: u64,
    /// Sum of all phases, stamped by [`PhaseTimings::stamp_total`].
    #[serde(default)]
    pub total_us: u64,
}

impl PhaseTimings {
    /// Sum of every per-phase field (everything except `total_us`).
    pub fn phase_sum(&self) -> u64 {
        self.cache_lookup_us
            + self.decompile_us
            + self.passes_us
            + self.index_build_us
            + self.fixpoint_us
            + self.sink_scan_us
            + self.witness_us
    }

    /// Re-derives `total_us` from the phases. Call after the last phase
    /// is stamped (and again if a later layer adds one, e.g. the
    /// scanner adding `cache_lookup_us`).
    pub fn stamp_total(&mut self) {
        self.total_us = self.phase_sum();
    }

    /// Stamps the sink-scan phase from its three sub-phases,
    /// establishing `sink_scan_us == detectors_us + effects_us +
    /// composite_us`.
    pub fn stamp_sink_scan(&mut self, detectors_us: u64, effects_us: u64, composite_us: u64) {
        self.detectors_us = Some(detectors_us);
        self.effects_us = Some(effects_us);
        self.composite_us = Some(composite_us);
        self.sink_scan_us = detectors_us + effects_us + composite_us;
    }

    /// The sink-scan breakdown `(detectors, effects, composite)` in µs,
    /// when stamped.
    pub fn sink_scan_breakdown(&self) -> Option<(u64, u64, u64)> {
        Some((self.detectors_us?, self.effects_us?, self.composite_us?))
    }
}

/// A running phase stopwatch over the monotonic clock.
///
/// ```
/// use ethainter::timing::{PhaseTimer, PhaseTimings};
/// let mut t = PhaseTimings::default();
/// let timer = PhaseTimer::start();
/// // ... do the work ...
/// t.fixpoint_us += timer.elapsed_us();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer(Instant);

impl PhaseTimer {
    /// Starts the stopwatch.
    pub fn start() -> PhaseTimer {
        PhaseTimer(Instant::now())
    }

    /// Microseconds since [`PhaseTimer::start`] (saturating).
    pub fn elapsed_us(&self) -> u64 {
        self.0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_total_establishes_the_phase_sum_invariant() {
        let mut t = PhaseTimings {
            cache_lookup_us: 1,
            decompile_us: 2,
            passes_us: 3,
            index_build_us: 4,
            fixpoint_us: 5,
            sink_scan_us: 6,
            witness_us: 7,
            total_us: 0,
            ..Default::default()
        };
        assert_eq!(t.phase_sum(), 28);
        t.stamp_total();
        assert_eq!(t.total_us, t.phase_sum());
        // Re-stamping after a later layer adds a phase keeps it true.
        t.cache_lookup_us += 100;
        t.stamp_total();
        assert_eq!(t.total_us, 128);
    }

    #[test]
    fn timer_is_monotone() {
        let timer = PhaseTimer::start();
        let a = timer.elapsed_us();
        let b = timer.elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn default_serializes_and_round_trips() {
        let t = PhaseTimings { fixpoint_us: 42, ..Default::default() };
        let json = serde_json::to_string(&t).unwrap();
        let back: PhaseTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn stamp_sink_scan_sets_the_sum_and_the_breakdown() {
        let mut t = PhaseTimings::default();
        t.stamp_sink_scan(10, 20, 30);
        assert_eq!(t.sink_scan_us, 60);
        assert_eq!(t.sink_scan_breakdown(), Some((10, 20, 30)));
        t.stamp_total();
        // The sub-phases are contained in sink_scan_us, never
        // double-counted by the phase sum.
        assert_eq!(t.total_us, 60);
    }

    #[test]
    fn unset_breakdown_serializes_as_absent_for_byte_identity() {
        // Stripped (default) timings must serialize exactly as they did
        // before the sub-phase split: deterministic artifacts (cache
        // entries, merged.jsonl) embed this zeroed struct verbatim.
        let json = serde_json::to_string(&PhaseTimings::default()).unwrap();
        assert!(!json.contains("detectors_us"), "{json}");
        assert!(!json.contains("effects_us"), "{json}");
        assert!(!json.contains("composite_us"), "{json}");
        assert!(json.contains("\"sink_scan_us\":0"), "{json}");
        // Pre-split records (no breakdown fields) still deserialize.
        let back: PhaseTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PhaseTimings::default());
        // Stamped breakdowns round-trip.
        let mut t = PhaseTimings::default();
        t.stamp_sink_scan(1, 2, 3);
        let full = serde_json::to_string(&t).unwrap();
        assert!(full.contains("\"detectors_us\":1"), "{full}");
        let back: PhaseTimings = serde_json::from_str(&full).unwrap();
        assert_eq!(back, t);
    }
}
