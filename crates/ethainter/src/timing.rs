//! Per-phase wall-clock timing for the analysis pipeline.
//!
//! A zero-dependency, monotonic-clock ([`std::time::Instant`]) timing
//! layer: each pipeline stage accumulates microseconds into one field
//! of [`PhaseTimings`], which rides on
//! [`Stats`](crate::report::Stats) and on the batch driver's
//! `Status::Analyzed` JSONL records. Timings are *observability, not
//! verdicts*: `crates/store` strips them from cache entries and
//! `merged.jsonl` so deterministic outputs stay byte-comparable across
//! machines and engines (see `store::checkpoint::VerdictRecord`).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Microseconds spent in each pipeline phase for one contract.
///
/// The seven phases cover the whole scan pipeline:
///
/// 1. `cache_lookup` — result-cache key derivation + lookup, when the
///    scan runs with a cache (0 otherwise);
/// 2. `decompile` — bytecode → TAC (context-cloning abstract
///    interpretation);
/// 3. `passes` — the IR optimization pipeline (constprop + DCE), when
///    enabled;
/// 4. `index_build` — one-time analysis indexes: def/use sites,
///    constants, `DS`/`DSA`, guard discovery, and the sparse engine's
///    edge maps;
/// 5. `fixpoint` — the mutually-recursive taint/guard-defeat fixpoint
///    (the engine-dependent hot path the `BENCH_fixpoint.json`
///    trajectory tracks);
/// 6. `sink_scan` — detectors, the tainted-owner sink scan, and the
///    composite-marker pass;
/// 7. `witness` — the provenance replay + source→sink path
///    reconstruction, when [`Config::witness`](crate::Config) is on.
///
/// `total_us` is a *derived* field: whoever finishes stamping phases
/// calls [`PhaseTimings::stamp_total`], establishing the invariant
/// `total_us == phase_sum()` that the driver tests assert.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Result-cache key + lookup, µs (0 when scanning without a cache).
    #[serde(default)]
    pub cache_lookup_us: u64,
    /// Bytecode → TAC decompilation, µs.
    #[serde(default)]
    pub decompile_us: u64,
    /// IR optimization passes, µs (0 when `optimize_ir` is off).
    #[serde(default)]
    pub passes_us: u64,
    /// Analysis index construction, µs.
    #[serde(default)]
    pub index_build_us: u64,
    /// Taint/guard-defeat fixpoint, µs.
    #[serde(default)]
    pub fixpoint_us: u64,
    /// Detectors + sink scan + composite markers, µs.
    #[serde(default)]
    pub sink_scan_us: u64,
    /// Provenance replay + witness path reconstruction, µs.
    #[serde(default)]
    pub witness_us: u64,
    /// Sum of all phases, stamped by [`PhaseTimings::stamp_total`].
    #[serde(default)]
    pub total_us: u64,
}

impl PhaseTimings {
    /// Sum of every per-phase field (everything except `total_us`).
    pub fn phase_sum(&self) -> u64 {
        self.cache_lookup_us
            + self.decompile_us
            + self.passes_us
            + self.index_build_us
            + self.fixpoint_us
            + self.sink_scan_us
            + self.witness_us
    }

    /// Re-derives `total_us` from the phases. Call after the last phase
    /// is stamped (and again if a later layer adds one, e.g. the
    /// scanner adding `cache_lookup_us`).
    pub fn stamp_total(&mut self) {
        self.total_us = self.phase_sum();
    }
}

/// A running phase stopwatch over the monotonic clock.
///
/// ```
/// use ethainter::timing::{PhaseTimer, PhaseTimings};
/// let mut t = PhaseTimings::default();
/// let timer = PhaseTimer::start();
/// // ... do the work ...
/// t.fixpoint_us += timer.elapsed_us();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer(Instant);

impl PhaseTimer {
    /// Starts the stopwatch.
    pub fn start() -> PhaseTimer {
        PhaseTimer(Instant::now())
    }

    /// Microseconds since [`PhaseTimer::start`] (saturating).
    pub fn elapsed_us(&self) -> u64 {
        self.0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_total_establishes_the_phase_sum_invariant() {
        let mut t = PhaseTimings {
            cache_lookup_us: 1,
            decompile_us: 2,
            passes_us: 3,
            index_build_us: 4,
            fixpoint_us: 5,
            sink_scan_us: 6,
            witness_us: 7,
            total_us: 0,
        };
        assert_eq!(t.phase_sum(), 28);
        t.stamp_total();
        assert_eq!(t.total_us, t.phase_sum());
        // Re-stamping after a later layer adds a phase keeps it true.
        t.cache_lookup_us += 100;
        t.stamp_total();
        assert_eq!(t.total_us, 128);
    }

    #[test]
    fn timer_is_monotone() {
        let timer = PhaseTimer::start();
        let a = timer.elapsed_us();
        let b = timer.elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn default_serializes_and_round_trips() {
        let t = PhaseTimings { fixpoint_us: 42, ..Default::default() };
        let json = serde_json::to_string(&t).unwrap();
        let back: PhaseTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
