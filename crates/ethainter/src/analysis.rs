//! The Ethainter analysis over decompiled TAC — the implementation-level
//! mutual recursion of Figure 5.
//!
//! The relations and their paper names:
//!
//! - `StaticallyGuardedStatement(s, p)` → guards: a `JUMPI` whose
//!   chosen successor dominates `s`, with condition `p` scrutinizing the
//!   caller (directly, or via a sender-keyed data-structure lookup —
//!   Figure 4's `DS`/`DSA`).
//! - `ReachableByAttacker(s)` → per-block `rba`: `s` is unguarded, or
//!   every sanitizing guard dominating `s` has been defeated.
//! - `TaintedFlow` / `AttackerModelInfoflow` → the two taint flavors:
//!   *input* taint propagates only through attacker-reachable statements
//!   (guards sanitize it — Figure 3's `Guard-2`), while *storage* taint
//!   propagates unconditionally (`Guard-1`: sender guards cannot remove
//!   taint that reached persistent storage).
//! - Guard defeat is the composite-vulnerability engine: a tainted guard
//!   condition (`Uguard-T`), or a guard reading a data structure the
//!   attacker can enroll themselves in, makes more statements
//!   attacker-reachable, which introduces more taint, which defeats more
//!   guards — evaluated to mutual fixpoint.
//!
//! This module orchestrates; the fixpoint itself lives in the crate's
//! private `engine` module, which offers two verdict-equivalent
//! evaluation strategies selected by [`Config::engine`] — the naive
//! `dense` re-scan and the worklist-driven `sparse` engine. Each
//! pipeline phase is wall-clock timed into [`Stats::timings`].

use crate::config::{Config, Engine};
use crate::engine::indexes::SparseIndexes;
use crate::engine::provenance::Provenance;
use crate::engine::{self, Ctx, GuardKind, KeyClass, Prepared, State};
use crate::report::{FactCounts, Finding, Report, Stats, Vuln};
use crate::timing::PhaseTimings;
use crate::witness;
use decompiler::{BlockId, DefUse, Dominators, Op, Program, Stmt, StmtId, Var};
use evm::opcode::Opcode;
use evm::U256;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

thread_local! {
    /// Cooperative wall-clock deadline for the *current thread's*
    /// analysis, installed by [`with_deadline`]. Checked between fixpoint
    /// passes so a batch driver that abandons a timed-out worker thread
    /// can rely on that thread unwinding its work soon after, instead of
    /// spinning to the 64-round cap on a pathological contract.
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Runs `f` with a cooperative deadline installed for this thread.
///
/// Any [`analyze`] call made inside `f` (on the same thread) checks the
/// deadline between fixpoint passes and, once it has passed, stops
/// early with [`Report::timed_out`] set. The previous deadline (if any)
/// is restored on exit, including on unwind.
pub fn with_deadline<R>(deadline: Instant, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let _restore = Restore(DEADLINE.with(|d| d.replace(Some(deadline))));
    f()
}

/// True once the thread's installed deadline (if any) has passed.
pub(crate) fn deadline_exceeded() -> bool {
    DEADLINE.with(|d| d.get()).is_some_and(|t| Instant::now() >= t)
}

/// Runs the Ethainter analysis on a decompiled program.
pub fn analyze(p: &Program, cfg: &Config) -> Report {
    let mut report = Report {
        timed_out: p.incomplete,
        stats: Stats {
            blocks: p.blocks.len(),
            stmts: p.stmts.len(),
            rounds: 0,
            facts: FactCounts::default(),
            timings: PhaseTimings::default(),
        },
        ..Report::default()
    };
    if p.incomplete || p.blocks.is_empty() {
        return report;
    }

    // ---- Index build: every one-time structure the engines share -------
    let sp_index = telemetry::span("ethainter.index_build");

    let dom = Dominators::compute(p);

    // Range-proven branch pruning: interval analysis proves some JumpI
    // edges never taken; blocks only reachable through dead edges can
    // never execute, so they are not attacker-reachable. This
    // monotonically refines ReachableByAttacker (strictly fewer findings
    // behind statically-decided branches).
    let (live_block, n_dead_edges) = if cfg.range_guards {
        let iv = decompiler::passes::intervals::analyze(p);
        let dead: HashSet<(u32, usize)> =
            iv.dead_edges.iter().map(|&(b, i)| (b.0, i)).collect();
        let mut live = vec![false; p.blocks.len()];
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            let bi = b.0 as usize;
            if live[bi] {
                continue;
            }
            live[bi] = true;
            for (i, &s) in p.blocks[bi].succs.iter().enumerate() {
                if !dead.contains(&(b.0, i)) {
                    stack.push(s);
                }
            }
        }
        (live, dead.len())
    } else {
        (vec![true; p.blocks.len()], 0)
    };

    let mut ctx = Ctx {
        p,
        du: DefUse::build(p),
        consts: vec![None; p.n_vars as usize],
        ds: vec![false; p.n_vars as usize],
        dsa: vec![false; p.n_vars as usize],
        saddr_cache: HashMap::new(),
    };
    ctx.compute_consts();
    ctx.compute_ds();

    // Guards (StaticallyGuardedStatement).
    let guards = if cfg.guard_modeling { ctx.find_guards(&dom) } else { Vec::new() };

    // Memory def-use: const offset → (store stmts, value vars).
    let mut mem_stores: HashMap<U256, Vec<(StmtId, Var)>> = HashMap::new();
    for s in p.iter_stmts() {
        if s.op == Op::MStore {
            if let Some(off) = ctx.consts[s.uses[0].0 as usize] {
                mem_stores.entry(off).or_default().push((s.id, s.uses[1]));
            }
        }
    }

    // Intern the slot universe and resolve per-statement key
    // classifications once; both engines then run atom-indexed.
    let prep = Prepared::build(ctx, guards, dom, live_block, n_dead_edges, mem_stores);
    let mut st = State::new(&prep);
    // The sparse engine's edge maps are part of its index-build cost;
    // the dense engine never pays for them.
    let sparse_idx = (cfg.engine == Engine::Sparse).then(|| SparseIndexes::build(&prep));
    report.stats.timings.index_build_us = sp_index.finish_us();

    // ---- Mutually-recursive fixpoint ------------------------------------
    let sp_fix = telemetry::span("ethainter.fixpoint");
    match &sparse_idx {
        Some(idx) => engine::sparse::run(cfg, &prep, idx, &mut st),
        None => engine::dense::run(cfg, &prep, &mut st),
    }
    report.stats.timings.fixpoint_us = sp_fix.finish_us();

    if st.timed_out {
        report.timed_out = true;
    }
    report.stats.rounds = st.rounds;
    report.stats.facts = FactCounts {
        input_tainted: st.input_tainted.iter().filter(|&&t| t).count(),
        storage_tainted: st.storage_tainted.iter().filter(|&&t| t).count(),
        tainted_slots: st.tainted_slots.len(),
        tainted_mappings: st.tainted_mappings.len(),
        writable_mappings: st.writable_mappings.len(),
        guards: prep.guards.len(),
        defeated_guards: st.defeated.iter().filter(|&&d| d).count(),
        consts: prep.ctx.consts.iter().filter(|c| c.is_some()).count(),
        ds: prep.ctx.ds.iter().filter(|&&t| t).count(),
        dsa: prep.ctx.dsa.iter().filter(|&&t| t).count(),
        rba_blocks: st.rba.iter().filter(|&&t| t).count(),
        dead_edges: prep.n_dead_edges,
        origin_tainted: st.origin_tainted.iter().filter(|&&t| t).count(),
        time_tainted: st.time_tainted.iter().filter(|&&t| t).count(),
    };
    report.defeated_guards = prep
        .guards
        .iter()
        .zip(&st.defeated)
        .filter(|(_, &d)| d)
        .map(|(g, _)| g.pc)
        .collect();
    report.defeated_guards.sort_unstable();
    report.defeated_guards.dedup();

    // ---- Detectors + sink scan + composite markers ----------------------
    let sp_sink = telemetry::span("ethainter.sink_scan");

    let selectors_of = |b: BlockId| -> Vec<u32> {
        p.block_functions.get(b.0 as usize).cloned().unwrap_or_default()
    };
    let tainted =
        |v: Var| st.input_tainted[v.0 as usize] || st.storage_tainted[v.0 as usize];

    for s in p.iter_stmts() {
        match &s.op {
            Op::SelfDestruct => {
                if st.rba[s.block.0 as usize] {
                    report.findings.push(Finding {
                        vuln: Vuln::AccessibleSelfDestruct,
                        stmt: s.id.0,
                        pc: s.pc,
                        selectors: selectors_of(s.block),
                        composite: st.any_defeat,
                    });
                }
                if tainted(s.uses[0]) {
                    report.findings.push(Finding {
                        vuln: Vuln::TaintedSelfDestruct,
                        stmt: s.id.0,
                        pc: s.pc,
                        selectors: selectors_of(s.block),
                        composite: st.any_defeat,
                    });
                }
            }
            Op::Call { kind: Opcode::DelegateCall }
                // uses: [gas, target, in_off, in_len, out_off, out_len]
                if tainted(s.uses[1]) => {
                    report.findings.push(Finding {
                        vuln: Vuln::TaintedDelegateCall,
                        stmt: s.id.0,
                        pc: s.pc,
                        selectors: selectors_of(s.block),
                        composite: st.any_defeat,
                    });
                }
            Op::Call { kind: Opcode::StaticCall } => {
                if let Some(f) = detect_unchecked_staticcall(
                    &prep.ctx,
                    s,
                    &st.rba,
                    &st.input_tainted,
                    &st.storage_tainted,
                    &prep.mem_stores,
                ) {
                    report.findings.push(Finding {
                        selectors: selectors_of(s.block),
                        composite: st.any_defeat,
                        ..f
                    });
                }
            }
            _ => {}
        }
    }

    // Tainted owner variable (§4.5): a slot compared against the sender
    // in some guard is a sink; attacker-reachable tainted writes to it
    // are violations.
    let guard_slots: HashSet<U256> = prep
        .guards
        .iter()
        .flat_map(|g| {
            g.cond_kind.kinds().iter().filter_map(|k| match k {
                GuardKind::SenderEqSlot(v) => Some(*v),
                _ => None,
            })
        })
        .collect();
    // Pre-filter via per-function storage write summaries: when no
    // dispatched function can possibly write a guard slot, the
    // per-statement sink scan below cannot fire and is skipped outright.
    // (Summaries attribute statements in unowned blocks to every
    // function and widen on unresolved keys, so skipping is sound.)
    let sink_scan_needed = if !cfg.guard_modeling {
        true
    } else if guard_slots.is_empty() {
        false
    } else {
        let summaries = decompiler::passes::storage::summarize(p);
        summaries.is_empty()
            || summaries
                .iter()
                .any(|f| guard_slots.iter().any(|&slot| f.may_write(slot)))
    };
    if sink_scan_needed {
        for s in p.iter_stmts() {
            if s.op != Op::SStore || !st.rba[s.block.0 as usize] {
                continue;
            }
            let Some(KeyClass::Const(a)) = prep.key_class[s.id.0 as usize].as_ref()
            else {
                continue;
            };
            let v = *prep.slots.resolve(*a);
            let is_sink = if cfg.guard_modeling {
                guard_slots.contains(&v)
            } else {
                // Without guard modeling there is no sink inference —
                // every attacker-reachable tainted write to a constant
                // slot is flagged (the Figure 8b explosion).
                true
            };
            let value_attacker = st.input_tainted[s.uses[1].0 as usize]
                || st.storage_tainted[s.uses[1].0 as usize]
                || prep.ctx.ds[s.uses[1].0 as usize];
            if is_sink && value_attacker {
                report.findings.push(Finding {
                    vuln: Vuln::TaintedOwnerVariable,
                    stmt: s.id.0,
                    pc: s.pc,
                    selectors: selectors_of(s.block),
                    composite: st.any_defeat,
                });
            }
        }
    }

    // ---- Detector suite v2: effect/ordering + origin/time detectors ----
    // All four run over engine-independent inputs (the effect/ordering
    // summaries and the shared fixpoint state), so dense and sparse
    // verdicts stay byte-identical by construction.

    // Reentrancy + unchecked call return both need external-call sites;
    // the effect summary is only built when one exists (most contracts
    // have none, and the sink scan is already the dominant phase).
    let has_ext_call = p
        .iter_stmts()
        .any(|s| matches!(s.op, Op::Call { kind: Opcode::Call | Opcode::CallCode }));
    if has_ext_call {
        use decompiler::passes::effects;
        let eff = effects::summarize(p);
        // Unchecked call return: an attacker-reachable CALL whose
        // success flag never constrains a path or a storage write.
        for c in &eff.calls {
            let cs = p.stmt(c.stmt);
            if matches!(c.kind, Opcode::Call | Opcode::CallCode)
                && !c.checked
                && st.rba[cs.block.0 as usize]
            {
                report.findings.push(Finding {
                    vuln: Vuln::UncheckedCallReturn,
                    stmt: cs.id.0,
                    pc: cs.pc,
                    selectors: selectors_of(cs.block),
                    composite: st.any_defeat,
                });
            }
        }
        // Reentrancy: an attacker-reachable external call ordered before
        // the storage write of a cell that was read before the call
        // (checks-effects-interactions violation — the stale read is the
        // balance check a re-entrant caller exploits).
        for v in effects::reordered_writes(p, &prep.dom, &eff) {
            let cs = p.stmt(v.call);
            if st.rba[cs.block.0 as usize] {
                report.findings.push(Finding {
                    vuln: Vuln::Reentrancy,
                    stmt: cs.id.0,
                    pc: cs.pc,
                    selectors: selectors_of(cs.block),
                    composite: st.any_defeat,
                });
            }
        }
        // Timestamp dependence, value variant: a transferred value
        // (CALL's value operand) derived from TIMESTAMP.
        for c in &eff.calls {
            let cs = p.stmt(c.stmt);
            if matches!(c.kind, Opcode::Call | Opcode::CallCode)
                && st.time_tainted[cs.uses[2].0 as usize]
                && st.rba[cs.block.0 as usize]
            {
                report.findings.push(Finding {
                    vuln: Vuln::TimestampDependence,
                    stmt: cs.id.0,
                    pc: cs.pc,
                    selectors: selectors_of(cs.block),
                    composite: st.any_defeat,
                });
            }
        }
    }

    // tx.origin authentication + timestamp dependence (guard variant):
    // branch regions whose peeled condition carries origin/time taint,
    // gating a critical sink. `cond_regions` deliberately includes the
    // conditions the sanitizing-guard machinery rejects — an origin
    // comparison is precisely a non-sender guard.
    let any_origin = st.origin_tainted.iter().any(|&t| t);
    let any_time = st.time_tainted.iter().any(|&t| t);
    if any_origin || any_time {
        for r in prep.ctx.cond_regions(&prep.dom) {
            let js = p.stmt(r.stmt);
            if !st.rba[js.block.0 as usize] {
                continue;
            }
            let region_ops = || {
                r.region
                    .iter()
                    .flat_map(|b| p.block(*b).stmts.iter())
                    .map(|&sid| &p.stmt(sid).op)
            };
            // Auth sinks: any state change or control transfer the
            // origin check purports to protect.
            if any_origin && st.origin_tainted[r.cond.0 as usize] {
                let gates_sink = region_ops().any(|op| {
                    matches!(
                        op,
                        Op::SStore
                            | Op::SelfDestruct
                            | Op::Call {
                                kind: Opcode::Call
                                    | Opcode::CallCode
                                    | Opcode::DelegateCall
                            }
                    )
                });
                if gates_sink {
                    report.findings.push(Finding {
                        vuln: Vuln::TxOriginAuth,
                        stmt: js.id.0,
                        pc: js.pc,
                        selectors: selectors_of(js.block),
                        composite: st.any_defeat,
                    });
                }
            }
            // Timestamp sinks: money flows only — a time-dependent
            // branch over a plain state write is everyday Solidity.
            if any_time && st.time_tainted[r.cond.0 as usize] {
                let gates_money = region_ops().any(|op| {
                    matches!(
                        op,
                        Op::SelfDestruct
                            | Op::Call { kind: Opcode::Call | Opcode::CallCode }
                    )
                });
                if gates_money {
                    report.findings.push(Finding {
                        vuln: Vuln::TimestampDependence,
                        stmt: js.id.0,
                        pc: js.pc,
                        selectors: selectors_of(js.block),
                        composite: st.any_defeat,
                    });
                }
            }
        }
    }

    report.findings.sort_by_key(|f| (f.vuln, f.stmt));
    report.findings.dedup();

    // Exact composite (✰) markers: a finding is composite iff it does
    // not survive single-transaction reasoning — guards cannot be
    // defeated and taint cannot travel through storage across
    // transactions. One extra pass, only when escalation happened. (The
    // recursive run's own phase timings are discarded; its cost lands in
    // this sink_scan phase.)
    if (st.any_defeat || cfg.storage_taint) && !cfg.freeze_guards {
        let frozen = analyze(
            p,
            &Config {
                freeze_guards: true,
                storage_taint: false,
                witness: false,
                ..*cfg
            },
        );
        for f in &mut report.findings {
            let direct = frozen
                .findings
                .iter()
                .any(|g| g.vuln == f.vuln && g.stmt == f.stmt);
            f.composite = !direct;
        }
    } else {
        for f in &mut report.findings {
            f.composite = false;
        }
    }
    report.stats.timings.sink_scan_us = sp_sink.finish_us();

    // ---- Provenance witnesses (opt-in) ----------------------------------
    // Replay the fixpoint on the dense engine with a first-derivation
    // recorder and backtrack each finding to its axioms. The replay
    // starts from a fresh State and always runs dense, so witnesses are
    // byte-identical whatever engine produced the verdicts above.
    // Skipped for the composite-marker sub-analysis (`freeze_guards`)
    // and for timed-out contracts (partial relations would make the
    // paths misleading).
    if cfg.witness && !cfg.freeze_guards && !report.timed_out {
        let sp_wit = telemetry::span("ethainter.witness");
        let mut wst = State::new(&prep);
        let mut prov = Provenance::new(&prep);
        engine::dense::run_recording(cfg, &prep, &mut wst, &mut prov);
        report.witnesses =
            Some(witness::build(&report.findings, &prep, &wst, &prov));
        report.stats.timings.witness_us = sp_wit.finish_us();
        telemetry::metrics::counter("ethainter_witnesses_built_total")
            .add(report.findings.len() as u64);
    }

    report.stats.timings.stamp_total();
    report
}

fn detect_unchecked_staticcall(
    ctx: &Ctx<'_>,
    s: &Stmt,
    rba: &[bool],
    input_tainted: &[bool],
    storage_tainted: &[bool],
    mem_stores: &HashMap<U256, Vec<(StmtId, Var)>>,
) -> Option<Finding> {
    // uses: [gas, target, in_off, in_len, out_off, out_len]
    let in_off = ctx.consts[s.uses[2].0 as usize];
    let out_off = ctx.consts[s.uses[4].0 as usize];
    let out_len = ctx.consts[s.uses[5].0 as usize];
    // Output window must overlap the input window and be non-empty.
    let overlap = match (in_off, out_off) {
        (Some(a), Some(b)) => a == b,
        _ => s.uses[2] == s.uses[4],
    };
    if !overlap || out_len == Some(U256::ZERO) {
        return None;
    }
    if !rba[s.block.0 as usize] {
        return None;
    }
    // A RETURNDATASIZE check anywhere in the functions owning this call
    // counts as the fix (the Solidity-compiler-inserted pattern, §3.5).
    let owners = ctx.p.block_functions.get(s.block.0 as usize);
    let checked = ctx.p.iter_stmts().any(|t| {
        t.op == Op::Env(Opcode::ReturnDataSize)
            && match (owners, ctx.p.block_functions.get(t.block.0 as usize)) {
                (Some(a), Some(b)) => a.iter().any(|x| b.contains(x)),
                _ => t.block == s.block,
            }
    });
    if checked {
        return None;
    }
    // The trusted buffer must be attacker-influenced: either the input
    // window holds tainted data, or the call target is tainted.
    let buffer_tainted = in_off
        .and_then(|off| mem_stores.get(&off))
        .map(|stores| {
            stores.iter().any(|(_, v)| {
                input_tainted[v.0 as usize] || storage_tainted[v.0 as usize]
            })
        })
        .unwrap_or(false);
    let target_tainted =
        input_tainted[s.uses[1].0 as usize] || storage_tainted[s.uses[1].0 as usize];
    if !buffer_tainted && !target_tainted {
        return None;
    }
    Some(Finding {
        vuln: Vuln::UncheckedTaintedStaticCall,
        stmt: s.id.0,
        pc: s.pc,
        selectors: Vec::new(),
        composite: false,
    })
}
