//! The Ethainter analysis over decompiled TAC — the implementation-level
//! mutual recursion of Figure 5.
//!
//! The relations and their paper names:
//!
//! - `StaticallyGuardedStatement(s, p)` → guards: a `JUMPI` whose
//!   chosen successor dominates `s`, with condition `p` scrutinizing the
//!   caller (directly, or via a sender-keyed data-structure lookup —
//!   Figure 4's `DS`/`DSA`).
//! - `ReachableByAttacker(s)` → per-block `rba`: `s` is unguarded, or
//!   every sanitizing guard dominating `s` has been defeated.
//! - `TaintedFlow` / `AttackerModelInfoflow` → the two taint flavors:
//!   *input* taint propagates only through attacker-reachable statements
//!   (guards sanitize it — Figure 3's `Guard-2`), while *storage* taint
//!   propagates unconditionally (`Guard-1`: sender guards cannot remove
//!   taint that reached persistent storage).
//! - Guard defeat is the composite-vulnerability engine: a tainted guard
//!   condition (`Uguard-T`), or a guard reading a data structure the
//!   attacker can enroll themselves in, makes more statements
//!   attacker-reachable, which introduces more taint, which defeats more
//!   guards — evaluated to mutual fixpoint.
//!
//! This module orchestrates over the reusable
//! [`AnalysisArtifacts`] layer:
//! [`analyze`] builds the artifacts once, then evaluates — and the
//! composite (✰) marker pass is a *second evaluation* (frozen fixpoint +
//! detector sweep) over the very same artifacts, never a rebuild. The
//! fixpoint itself lives in the crate's private `engine` module, which
//! offers two verdict-equivalent evaluation strategies selected by
//! [`Config::engine`] — the naive `dense` re-scan and the
//! worklist-driven `sparse` engine. Each pipeline phase is wall-clock
//! timed into [`Stats::timings`], with the sink scan further split into
//! `detectors`/`effects`/`composite` sub-phases.

use crate::artifacts::{AnalysisArtifacts, Inner};
use crate::config::{Config, Engine};
use crate::engine::provenance::Provenance;
use crate::engine::{self, KeyClass, Prepared, State};
use crate::report::{FactCounts, Finding, Report, Stats, Vuln};
use crate::timing::PhaseTimings;
use crate::witness;
use decompiler::{BlockId, Op, Stmt, Var};
use evm::opcode::Opcode;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    /// Cooperative wall-clock deadline for the *current thread's*
    /// analysis, installed by [`with_deadline`]. Checked between fixpoint
    /// passes so a batch driver that abandons a timed-out worker thread
    /// can rely on that thread unwinding its work soon after, instead of
    /// spinning to the 64-round cap on a pathological contract.
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Runs `f` with a cooperative deadline installed for this thread.
///
/// Any [`analyze`] call made inside `f` (on the same thread) checks the
/// deadline between fixpoint passes and, once it has passed, stops
/// early with [`Report::timed_out`] set. The previous deadline (if any)
/// is restored on exit, including on unwind.
pub fn with_deadline<R>(deadline: Instant, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let _restore = Restore(DEADLINE.with(|d| d.replace(Some(deadline))));
    f()
}

/// True once the thread's installed deadline (if any) has passed.
pub(crate) fn deadline_exceeded() -> bool {
    DEADLINE.with(|d| d.get()).is_some_and(|t| Instant::now() >= t)
}

/// Runs the Ethainter analysis on a decompiled program.
///
/// Equivalent to `AnalysisArtifacts::build(p, cfg).evaluate(cfg)` —
/// callers that evaluate the same program more than once (batch
/// experiments sweeping evaluation-only config switches) should hold
/// the artifacts and call [`AnalysisArtifacts::evaluate`] themselves.
pub fn analyze(p: &decompiler::Program, cfg: &Config) -> Report {
    AnalysisArtifacts::build(p, cfg).evaluate(cfg)
}

/// Dispatches the fixpoint to the configured engine over borrowed
/// artifacts. The sparse indexes are memoized in the artifacts, so a
/// second call (the frozen composite pass) never rebuilds them.
fn run_engine(cfg: &Config, inner: &Inner<'_>, st: &mut State) {
    match cfg.engine {
        Engine::Sparse => engine::sparse::run(cfg, &inner.prep, inner.sparse_indexes(), st),
        Engine::Dense => engine::dense::run(cfg, &inner.prep, st),
    }
}

impl AnalysisArtifacts<'_> {
    /// Evaluates the analysis over the prebuilt artifacts: fixpoint,
    /// detector sweeps, composite markers, and (opt-in) witnesses.
    ///
    /// `cfg` must agree with the build-time config on the switches the
    /// build phase consumed (`guard_modeling`, `range_guards`); the
    /// evaluation-only switches (`freeze_guards`, `storage_taint`,
    /// `storage_model`, `engine`, `witness`) may differ freely.
    pub fn evaluate(&self, cfg: &Config) -> Report {
        let p = self.p;
        let mut report = Report {
            timed_out: p.incomplete,
            stats: Stats {
                blocks: p.blocks.len(),
                stmts: p.stmts.len(),
                rounds: 0,
                facts: FactCounts::default(),
                timings: PhaseTimings::default(),
            },
            ..Report::default()
        };
        let Some(inner) = &self.inner else {
            return report;
        };
        assert!(
            inner.built_for.guard_modeling == cfg.guard_modeling
                && inner.built_for.range_guards == cfg.range_guards,
            "artifacts built under incompatible config: \
             guard_modeling/range_guards differ from the build-time config"
        );
        let prep = &inner.prep;
        report.stats.timings.index_build_us = inner.build_us;

        // ---- Mutually-recursive fixpoint --------------------------------
        let sp_fix = telemetry::span("ethainter.fixpoint");
        let mut st = State::new(prep);
        run_engine(cfg, inner, &mut st);
        report.stats.timings.fixpoint_us = sp_fix.finish_us();

        if st.timed_out {
            report.timed_out = true;
        }
        report.stats.rounds = st.rounds;
        report.stats.facts = FactCounts {
            input_tainted: st.input_tainted.iter().filter(|&&t| t).count(),
            storage_tainted: st.storage_tainted.iter().filter(|&&t| t).count(),
            tainted_slots: st.tainted_slots.len(),
            tainted_mappings: st.tainted_mappings.len(),
            writable_mappings: st.writable_mappings.len(),
            guards: prep.guards.len(),
            defeated_guards: st.defeated.iter().filter(|&&d| d).count(),
            consts: prep.ctx.consts.iter().filter(|c| c.is_some()).count(),
            ds: prep.ctx.ds.iter().filter(|&&t| t).count(),
            dsa: prep.ctx.dsa.iter().filter(|&&t| t).count(),
            rba_blocks: st.rba.iter().filter(|&&t| t).count(),
            dead_edges: prep.n_dead_edges,
            origin_tainted: st.origin_tainted.iter().filter(|&&t| t).count(),
            time_tainted: st.time_tainted.iter().filter(|&&t| t).count(),
        };
        report.defeated_guards = prep
            .guards
            .iter()
            .zip(&st.defeated)
            .filter(|(_, &d)| d)
            .map(|(g, _)| g.pc)
            .collect();
        report.defeated_guards.sort_unstable();
        report.defeated_guards.dedup();

        // ---- Detectors + sink scan + composite markers ------------------
        let sp_sink = telemetry::span("ethainter.sink_scan");

        let (findings, detectors_us, effects_us) = detector_sweep(inner, cfg, &st);
        report.findings = findings;
        report.findings.sort_by_key(|f| (f.vuln, f.stmt));
        report.findings.dedup();

        // Exact composite (✰) markers: a finding is composite iff it
        // does not survive single-transaction reasoning — guards cannot
        // be defeated and taint cannot travel through storage across
        // transactions. One extra *evaluation* over the same artifacts
        // (frozen fixpoint + detector sweep — zero rebuilds), only when
        // escalation can have happened.
        let mut composite_us = 0;
        if (st.any_defeat || cfg.storage_taint) && !cfg.freeze_guards {
            let sp_comp = telemetry::span("ethainter.composite");
            if composite_markers(inner, cfg, &mut report.findings) {
                // The frozen fixpoint timed out: its relations are an
                // under-approximation, so the markers are conservative
                // (composite-biased), not exact — surface that.
                report.timed_out = true;
            }
            composite_us = sp_comp.finish_us();
        } else {
            for f in &mut report.findings {
                f.composite = false;
            }
        }
        sp_sink.finish_us();
        report.stats.timings.stamp_sink_scan(detectors_us, effects_us, composite_us);

        // ---- Provenance witnesses (opt-in) ------------------------------
        // Replay the fixpoint on the dense engine with a first-derivation
        // recorder and backtrack each finding to its axioms. The replay
        // starts from a fresh State and always runs dense, so witnesses
        // are byte-identical whatever engine produced the verdicts above.
        // Skipped for the composite-marker sub-analysis (`freeze_guards`)
        // and for timed-out contracts (partial relations would make the
        // paths misleading).
        if cfg.witness && !cfg.freeze_guards && !report.timed_out {
            let sp_wit = telemetry::span("ethainter.witness");
            let mut wst = State::new(prep);
            let mut prov = Provenance::new(prep);
            engine::dense::run_recording(cfg, prep, &mut wst, &mut prov);
            report.witnesses = Some(witness::build(&report.findings, prep, &wst, &prov));
            report.stats.timings.witness_us = sp_wit.finish_us();
            telemetry::metrics::counter("ethainter_witnesses_built_total")
                .add(report.findings.len() as u64);
        }

        report.stats.timings.stamp_total();
        report
    }
}

/// The frozen composite-marker pass: re-runs the fixpoint under
/// `freeze_guards = true, storage_taint = false` over the *same*
/// artifacts, sweeps the detectors on the frozen state, and marks each
/// finding composite iff it has no frozen (single-transaction)
/// counterpart with the same `(vuln, stmt)`.
///
/// Returns whether the frozen fixpoint hit the cooperative deadline —
/// in that case the frozen findings are an under-approximation and the
/// markers degrade conservatively toward `composite = true`; the caller
/// must propagate the flag into [`Report::timed_out`] (previously it
/// was silently dropped).
fn composite_markers(inner: &Inner<'_>, cfg: &Config, findings: &mut [Finding]) -> bool {
    let frozen_cfg = Config {
        freeze_guards: true,
        storage_taint: false,
        witness: false,
        ..*cfg
    };
    let mut fst = State::new(&inner.prep);
    run_engine(&frozen_cfg, inner, &mut fst);
    let (frozen, _, _) = detector_sweep(inner, &frozen_cfg, &fst);
    for f in findings {
        let direct = frozen.iter().any(|g| g.vuln == f.vuln && g.stmt == f.stmt);
        f.composite = !direct;
    }
    fst.timed_out
}

/// All detector sweeps over one fixpoint state: the per-opcode sink
/// sweeps + tainted-owner scan (`detectors` sub-phase) and the
/// effect-summary + branch-region suite (`effects` sub-phase). Shared
/// verbatim by the main evaluation and the frozen composite pass, so
/// the two can never drift. Iterates the pre-bucketed statement lists
/// in [`Prepared::sinks`] — no whole-program `iter_stmts` walks.
///
/// Findings are returned unsorted with `composite` tentatively set to
/// `st.any_defeat` — the caller sorts, dedups, and overwrites the
/// markers. Returns `(findings, detectors_us, effects_us)`.
fn detector_sweep(inner: &Inner<'_>, cfg: &Config, st: &State) -> (Vec<Finding>, u64, u64) {
    let prep = &inner.prep;
    let p = prep.ctx.p;
    let mut findings: Vec<Finding> = Vec::new();

    let selectors_of = |b: BlockId| -> Vec<u32> {
        p.block_functions.get(b.0 as usize).cloned().unwrap_or_default()
    };
    let tainted =
        |v: Var| st.input_tainted[v.0 as usize] || st.storage_tainted[v.0 as usize];

    let sp_det = telemetry::span("ethainter.detectors");

    for &sid in &prep.sinks.selfdestructs {
        let s = p.stmt(sid);
        if st.rba[s.block.0 as usize] {
            findings.push(Finding {
                vuln: Vuln::AccessibleSelfDestruct,
                stmt: s.id.0,
                pc: s.pc,
                selectors: selectors_of(s.block),
                composite: st.any_defeat,
            });
        }
        if tainted(s.uses[0]) {
            findings.push(Finding {
                vuln: Vuln::TaintedSelfDestruct,
                stmt: s.id.0,
                pc: s.pc,
                selectors: selectors_of(s.block),
                composite: st.any_defeat,
            });
        }
    }
    for &sid in &prep.sinks.delegatecalls {
        let s = p.stmt(sid);
        // uses: [gas, target, in_off, in_len, out_off, out_len]
        if tainted(s.uses[1]) {
            findings.push(Finding {
                vuln: Vuln::TaintedDelegateCall,
                stmt: s.id.0,
                pc: s.pc,
                selectors: selectors_of(s.block),
                composite: st.any_defeat,
            });
        }
    }
    for &sid in &prep.sinks.staticcalls {
        let s = p.stmt(sid);
        if let Some(f) = detect_unchecked_staticcall(prep, s, st) {
            findings.push(Finding {
                selectors: selectors_of(s.block),
                composite: st.any_defeat,
                ..f
            });
        }
    }

    // Tainted owner variable (§4.5): a slot compared against the sender
    // in some guard is a sink; attacker-reachable tainted writes to it
    // are violations. Pre-filter via per-function storage write
    // summaries (memoized in the artifacts): when no dispatched function
    // can possibly write a guard slot, the per-statement sink scan below
    // cannot fire and is skipped outright. (Summaries attribute
    // statements in unowned blocks to every function and widen on
    // unresolved keys, so skipping is sound.)
    let guard_slots = &prep.guard_slots;
    let sink_scan_needed = if !cfg.guard_modeling {
        true
    } else if guard_slots.is_empty() {
        false
    } else {
        let summaries = inner.storage_summaries();
        summaries.is_empty()
            || summaries
                .iter()
                .any(|f| guard_slots.iter().any(|&slot| f.may_write(slot)))
    };
    if sink_scan_needed {
        for &sid in &prep.sinks.sstores {
            let s = p.stmt(sid);
            if !st.rba[s.block.0 as usize] {
                continue;
            }
            let Some(KeyClass::Const(a)) = prep.key_class[s.id.0 as usize].as_ref()
            else {
                continue;
            };
            let v = *prep.slots.resolve(*a);
            let is_sink = if cfg.guard_modeling {
                guard_slots.contains(&v)
            } else {
                // Without guard modeling there is no sink inference —
                // every attacker-reachable tainted write to a constant
                // slot is flagged (the Figure 8b explosion).
                true
            };
            let value_attacker = st.input_tainted[s.uses[1].0 as usize]
                || st.storage_tainted[s.uses[1].0 as usize]
                || prep.ctx.ds[s.uses[1].0 as usize];
            if is_sink && value_attacker {
                findings.push(Finding {
                    vuln: Vuln::TaintedOwnerVariable,
                    stmt: s.id.0,
                    pc: s.pc,
                    selectors: selectors_of(s.block),
                    composite: st.any_defeat,
                });
            }
        }
    }
    let detectors_us = sp_det.finish_us();

    // ---- Detector suite v2: effect/ordering + origin/time detectors ----
    // All four run over engine-independent inputs (the memoized
    // effect/ordering summaries and the shared fixpoint state), so dense
    // and sparse verdicts stay byte-identical by construction.
    let sp_eff = telemetry::span("ethainter.effects");

    // Reentrancy + unchecked call return both need external-call sites;
    // the effect summary is only built when one exists (most contracts
    // have none) — and at most once per program, shared with the frozen
    // composite pass.
    if prep.sinks.has_ext_call {
        let eff = inner.effect_summary();
        // Unchecked call return: an attacker-reachable CALL whose
        // success flag never constrains a path or a storage write.
        for c in &eff.calls {
            let cs = p.stmt(c.stmt);
            if matches!(c.kind, Opcode::Call | Opcode::CallCode)
                && !c.checked
                && st.rba[cs.block.0 as usize]
            {
                findings.push(Finding {
                    vuln: Vuln::UncheckedCallReturn,
                    stmt: cs.id.0,
                    pc: cs.pc,
                    selectors: selectors_of(cs.block),
                    composite: st.any_defeat,
                });
            }
        }
        // Reentrancy: an attacker-reachable external call ordered before
        // the storage write of a cell that was read before the call
        // (checks-effects-interactions violation — the stale read is the
        // balance check a re-entrant caller exploits).
        for v in inner.reordered_writes() {
            let cs = p.stmt(v.call);
            if st.rba[cs.block.0 as usize] {
                findings.push(Finding {
                    vuln: Vuln::Reentrancy,
                    stmt: cs.id.0,
                    pc: cs.pc,
                    selectors: selectors_of(cs.block),
                    composite: st.any_defeat,
                });
            }
        }
        // Timestamp dependence, value variant: a transferred value
        // (CALL's value operand) derived from TIMESTAMP.
        for c in &eff.calls {
            let cs = p.stmt(c.stmt);
            if matches!(c.kind, Opcode::Call | Opcode::CallCode)
                && st.time_tainted[cs.uses[2].0 as usize]
                && st.rba[cs.block.0 as usize]
            {
                findings.push(Finding {
                    vuln: Vuln::TimestampDependence,
                    stmt: cs.id.0,
                    pc: cs.pc,
                    selectors: selectors_of(cs.block),
                    composite: st.any_defeat,
                });
            }
        }
    }

    // tx.origin authentication + timestamp dependence (guard variant):
    // branch regions whose peeled condition carries origin/time taint,
    // gating a critical sink. `cond_regions` deliberately includes the
    // conditions the sanitizing-guard machinery rejects — an origin
    // comparison is precisely a non-sender guard.
    let any_origin = st.origin_tainted.iter().any(|&t| t);
    let any_time = st.time_tainted.iter().any(|&t| t);
    if any_origin || any_time {
        for r in inner.cond_regions() {
            let js = p.stmt(r.stmt);
            if !st.rba[js.block.0 as usize] {
                continue;
            }
            let region_ops = || {
                r.region
                    .iter()
                    .flat_map(|b| p.block(*b).stmts.iter())
                    .map(|&sid| &p.stmt(sid).op)
            };
            // Auth sinks: any state change or control transfer the
            // origin check purports to protect.
            if any_origin && st.origin_tainted[r.cond.0 as usize] {
                let gates_sink = region_ops().any(|op| {
                    matches!(
                        op,
                        Op::SStore
                            | Op::SelfDestruct
                            | Op::Call {
                                kind: Opcode::Call
                                    | Opcode::CallCode
                                    | Opcode::DelegateCall
                            }
                    )
                });
                if gates_sink {
                    findings.push(Finding {
                        vuln: Vuln::TxOriginAuth,
                        stmt: js.id.0,
                        pc: js.pc,
                        selectors: selectors_of(js.block),
                        composite: st.any_defeat,
                    });
                }
            }
            // Timestamp sinks: money flows only — a time-dependent
            // branch over a plain state write is everyday Solidity.
            if any_time && st.time_tainted[r.cond.0 as usize] {
                let gates_money = region_ops().any(|op| {
                    matches!(
                        op,
                        Op::SelfDestruct
                            | Op::Call { kind: Opcode::Call | Opcode::CallCode }
                    )
                });
                if gates_money {
                    findings.push(Finding {
                        vuln: Vuln::TimestampDependence,
                        stmt: js.id.0,
                        pc: js.pc,
                        selectors: selectors_of(js.block),
                        composite: st.any_defeat,
                    });
                }
            }
        }
    }
    let effects_us = sp_eff.finish_us();

    (findings, detectors_us, effects_us)
}

fn detect_unchecked_staticcall(
    prep: &Prepared<'_>,
    s: &Stmt,
    st: &State,
) -> Option<Finding> {
    let ctx = &prep.ctx;
    // uses: [gas, target, in_off, in_len, out_off, out_len]
    let in_off = ctx.consts[s.uses[2].0 as usize];
    let out_off = ctx.consts[s.uses[4].0 as usize];
    let out_len = ctx.consts[s.uses[5].0 as usize];
    // Output window must overlap the input window and be non-empty.
    let overlap = match (in_off, out_off) {
        (Some(a), Some(b)) => a == b,
        _ => s.uses[2] == s.uses[4],
    };
    if !overlap || out_len == Some(evm::U256::ZERO) {
        return None;
    }
    if !st.rba[s.block.0 as usize] {
        return None;
    }
    // A RETURNDATASIZE check anywhere in the functions owning this call
    // counts as the fix (the Solidity-compiler-inserted pattern, §3.5).
    // The ownership lookup runs against the prebucketed RETURNDATASIZE
    // data in `prep.sinks`: a selector-set intersection when both sides
    // have ownership, block equality when either side has none —
    // exactly the per-call whole-program scan it replaces.
    let checked = match ctx.p.block_functions.get(s.block.0 as usize) {
        Some(owners) => {
            owners
                .iter()
                .any(|x| prep.sinks.rds_selectors.binary_search(x).is_ok())
                || prep.sinks.rds_unowned_blocks.binary_search(&s.block).is_ok()
        }
        None => prep.sinks.rds_blocks.binary_search(&s.block).is_ok(),
    };
    if checked {
        return None;
    }
    // The trusted buffer must be attacker-influenced: either the input
    // window holds tainted data, or the call target is tainted.
    let buffer_tainted = in_off
        .and_then(|off| prep.mem_stores.get(&off))
        .map(|stores| {
            stores.iter().any(|(_, v)| {
                st.input_tainted[v.0 as usize] || st.storage_tainted[v.0 as usize]
            })
        })
        .unwrap_or(false);
    let target_tainted = st.input_tainted[s.uses[1].0 as usize]
        || st.storage_tainted[s.uses[1].0 as usize];
    if !buffer_tainted && !target_tainted {
        return None;
    }
    Some(Finding {
        vuln: Vuln::UncheckedTaintedStaticCall,
        stmt: s.id.0,
        pc: s.pc,
        selectors: Vec::new(),
        composite: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn composite_vulnerable_program() -> decompiler::Program {
        // Unguarded owner write + owner-guarded selfdestruct: the guard
        // is defeated through storage, so the composite machinery (and
        // with it the frozen marker pass) engages.
        let src = r#"
        contract Bad {
            address owner;
            function initOwner(address o) public { owner = o; }
            function kill() public {
                require(msg.sender == owner);
                selfdestruct(owner);
            }
        }"#;
        let compiled = minisol::compile_source(src).unwrap();
        let mut p = decompiler::decompile(&compiled.bytecode);
        decompiler::optimize(&mut p, &decompiler::PassConfig::default());
        p
    }

    #[test]
    fn frozen_pass_timeout_is_propagated_not_dropped() {
        let p = composite_vulnerable_program();
        let cfg = Config::default();
        // Build the artifacts and run the *frozen* pass alone under an
        // already-expired deadline: the engines check the deadline on
        // entry, so the frozen fixpoint deterministically times out —
        // the exact scenario whose flag the recursive implementation
        // silently dropped.
        let art = AnalysisArtifacts::build(&p, &cfg);
        let inner = art.inner.as_ref().expect("program is complete");
        let mut findings = art.evaluate(&cfg).findings;
        assert!(!findings.is_empty(), "fixture must produce findings");
        let frozen_timed_out = with_deadline(Instant::now(), || {
            composite_markers(inner, &cfg, &mut findings)
        });
        assert!(
            frozen_timed_out,
            "an expired deadline must surface from the frozen pass"
        );
        // With the frozen relations stuck at the initial state, the
        // markers degrade conservatively: nothing the main run found is
        // confirmed single-transaction except findings that need no
        // taint at all.
        for f in &findings {
            if f.vuln != Vuln::AccessibleSelfDestruct {
                assert!(f.composite, "under-approximated frozen run must bias composite");
            }
        }
    }

    #[test]
    fn timed_out_analysis_reports_the_flag_end_to_end() {
        let p = composite_vulnerable_program();
        let cfg = Config::default();
        let report = with_deadline(Instant::now(), || analyze(&p, &cfg));
        assert!(report.timed_out);
    }

    #[test]
    fn artifacts_evaluate_twice_matches_analyze() {
        // The artifact layer's contract: evaluations are pure functions
        // of (artifacts, config) — evaluating twice gives byte-identical
        // reports, each equal to a fresh monolithic analyze.
        let p = composite_vulnerable_program();
        for cfg in [
            Config::default(),
            Config { engine: Engine::Dense, ..Config::default() },
            Config { witness: true, ..Config::default() },
        ] {
            let art = AnalysisArtifacts::build(&p, &cfg);
            let mut a = art.evaluate(&cfg);
            let mut b = art.evaluate(&cfg);
            let mut c = analyze(&p, &cfg);
            let json = |r: &mut Report| {
                r.stats.timings = PhaseTimings::default();
                serde_json::to_string(r).unwrap()
            };
            let (a, b, c) = (json(&mut a), json(&mut b), json(&mut c));
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn sink_scan_breakdown_is_stamped_and_sums() {
        let p = composite_vulnerable_program();
        let report = analyze(&p, &Config::default());
        let (d, e, c) = report
            .stats
            .timings
            .sink_scan_breakdown()
            .expect("evaluate stamps the sink-scan sub-phases");
        assert_eq!(report.stats.timings.sink_scan_us, d + e + c);
        assert_eq!(report.stats.timings.total_us, report.stats.timings.phase_sum());
    }
}
