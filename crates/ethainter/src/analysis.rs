//! The Ethainter analysis over decompiled TAC — the implementation-level
//! mutual recursion of Figure 5.
//!
//! The relations and their paper names:
//!
//! - `StaticallyGuardedStatement(s, p)` → guards: a `JUMPI` whose
//!   chosen successor dominates `s`, with condition `p` scrutinizing the
//!   caller (directly, or via a sender-keyed data-structure lookup —
//!   Figure 4's `DS`/`DSA`).
//! - `ReachableByAttacker(s)` → per-block `rba`: `s` is unguarded, or
//!   every sanitizing guard dominating `s` has been defeated.
//! - `TaintedFlow` / `AttackerModelInfoflow` → the two taint flavors:
//!   *input* taint propagates only through attacker-reachable statements
//!   (guards sanitize it — Figure 3's `Guard-2`), while *storage* taint
//!   propagates unconditionally (`Guard-1`: sender guards cannot remove
//!   taint that reached persistent storage).
//! - Guard defeat is the composite-vulnerability engine: a tainted guard
//!   condition (`Uguard-T`), or a guard reading a data structure the
//!   attacker can enroll themselves in, makes more statements
//!   attacker-reachable, which introduces more taint, which defeats more
//!   guards — evaluated to mutual fixpoint.

use crate::config::{Config, StorageModel};
use crate::report::{FactCounts, Finding, Report, Stats, Vuln};
use decompiler::{BlockId, Dominators, Op, Program, Stmt, StmtId, Var};
use evm::opcode::Opcode;
use evm::U256;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

thread_local! {
    /// Cooperative wall-clock deadline for the *current thread's*
    /// analysis, installed by [`with_deadline`]. Checked between fixpoint
    /// passes so a batch driver that abandons a timed-out worker thread
    /// can rely on that thread unwinding its work soon after, instead of
    /// spinning to the 64-round cap on a pathological contract.
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Runs `f` with a cooperative deadline installed for this thread.
///
/// Any [`analyze`] call made inside `f` (on the same thread) checks the
/// deadline between fixpoint passes and, once it has passed, stops
/// early with [`Report::timed_out`] set. The previous deadline (if any)
/// is restored on exit, including on unwind.
pub fn with_deadline<R>(deadline: Instant, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let _restore = Restore(DEADLINE.with(|d| d.replace(Some(deadline))));
    f()
}

/// True once the thread's installed deadline (if any) has passed.
fn deadline_exceeded() -> bool {
    DEADLINE.with(|d| d.get()).is_some_and(|t| Instant::now() >= t)
}

/// How a guard scrutinizes the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
enum GuardKind {
    /// `msg.sender == SLOAD(slot)` — an owner comparison; `slot` is also
    /// an *inferred sink* (§4.5).
    SenderEqSlot(U256),
    /// `msg.sender` compared against something non-constant (still
    /// sanitizing; defeated only by tainting the compared value).
    SenderEqOther,
    /// A sender-keyed data-structure membership test over the mapping
    /// with the given base slot (`require(m[msg.sender])`).
    Membership(U256),
    /// Sender-derived condition with no recognized shape (kept
    /// sanitizing, defeated only via condition taint).
    SenderOpaque,
}

/// How atomic guard kinds compose in a compound condition.
#[derive(Clone, Debug, PartialEq, Eq)]
enum GuardCond {
    /// A single sender check.
    Single(GuardKind),
    /// `a && b`: the attacker must defeat **every** conjunct.
    Conj(Vec<GuardKind>),
    /// `a || b`: defeating **any** disjunct suffices.
    Disj(Vec<GuardKind>),
}

/// A sanitizing guard: condition + the blocks it protects.
#[derive(Clone, Debug)]
struct Guard {
    /// Base condition variable (after peeling `ISZERO` chains).
    cond: Var,
    cond_kind: GuardCond,
    /// Bytecode offset of the guarding `JUMPI`.
    pc: usize,
    /// Blocks dominated by the guard's chosen successor.
    region: Vec<BlockId>,
}

/// Storage address classification.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SAddr {
    Const(U256),
    /// `Hash2*`-derived mapping element: base slot + key variables
    /// (outermost first).
    Mapping { base: U256, keys: Vec<Var> },
    Unknown,
}

struct Ctx<'a> {
    p: &'a Program,
    /// var → defining statements (params have one per predecessor copy).
    defs: Vec<Vec<StmtId>>,
    /// var → constant value, when uniquely determined.
    consts: Vec<Option<U256>>,
    /// Figure 4 relations over TAC vars.
    ds: Vec<bool>,
    dsa: Vec<bool>,
    /// var → storage-address classification (for SLoad/SStore keys).
    saddr_cache: HashMap<Var, SAddr>,
}

/// Runs the Ethainter analysis on a decompiled program.
pub fn analyze(p: &Program, cfg: &Config) -> Report {
    let mut report = Report {
        timed_out: p.incomplete,
        stats: Stats {
            blocks: p.blocks.len(),
            stmts: p.stmts.len(),
            rounds: 0,
            facts: FactCounts::default(),
        },
        ..Report::default()
    };
    if p.incomplete || p.blocks.is_empty() {
        return report;
    }

    let dom = Dominators::compute(p);

    // ---- Range-proven branch pruning ------------------------------------
    // Interval analysis proves some JumpI edges never taken; blocks only
    // reachable through dead edges can never execute, so they are not
    // attacker-reachable. This monotonically refines ReachableByAttacker
    // (strictly fewer findings behind statically-decided branches).
    let (live_block, n_dead_edges) = if cfg.range_guards {
        let iv = decompiler::passes::intervals::analyze(p);
        let dead: HashSet<(u32, usize)> =
            iv.dead_edges.iter().map(|&(b, i)| (b.0, i)).collect();
        let mut live = vec![false; p.blocks.len()];
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            let bi = b.0 as usize;
            if live[bi] {
                continue;
            }
            live[bi] = true;
            for (i, &s) in p.blocks[bi].succs.iter().enumerate() {
                if !dead.contains(&(b.0, i)) {
                    stack.push(s);
                }
            }
        }
        (live, dead.len())
    } else {
        (vec![true; p.blocks.len()], 0)
    };

    // ---- Static indexes -------------------------------------------------
    let mut defs: Vec<Vec<StmtId>> = vec![Vec::new(); p.n_vars as usize];
    for s in p.iter_stmts() {
        if let Some(d) = s.def {
            defs[d.0 as usize].push(s.id);
        }
    }

    let mut ctx = Ctx {
        p,
        defs,
        consts: vec![None; p.n_vars as usize],
        ds: vec![false; p.n_vars as usize],
        dsa: vec![false; p.n_vars as usize],
        saddr_cache: HashMap::new(),
    };
    ctx.compute_consts();
    ctx.compute_ds();

    // ---- Guards (StaticallyGuardedStatement) ---------------------------
    let guards: Vec<Guard> = if cfg.guard_modeling { ctx.find_guards(&dom) } else { Vec::new() };

    // Memory def-use: const offset → (store stmts, value vars).
    let mut mem_stores: HashMap<U256, Vec<(StmtId, Var)>> = HashMap::new();
    for s in p.iter_stmts() {
        if s.op == Op::MStore {
            if let Some(off) = ctx.consts[s.uses[0].0 as usize] {
                mem_stores.entry(off).or_default().push((s.id, s.uses[1]));
            }
        }
    }

    // ---- Mutually-recursive fixpoint ------------------------------------
    let n_vars = p.n_vars as usize;
    let n_blocks = p.blocks.len();
    let mut input_tainted = vec![false; n_vars];
    let mut storage_tainted = vec![false; n_vars];
    let mut tainted_slots: HashSet<U256> = HashSet::new();
    let mut tainted_mappings: HashSet<U256> = HashSet::new();
    let mut writable_mappings: HashSet<U256> = HashSet::new();
    let mut all_slots_tainted = false;
    let mut unknown_store_tainted = false;
    let mut defeated: Vec<bool> = vec![false; guards.len()];
    // Findings that required a defeated guard on their taint path are
    // "composite" (the ✰ of Figure 6).
    let mut any_defeat = false;

    let mut rba = vec![true; n_blocks];
    let recompute_rba = |defeated: &[bool], rba: &mut Vec<bool>| {
        for b in rba.iter_mut() {
            *b = true;
        }
        for (g, guard) in guards.iter().enumerate() {
            if !defeated[g] {
                for &blk in &guard.region {
                    rba[blk.0 as usize] = false;
                }
            }
        }
        // Unreachable blocks are not attacker-reachable either — whether
        // structurally (no CFG path) or because every path crosses a
        // branch the interval analysis decided statically.
        for (i, b) in rba.iter_mut().enumerate() {
            if !dom.is_reachable(BlockId(i as u32)) || !live_block[i] {
                *b = false;
            }
        }
    };
    recompute_rba(&defeated, &mut rba);

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        if deadline_exceeded() {
            report.timed_out = true;
            break;
        }

        // Taint propagation (inner pass repeated within the round until
        // stable — statement order is arbitrary).
        loop {
            let mut inner_changed = false;
            for s in p.iter_stmts() {
                let stmt_rba = rba[s.block.0 as usize];
                let Some(d) = s.def else {
                    continue;
                };
                let di = d.0 as usize;
                match &s.op {
                    Op::CallDataLoad
                        // TaintedFlow(x,x) :- ReachableByAttacker(s),
                        //                     CALLDATALOAD(s, x).
                        if stmt_rba && !input_tainted[di] => {
                            input_tainted[di] = true;
                            inner_changed = true;
                        }
                    Op::Copy
                    | Op::Bin(_)
                    | Op::Un(_)
                    | Op::Hash2
                    | Op::Sha3
                    | Op::Other(_) => {
                        let any_in = s.uses.iter().any(|u| input_tainted[u.0 as usize]);
                        let any_st = s.uses.iter().any(|u| storage_tainted[u.0 as usize]);
                        // Input taint moves only through attacker-reachable
                        // statements (Guard-2); storage taint through all
                        // (Guard-1).
                        if any_in && stmt_rba && !input_tainted[di] {
                            input_tainted[di] = true;
                            inner_changed = true;
                        }
                        if any_st && !storage_tainted[di] {
                            storage_tainted[di] = true;
                            inner_changed = true;
                        }
                    }
                    Op::MLoad => {
                        // Local memory modeling: values stored at the same
                        // constant offset flow to this load.
                        if let Some(off) = ctx.consts[s.uses[0].0 as usize] {
                            if let Some(stores) = mem_stores.get(&off) {
                                let any_in =
                                    stores.iter().any(|(_, v)| input_tainted[v.0 as usize]);
                                let any_st =
                                    stores.iter().any(|(_, v)| storage_tainted[v.0 as usize]);
                                if any_in && stmt_rba && !input_tainted[di] {
                                    input_tainted[di] = true;
                                    inner_changed = true;
                                }
                                if any_st && !storage_tainted[di] {
                                    storage_tainted[di] = true;
                                    inner_changed = true;
                                }
                            }
                        }
                    }
                    Op::SLoad => {
                        if !cfg.storage_taint {
                            continue;
                        }
                        let tainted_load = match ctx.classify_addr(s.uses[0]) {
                            SAddr::Const(v) => {
                                tainted_slots.contains(&v) || all_slots_tainted
                            }
                            SAddr::Mapping { base, .. } => tainted_mappings.contains(&base),
                            SAddr::Unknown => {
                                cfg.storage_model == StorageModel::Conservative
                                    && unknown_store_tainted
                            }
                        };
                        // StorageLoad: loads of tainted storage are
                        // storage-tainted, eluding guards.
                        if tainted_load && !storage_tainted[di] {
                            storage_tainted[di] = true;
                            inner_changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !inner_changed || deadline_exceeded() {
                break;
            }
            changed = true;
        }

        // Storage writes (StorageWrite-1 / StorageWrite-2 and the
        // attacker-enrollment rule for sender-keyed structures).
        if cfg.storage_taint {
            for s in p.iter_stmts() {
                if s.op != Op::SStore {
                    continue;
                }
                let stmt_rba = rba[s.block.0 as usize];
                let key = s.uses[0];
                let value = s.uses[1];
                let v_in = input_tainted[value.0 as usize];
                let v_st = storage_tainted[value.0 as usize];
                // `msg.sender`-derived values written by the attacker are
                // attacker-chosen (public-initializer pattern: anyone can
                // become owner).
                let v_ds = ctx.ds[value.0 as usize];
                let attacker_value = (v_in || v_ds) && stmt_rba;
                let tainted_value = v_st || attacker_value;
                if !tainted_value {
                    continue;
                }
                match ctx.classify_addr(key) {
                    SAddr::Const(v) => {
                        if tainted_slots.insert(v) {
                            changed = true;
                        }
                    }
                    SAddr::Mapping { base, keys } => {
                        if tainted_mappings.insert(base) {
                            changed = true;
                        }
                        let key_attacker = keys.iter().any(|k| {
                            ctx.ds[k.0 as usize] || input_tainted[k.0 as usize]
                        });
                        if key_attacker && writable_mappings.insert(base) {
                            changed = true;
                        }
                    }
                    SAddr::Unknown => {
                        // StorageWrite-2: tainted value at a tainted
                        // (attacker-influenced) address taints all known
                        // slots. Conservative mode does this for *any*
                        // unknown address.
                        let key_tainted = input_tainted[key.0 as usize]
                            || storage_tainted[key.0 as usize];
                        let conservative =
                            cfg.storage_model == StorageModel::Conservative;
                        if key_tainted || conservative {
                            if !all_slots_tainted {
                                all_slots_tainted = true;
                                changed = true;
                            }
                            if !unknown_store_tainted {
                                unknown_store_tainted = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            // Enrollment without taint: an attacker-reachable write of a
            // *non-zero constant* into a structure keyed by the attacker
            // (users[msg.sender] = true) makes its membership guards
            // passable.
            for s in p.iter_stmts() {
                if s.op != Op::SStore || !rba[s.block.0 as usize] {
                    continue;
                }
                let value_const = ctx.consts[s.uses[1].0 as usize];
                let value_nonzero_const = value_const.is_some_and(|c| !c.is_zero());
                let value_attacker = value_nonzero_const
                    || input_tainted[s.uses[1].0 as usize]
                    || storage_tainted[s.uses[1].0 as usize]
                    || ctx.ds[s.uses[1].0 as usize];
                if !value_attacker {
                    continue;
                }
                if let SAddr::Mapping { base, keys } = ctx.classify_addr(s.uses[0]) {
                    let key_attacker = keys
                        .iter()
                        .any(|k| ctx.ds[k.0 as usize] || input_tainted[k.0 as usize]);
                    if key_attacker && writable_mappings.insert(base) {
                        changed = true;
                    }
                }
            }
        }

        // Guard defeat:
        // ReachableByAttacker(s) :- StaticallyGuardedStatement(s, guard),
        //                           TaintedFlow(_, guard).
        for (g, guard) in guards.iter().enumerate() {
            if defeated[g] {
                continue;
            }
            let cond_tainted = input_tainted[guard.cond.0 as usize]
                || storage_tainted[guard.cond.0 as usize];
            let kind_defeated = |k: &GuardKind| match k {
                GuardKind::SenderEqSlot(v) => {
                    cfg.storage_taint
                        && (tainted_slots.contains(v) || all_slots_tainted)
                }
                GuardKind::Membership(base) => {
                    cfg.storage_taint && writable_mappings.contains(base)
                }
                GuardKind::SenderEqOther | GuardKind::SenderOpaque => false,
            };
            let structural = match &guard.cond_kind {
                GuardCond::Single(k) => kind_defeated(k),
                GuardCond::Conj(ks) => ks.iter().all(kind_defeated),
                GuardCond::Disj(ks) => ks.iter().any(kind_defeated),
            };
            if (cond_tainted || structural) && !cfg.freeze_guards {
                defeated[g] = true;
                any_defeat = true;
                changed = true;
            }
        }
        recompute_rba(&defeated, &mut rba);

        if !changed || rounds > 64 {
            break;
        }
    }
    report.stats.rounds = rounds;
    report.stats.facts = FactCounts {
        input_tainted: input_tainted.iter().filter(|&&t| t).count(),
        storage_tainted: storage_tainted.iter().filter(|&&t| t).count(),
        tainted_slots: tainted_slots.len(),
        tainted_mappings: tainted_mappings.len(),
        writable_mappings: writable_mappings.len(),
        guards: guards.len(),
        defeated_guards: defeated.iter().filter(|&&d| d).count(),
        consts: ctx.consts.iter().filter(|c| c.is_some()).count(),
        ds: ctx.ds.iter().filter(|&&t| t).count(),
        dsa: ctx.dsa.iter().filter(|&&t| t).count(),
        rba_blocks: rba.iter().filter(|&&t| t).count(),
        dead_edges: n_dead_edges,
    };
    report.defeated_guards = guards
        .iter()
        .zip(&defeated)
        .filter(|(_, &d)| d)
        .map(|(g, _)| g.pc)
        .collect();
    report.defeated_guards.sort_unstable();
    report.defeated_guards.dedup();

    // ---- Detectors -------------------------------------------------------
    let selectors_of = |b: BlockId| -> Vec<u32> {
        p.block_functions.get(b.0 as usize).cloned().unwrap_or_default()
    };
    let tainted = |v: Var| input_tainted[v.0 as usize] || storage_tainted[v.0 as usize];

    for s in p.iter_stmts() {
        match &s.op {
            Op::SelfDestruct => {
                if rba[s.block.0 as usize] {
                    report.findings.push(Finding {
                        vuln: Vuln::AccessibleSelfDestruct,
                        stmt: s.id.0,
                        pc: s.pc,
                        selectors: selectors_of(s.block),
                        composite: any_defeat,
                    });
                }
                if tainted(s.uses[0]) {
                    report.findings.push(Finding {
                        vuln: Vuln::TaintedSelfDestruct,
                        stmt: s.id.0,
                        pc: s.pc,
                        selectors: selectors_of(s.block),
                        composite: any_defeat,
                    });
                }
            }
            Op::Call { kind: Opcode::DelegateCall }
                // uses: [gas, target, in_off, in_len, out_off, out_len]
                if tainted(s.uses[1]) => {
                    report.findings.push(Finding {
                        vuln: Vuln::TaintedDelegateCall,
                        stmt: s.id.0,
                        pc: s.pc,
                        selectors: selectors_of(s.block),
                        composite: any_defeat,
                    });
                }
            Op::Call { kind: Opcode::StaticCall } => {
                if let Some(f) = detect_unchecked_staticcall(
                    &ctx, s, &rba, &input_tainted, &storage_tainted, &mem_stores,
                ) {
                    report.findings.push(Finding {
                        selectors: selectors_of(s.block),
                        composite: any_defeat,
                        ..f
                    });
                }
            }
            _ => {}
        }
    }

    // Tainted owner variable (§4.5): a slot compared against the sender
    // in some guard is a sink; attacker-reachable tainted writes to it
    // are violations.
    let guard_slots: HashSet<U256> = guards
        .iter()
        .flat_map(|g| {
            let ks: Vec<&GuardKind> = match &g.cond_kind {
                GuardCond::Single(k) => vec![k],
                GuardCond::Conj(ks) | GuardCond::Disj(ks) => ks.iter().collect(),
            };
            ks.into_iter().filter_map(|k| match k {
                GuardKind::SenderEqSlot(v) => Some(*v),
                _ => None,
            })
        })
        .collect();
    // Pre-filter via per-function storage write summaries: when no
    // dispatched function can possibly write a guard slot, the
    // per-statement sink scan below cannot fire and is skipped outright.
    // (Summaries attribute statements in unowned blocks to every
    // function and widen on unresolved keys, so skipping is sound.)
    let sink_scan_needed = if !cfg.guard_modeling {
        true
    } else if guard_slots.is_empty() {
        false
    } else {
        let summaries = decompiler::passes::storage::summarize(p);
        summaries.is_empty()
            || summaries
                .iter()
                .any(|f| guard_slots.iter().any(|&slot| f.may_write(slot)))
    };
    if sink_scan_needed {
        for s in p.iter_stmts() {
            if s.op != Op::SStore || !rba[s.block.0 as usize] {
                continue;
            }
            let SAddr::Const(v) = ctx.classify_addr(s.uses[0]) else { continue };
            let is_sink = if cfg.guard_modeling {
                guard_slots.contains(&v)
            } else {
                // Without guard modeling there is no sink inference —
                // every attacker-reachable tainted write to a constant
                // slot is flagged (the Figure 8b explosion).
                true
            };
            let value_attacker = input_tainted[s.uses[1].0 as usize]
                || storage_tainted[s.uses[1].0 as usize]
                || ctx.ds[s.uses[1].0 as usize];
            if is_sink && value_attacker {
                report.findings.push(Finding {
                    vuln: Vuln::TaintedOwnerVariable,
                    stmt: s.id.0,
                    pc: s.pc,
                    selectors: selectors_of(s.block),
                    composite: any_defeat,
                });
            }
        }
    }

    report.findings.sort_by_key(|f| (f.vuln, f.stmt));
    report.findings.dedup();

    // Exact composite (✰) markers: a finding is composite iff it does
    // not survive single-transaction reasoning — guards cannot be
    // defeated and taint cannot travel through storage across
    // transactions. One extra pass, only when escalation happened.
    if (any_defeat || cfg.storage_taint) && !cfg.freeze_guards {
        let frozen =
            analyze(p, &Config { freeze_guards: true, storage_taint: false, ..*cfg });
        for f in &mut report.findings {
            let direct = frozen
                .findings
                .iter()
                .any(|g| g.vuln == f.vuln && g.stmt == f.stmt);
            f.composite = !direct;
        }
    } else {
        for f in &mut report.findings {
            f.composite = false;
        }
    }
    report
}

fn detect_unchecked_staticcall(
    ctx: &Ctx<'_>,
    s: &Stmt,
    rba: &[bool],
    input_tainted: &[bool],
    storage_tainted: &[bool],
    mem_stores: &HashMap<U256, Vec<(StmtId, Var)>>,
) -> Option<Finding> {
    // uses: [gas, target, in_off, in_len, out_off, out_len]
    let in_off = ctx.consts[s.uses[2].0 as usize];
    let out_off = ctx.consts[s.uses[4].0 as usize];
    let out_len = ctx.consts[s.uses[5].0 as usize];
    // Output window must overlap the input window and be non-empty.
    let overlap = match (in_off, out_off) {
        (Some(a), Some(b)) => a == b,
        _ => s.uses[2] == s.uses[4],
    };
    if !overlap || out_len == Some(U256::ZERO) {
        return None;
    }
    if !rba[s.block.0 as usize] {
        return None;
    }
    // A RETURNDATASIZE check anywhere in the functions owning this call
    // counts as the fix (the Solidity-compiler-inserted pattern, §3.5).
    let owners = ctx.p.block_functions.get(s.block.0 as usize);
    let checked = ctx.p.iter_stmts().any(|t| {
        t.op == Op::Env(Opcode::ReturnDataSize)
            && match (owners, ctx.p.block_functions.get(t.block.0 as usize)) {
                (Some(a), Some(b)) => a.iter().any(|x| b.contains(x)),
                _ => t.block == s.block,
            }
    });
    if checked {
        return None;
    }
    // The trusted buffer must be attacker-influenced: either the input
    // window holds tainted data, or the call target is tainted.
    let buffer_tainted = in_off
        .and_then(|off| mem_stores.get(&off))
        .map(|stores| {
            stores.iter().any(|(_, v)| {
                input_tainted[v.0 as usize] || storage_tainted[v.0 as usize]
            })
        })
        .unwrap_or(false);
    let target_tainted =
        input_tainted[s.uses[1].0 as usize] || storage_tainted[s.uses[1].0 as usize];
    if !buffer_tainted && !target_tainted {
        return None;
    }
    Some(Finding {
        vuln: Vuln::UncheckedTaintedStaticCall,
        stmt: s.id.0,
        pc: s.pc,
        selectors: Vec::new(),
        composite: false,
    })
}

impl Ctx<'_> {
    /// Constant propagation (`ConstValue`, C(x) = v): through `Const`
    /// definitions and `Copy` chains where all definitions agree.
    fn compute_consts(&mut self) {
        loop {
            let mut changed = false;
            for v in 0..self.consts.len() {
                if self.consts[v].is_some() {
                    continue;
                }
                let defs = &self.defs[v];
                if defs.is_empty() {
                    continue;
                }
                let mut val: Option<U256> = None;
                let mut ok = true;
                for &d in defs {
                    let s = self.p.stmt(d);
                    let this = match &s.op {
                        Op::Const(c) => Some(*c),
                        Op::Copy => self.consts[s.uses[0].0 as usize],
                        _ => None,
                    };
                    match (this, val) {
                        (Some(a), None) => val = Some(a),
                        (Some(a), Some(b)) if a == b => {}
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    if let Some(c) = val {
                        self.consts[v] = Some(c);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Figure 4 over TAC: `DS` (caller-identity data) and `DSA`
    /// (addresses of caller-keyed structure elements).
    fn compute_ds(&mut self) {
        loop {
            let mut changed = false;
            for s in self.p.iter_stmts() {
                let Some(d) = s.def else { continue };
                let di = d.0 as usize;
                match &s.op {
                    // DS-SenderKey
                    Op::Env(Opcode::Caller)
                        if !self.ds[di] => {
                            self.ds[di] = true;
                            changed = true;
                        }
                    // DS-Lookup / DSA-Lookup: the mapping hash of a
                    // sender-derived key (or of a structure address) is a
                    // structure address.
                    Op::Hash2 => {
                        let k = s.uses[0].0 as usize;
                        let b = s.uses[1].0 as usize;
                        if (self.ds[k] || self.dsa[k] || self.dsa[b]) && !self.dsa[di] {
                            self.dsa[di] = true;
                            changed = true;
                        }
                    }
                    // DS-AddrOp: arithmetic on structure addresses.
                    Op::Bin(_)
                        if s.uses.iter().any(|u| self.dsa[u.0 as usize]) && !self.dsa[di] => {
                            self.dsa[di] = true;
                            changed = true;
                        }
                    // DSA-Load: dereferencing a structure address yields
                    // caller-pertinent data.
                    Op::SLoad
                        if self.dsa[s.uses[0].0 as usize] && !self.ds[di] => {
                            self.ds[di] = true;
                            changed = true;
                        }
                    Op::Copy => {
                        let u = s.uses[0].0 as usize;
                        if self.ds[u] && !self.ds[di] {
                            self.ds[di] = true;
                            changed = true;
                        }
                        if self.dsa[u] && !self.dsa[di] {
                            self.dsa[di] = true;
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Storage-address classification for a key variable.
    fn classify_addr(&mut self, v: Var) -> SAddr {
        if let Some(cached) = self.saddr_cache.get(&v) {
            return cached.clone();
        }
        let result = self.classify_addr_inner(v, 0);
        self.saddr_cache.insert(v, result.clone());
        result
    }

    fn classify_addr_inner(&mut self, v: Var, depth: usize) -> SAddr {
        if depth > 16 {
            return SAddr::Unknown;
        }
        if let Some(c) = self.consts[v.0 as usize] {
            return SAddr::Const(c);
        }
        let defs = self.defs[v.0 as usize].clone();
        let mut result: Option<SAddr> = None;
        for d in defs {
            let s = self.p.stmt(d);
            let this = match &s.op {
                Op::Hash2 => {
                    let key = s.uses[0];
                    match self.classify_addr_inner(s.uses[1], depth + 1) {
                        SAddr::Const(base) => SAddr::Mapping { base, keys: vec![key] },
                        SAddr::Mapping { base, mut keys } => {
                            keys.push(key);
                            SAddr::Mapping { base, keys }
                        }
                        SAddr::Unknown => SAddr::Unknown,
                    }
                }
                Op::Copy => self.classify_addr_inner(s.uses[0], depth + 1),
                _ => SAddr::Unknown,
            };
            match (&result, this) {
                (None, t) => result = Some(t),
                (Some(a), t) if *a == t => {}
                _ => return SAddr::Unknown,
            }
        }
        result.unwrap_or(SAddr::Unknown)
    }

    /// Finds sanitizing guards: `JUMPI`s whose condition scrutinizes the
    /// caller, guarding the region dominated by their chosen successor.
    fn find_guards(&mut self, dom: &Dominators) -> Vec<Guard> {
        let mut out = Vec::new();
        for s in self.p.iter_stmts() {
            if s.op != Op::JumpI {
                continue;
            }
            let block = self.p.block(s.block);
            // Peel ISZERO chains off the condition, tracking polarity.
            let (base, polarity) = self.peel_iszero(s.uses[0]);
            for (i, &succ) in block.succs.iter().enumerate() {
                // succs = [taken, fallthrough] when the target resolved;
                // the taken edge asserts cond != 0, fallthrough cond == 0.
                let edge_polarity = if block.succs.len() == 2 {
                    i == 0
                } else {
                    // Single successor: no information.
                    continue;
                };
                if edge_polarity != polarity {
                    continue;
                }
                // The region is sound only when the successor's sole
                // predecessor is this block (edge dominance).
                let succ_block = self.p.block(succ);
                if !(succ_block.preds.len() == 1 && succ_block.preds[0] == s.block) {
                    continue;
                }
                let Some(cond_kind) = self.guard_cond(base, 0) else { continue };
                let region: Vec<BlockId> = (0..self.p.blocks.len() as u32)
                    .map(BlockId)
                    .filter(|&b| dom.dominates(succ, b))
                    .collect();
                if !region.is_empty() {
                    out.push(Guard { cond: base, cond_kind, pc: s.pc, region });
                }
            }
        }
        out
    }

    /// Follows `ISZERO` chains: returns the base variable and the
    /// polarity under which "cond true" asserts the base is true.
    fn peel_iszero(&self, v: Var) -> (Var, bool) {
        let mut cur = v;
        let mut polarity = true;
        for _ in 0..16 {
            let defs = &self.defs[cur.0 as usize];
            if defs.len() != 1 {
                break;
            }
            let s = self.p.stmt(defs[0]);
            match &s.op {
                Op::Un(Opcode::IsZero) => {
                    polarity = !polarity;
                    cur = s.uses[0];
                }
                Op::Copy => cur = s.uses[0],
                _ => break,
            }
        }
        (cur, polarity)
    }

    /// Classifies a (possibly compound) guard condition. `&&`/`||`
    /// compile to bitwise AND/OR over normalized booleans; recurse into
    /// them so each conjunct/disjunct is scrutinized separately.
    fn guard_cond(&mut self, base: Var, depth: usize) -> Option<GuardCond> {
        if depth > 8 {
            return None;
        }
        let defs = self.defs[base.0 as usize].clone();
        if defs.len() == 1 {
            let s = self.p.stmt(defs[0]);
            if let Op::Bin(op @ (Opcode::And | Opcode::Or)) = s.op {
                let (a, _) = self.peel_iszero(s.uses[0]);
                let (b, _) = self.peel_iszero(s.uses[1]);
                let ka = self.guard_cond(a, depth + 1);
                let kb = self.guard_cond(b, depth + 1);
                let flatten = |c: GuardCond| -> Vec<GuardKind> {
                    match c {
                        GuardCond::Single(k) => vec![k],
                        GuardCond::Conj(ks) | GuardCond::Disj(ks) => ks,
                    }
                };
                return match (op, ka, kb) {
                    // a && b: any sanitizing conjunct keeps the guard; all
                    // sanitizing conjuncts must fall for defeat.
                    (Opcode::And, Some(x), Some(y)) => {
                        let mut ks = flatten(x);
                        ks.extend(flatten(y));
                        Some(GuardCond::Conj(ks))
                    }
                    (Opcode::And, Some(x), None) | (Opcode::And, None, Some(x)) => Some(x),
                    // a || b: a non-sender disjunct lets the attacker
                    // through outright (Uguard-NDS on that side).
                    (Opcode::Or, Some(x), Some(y)) => {
                        let mut ks = flatten(x);
                        ks.extend(flatten(y));
                        Some(GuardCond::Disj(ks))
                    }
                    _ => None,
                };
            }
        }
        self.guard_kind(base).map(GuardCond::Single)
    }

    /// Does an atomic condition scrutinize the caller, and how?
    fn guard_kind(&mut self, base: Var) -> Option<GuardKind> {
        // Membership: the condition is itself caller-pertinent data
        // (require(m[msg.sender])).
        if self.ds[base.0 as usize] {
            // Identify the mapping base if the shape is recognizable.
            let defs = self.defs[base.0 as usize].clone();
            for d in defs {
                let s = self.p.stmt(d);
                if s.op == Op::SLoad {
                    if let SAddr::Mapping { base: b, .. } = self.classify_addr(s.uses[0]) {
                        return Some(GuardKind::Membership(b));
                    }
                }
            }
            return Some(GuardKind::SenderOpaque);
        }
        // Comparison: Eq with a caller-derived side (Uguard-NDS excludes
        // conditions with no DS side).
        let defs = self.defs[base.0 as usize].clone();
        if defs.len() != 1 {
            return None;
        }
        let s = self.p.stmt(defs[0]);
        let Op::Bin(Opcode::Eq) = s.op else { return None };
        let (a, b) = (s.uses[0], s.uses[1]);
        let a_ds = self.ds[a.0 as usize];
        let b_ds = self.ds[b.0 as usize];
        if !a_ds && !b_ds {
            return None; // Uguard-NDS: not a sanitizing guard.
        }
        let other = if a_ds { b } else { a };
        // msg.sender == SLOAD(const slot): the owner pattern; the slot is
        // an inferred sink.
        let other_defs = self.defs[other.0 as usize].clone();
        if other_defs.len() == 1 {
            let od = self.p.stmt(other_defs[0]);
            if od.op == Op::SLoad {
                if let SAddr::Const(v) = self.classify_addr(od.uses[0]) {
                    return Some(GuardKind::SenderEqSlot(v));
                }
            }
        }
        Some(GuardKind::SenderEqOther)
    }
}
