//! # ethainter — composite information-flow analysis for smart contracts
//!
//! A from-scratch Rust reproduction of *Ethainter: A Smart Contract
//! Security Analyzer for Composite Vulnerabilities* (PLDI 2020).
//!
//! Two layers:
//!
//! - [`formalism`] — the paper's §4 abstract language and inference rules
//!   (Figures 1–4), runnable in isolation on the `datalog` engine.
//! - [`analysis`] — the production analysis over decompiled EVM bytecode
//!   (the Figure 5 mutual recursion): guard inference, sender-keyed
//!   data-structure modeling, two-flavor taint (input vs. storage), guard
//!   defeat, and the five vulnerability detectors of §3.
//!
//! # Examples
//!
//! ```
//! use ethainter::{analyze_bytecode, Config, Vuln};
//!
//! let src = r#"
//! contract Bad {
//!     address owner;
//!     function initOwner(address o) public { owner = o; }
//!     function kill() public { require(msg.sender == owner); selfdestruct(owner); }
//! }"#;
//! let compiled = minisol::compile_source(src).unwrap();
//! let report = analyze_bytecode(&compiled.bytecode, &Config::default());
//! assert!(report.has(Vuln::TaintedOwnerVariable));
//! assert!(report.has(Vuln::AccessibleSelfDestruct));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod artifacts;
pub mod config;
mod engine;
pub mod formalism;
pub mod report;
pub mod timing;
pub mod witness;

pub use analysis::{analyze, with_deadline};
pub use artifacts::AnalysisArtifacts;
pub use config::{Config, Engine, StorageModel};
pub use report::{FactCounts, Finding, Report, Stats, Vuln};
pub use timing::{PhaseTimer, PhaseTimings};
pub use witness::{Witness, WitnessStep};

/// Version tag of the analysis *algorithm*, the third ingredient of
/// `crates/store`'s content-addressed cache key (alongside the bytecode
/// hash and [`Config::fingerprint`]). Bump the `+aN` suffix whenever a
/// change makes the analysis produce different reports for the same
/// (bytecode, config) pair — decompiler limits, new rules, fixed rules —
/// so previously cached results are invalidated instead of replayed.
pub const ANALYZER_VERSION: &str = concat!("ethainter-rs/", env!("CARGO_PKG_VERSION"), "+a3");

/// Decompiles `bytecode` and runs the analysis — the end-to-end entry
/// point used by the CLI, the scanner, and Ethainter-Kill. With the
/// default config the decompiler's optimization passes (constant
/// propagation + dead-code elimination) shrink the TAC before the
/// fixpoint ever sees it; `config.optimize_ir = false` analyzes the raw
/// decompiler output instead.
pub fn analyze_bytecode(bytecode: &[u8], config: &Config) -> Report {
    analyze_bytecode_with_limits(bytecode, config, decompiler::Limits::default())
}

/// Like [`analyze_bytecode`], with an explicit decompilation budget
/// (the paper's timeout analogue).
pub fn analyze_bytecode_with_limits(
    bytecode: &[u8],
    config: &Config,
    limits: decompiler::Limits,
) -> Report {
    let sp_dec = telemetry::span("ethainter.decompile");
    let mut program = decompiler::decompile_with_limits(bytecode, limits);
    let decompile_us = sp_dec.finish_us();
    let sp_pass = telemetry::span("ethainter.passes");
    if config.optimize_ir {
        decompiler::optimize(&mut program, &decompiler::PassConfig::default());
    }
    let passes_us = sp_pass.finish_us();
    let mut report = analyze(&program, config);
    report.stats.timings.decompile_us = decompile_us;
    report.stats.timings.passes_us = passes_us;
    // `analyze` stamped a total without the two phases above; re-derive.
    report.stats.timings.stamp_total();
    report
}
