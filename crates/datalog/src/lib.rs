//! # datalog — a semi-naive fixpoint engine
//!
//! A small, from-scratch reimplementation of the engine architecture the
//! paper's Soufflé backend provides: sorted [`Relation`]s, iteration
//! [`Variable`]s with *stable*/*recent* partitions, and semi-naive rule
//! evaluation ([`join_into`], [`join_relation_into`], [`antijoin_into`],
//! [`Variable::from_map`]) driven to fixpoint by an [`Iteration`].
//! Stratified negation is expressed by completing one stratum's variables
//! into [`Relation`]s consumed by the next (antijoins only ever see
//! completed relations), exactly as the paper's `DS`/`DSA` relations are
//! computed in a stratum before the mutually-recursive taint rules.
//!
//! # Examples
//!
//! Transitive closure — `reach(x, z) :- reach(x, y), edge(y, z)`:
//!
//! ```
//! use datalog::{join_relation_into, Iteration, Relation};
//! let edges = Relation::from_iter(vec![(1u32, 2u32), (2, 3), (3, 4)]);
//! let mut iteration = Iteration::new();
//! let reach = iteration.variable::<(u32, u32)>("reach");
//! let reach_rev = iteration.variable::<(u32, u32)>("reach_rev");
//! reach.extend(edges.iter().copied());
//! while iteration.changed() {
//!     // re-key reach on its destination, then join against edge sources
//!     reach_rev.from_map(&reach, |&(x, y)| (y, x));
//!     join_relation_into(&reach_rev, &edges, &reach, |_, &x, &z| (x, z));
//! }
//! let tc = reach.complete();
//! assert!(tc.contains(&(1, 4)));
//! ```

#![warn(missing_docs)]

pub mod dense;

pub use dense::{BitSet, Interner};

use std::cell::RefCell;
use std::rc::Rc;

/// A sorted, deduplicated set of tuples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation<T: Ord> {
    elements: Vec<T>,
}

impl<T: Ord> Relation<T> {
    /// An empty relation.
    pub fn empty() -> Self {
        Relation { elements: Vec::new() }
    }

    /// Builds from an iterator (sorts and dedups).
    ///
    /// An inherent method rather than `FromIterator` so call sites can
    /// stay turbofish-free (`Relation::from_iter(..)`), matching the
    /// datafrog API this engine is modeled on.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = T>) -> Self {
        let mut elements: Vec<T> = iter.into_iter().collect();
        elements.sort();
        elements.dedup();
        Relation { elements }
    }

    /// Unions two relations.
    ///
    /// Both inputs are already sorted and deduplicated (the type's
    /// invariant), so this is a linear two-pointer merge — O(n + m)
    /// comparisons instead of re-sorting the concatenation.
    pub fn merge(self, other: Self) -> Self {
        if other.elements.is_empty() {
            return self;
        }
        if self.elements.is_empty() {
            return other;
        }
        let mut elements = Vec::with_capacity(self.elements.len() + other.elements.len());
        let mut a = self.elements.into_iter().peekable();
        let mut b = other.elements.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => match x.cmp(y) {
                    std::cmp::Ordering::Less => elements.push(a.next().unwrap()),
                    std::cmp::Ordering::Greater => elements.push(b.next().unwrap()),
                    std::cmp::Ordering::Equal => {
                        elements.push(a.next().unwrap());
                        b.next();
                    }
                },
                (Some(_), None) => {
                    elements.extend(a);
                    break;
                }
                (None, _) => {
                    elements.extend(b);
                    break;
                }
            }
        }
        Relation { elements }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when no tuples exist.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Iterates tuples in sorted order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.elements.iter()
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: &T) -> bool {
        self.elements.binary_search(t).is_ok()
    }

    /// Borrows the sorted tuples.
    pub fn as_slice(&self) -> &[T] {
        &self.elements
    }
}

impl<T: Ord> Default for Relation<T> {
    fn default() -> Self {
        Relation::empty()
    }
}

impl<T: Ord> FromIterator<T> for Relation<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Relation::from_iter(iter)
    }
}

impl<T: Ord> IntoIterator for Relation<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.into_iter()
    }
}

impl<'a, T: Ord> IntoIterator for &'a Relation<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter()
    }
}

trait VariableTrait {
    /// Moves `to_add` into `recent` and `recent` into `stable`; returns
    /// true if `recent` ends up nonempty.
    fn changed(&self) -> bool;
}

struct Inner<T: Ord> {
    stable: Vec<Relation<T>>,
    recent: Relation<T>,
    to_add: Vec<Relation<T>>,
}

/// A monotonically growing relation under iteration.
///
/// Internally partitioned into *stable* (seen in previous rounds),
/// *recent* (new last round), and *to-add* (discovered this round) — the
/// semi-naive discipline that evaluates each rule only against fresh
/// tuples.
pub struct Variable<T: Ord> {
    inner: Rc<RefCell<Inner<T>>>,
    name: String,
}

impl<T: Ord> Clone for Variable<T> {
    fn clone(&self) -> Self {
        Variable { inner: self.inner.clone(), name: self.name.clone() }
    }
}

impl<T: Ord + Clone + 'static> VariableTrait for Variable<T> {
    fn changed(&self) -> bool {
        let mut inner = self.inner.borrow_mut();

        // 1. Fold recent into stable (LSM-style batch merging).
        let recent = std::mem::take(&mut inner.recent);
        if !recent.is_empty() {
            inner.stable.push(recent);
            while inner.stable.len() > 1 {
                let n = inner.stable.len();
                if inner.stable[n - 2].len() <= 2 * inner.stable[n - 1].len() {
                    let top = inner.stable.pop().expect("len checked");
                    let next = inner.stable.pop().expect("len checked");
                    inner.stable.push(next.merge(top));
                } else {
                    break;
                }
            }
        }

        // 2. Merge to_add batches, subtract stable, into recent.
        let to_add = std::mem::take(&mut inner.to_add);
        let mut merged = Relation::empty();
        for batch in to_add {
            merged = merged.merge(batch);
        }
        if !merged.is_empty() {
            let stable = &inner.stable;
            let fresh: Vec<T> = merged
                .into_iter()
                .filter(|t| !stable.iter().any(|s| s.contains(t)))
                .collect();
            inner.recent = Relation::from_iter(fresh);
        }

        !inner.recent.is_empty()
    }
}

impl<T: Ord + Clone + 'static> Variable<T> {
    /// Adds initial tuples.
    pub fn extend(&self, iter: impl IntoIterator<Item = T>) {
        self.insert(Relation::from_iter(iter));
    }

    /// Adds a pre-built relation.
    pub fn insert(&self, relation: Relation<T>) {
        if !relation.is_empty() {
            self.inner.borrow_mut().to_add.push(relation);
        }
    }

    /// Finalizes the variable after iteration.
    ///
    /// # Panics
    ///
    /// Panics if the iteration has not reached fixpoint for this variable
    /// (tuples still pending in `recent`/`to_add`).
    pub fn complete(&self) -> Relation<T> {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.recent.is_empty() && inner.to_add.is_empty(),
            "variable `{}` completed before fixpoint",
            self.name
        );
        let mut out = Relation::empty();
        for batch in std::mem::take(&mut inner.stable) {
            out = out.merge(batch);
        }
        out
    }

    /// Adds `logic(t)` for each tuple `t` new in `input` this round.
    pub fn from_map<S: Ord + Clone + 'static>(
        &self,
        input: &Variable<S>,
        logic: impl Fn(&S) -> T,
    ) {
        let batch = {
            let inner = input.inner.borrow();
            if inner.recent.is_empty() {
                return;
            }
            Relation::from_iter(inner.recent.iter().map(&logic))
        };
        self.insert(batch);
    }

    /// Adds `logic(t)` for each new tuple of `input` where it yields
    /// `Some`.
    pub fn from_filter_map<S: Ord + Clone + 'static>(
        &self,
        input: &Variable<S>,
        logic: impl Fn(&S) -> Option<T>,
    ) {
        let batch = {
            let inner = input.inner.borrow();
            if inner.recent.is_empty() {
                return;
            }
            Relation::from_iter(inner.recent.iter().filter_map(&logic))
        };
        self.insert(batch);
    }
}

/// Semi-naive binary join of `left` and `right` on their first component,
/// outputting `logic(k, v1, v2)` into `output`.
///
/// Evaluates `recent(left) ⋈ stable(right)`, `stable(left) ⋈
/// recent(right)`, and `recent(left) ⋈ recent(right)` — every fresh pair
/// exactly once.
pub fn join_into<K, V1, V2, R>(
    left: &Variable<(K, V1)>,
    right: &Variable<(K, V2)>,
    output: &Variable<R>,
    logic: impl Fn(&K, &V1, &V2) -> R,
) where
    K: Ord + Clone + 'static,
    V1: Ord + Clone + 'static,
    V2: Ord + Clone + 'static,
    R: Ord + Clone + 'static,
{
    let mut results = Vec::new();
    {
        let l = left.inner.borrow();
        let r = right.inner.borrow();
        for rel in &r.stable {
            join_pairs(l.recent.as_slice(), rel.as_slice(), &logic, &mut results);
        }
        for rel in &l.stable {
            join_pairs(rel.as_slice(), r.recent.as_slice(), &logic, &mut results);
        }
        join_pairs(l.recent.as_slice(), r.recent.as_slice(), &logic, &mut results);
    }
    if !results.is_empty() {
        output.insert(Relation::from_iter(results));
    }
}

/// Joins a variable against a *static* relation: only the variable's
/// recent tuples are considered (the relation never changes).
pub fn join_relation_into<K, V1, V2, R>(
    left: &Variable<(K, V1)>,
    right: &Relation<(K, V2)>,
    output: &Variable<R>,
    logic: impl Fn(&K, &V1, &V2) -> R,
) where
    K: Ord + Clone + 'static,
    V1: Ord + Clone + 'static,
    V2: Ord + Clone + 'static,
    R: Ord + Clone + 'static,
{
    let mut results = Vec::new();
    {
        let l = left.inner.borrow();
        join_pairs(l.recent.as_slice(), right.as_slice(), &logic, &mut results);
    }
    if !results.is_empty() {
        output.insert(Relation::from_iter(results));
    }
}

/// Antijoin: adds `logic(k, v)` for each *new* `(k, v)` in `input` whose
/// key is absent from `except`.
///
/// `except` must be a completed relation from an earlier stratum —
/// stratified negation; joining against a still-growing variable would be
/// unsound.
pub fn antijoin_into<K, V, R>(
    input: &Variable<(K, V)>,
    except: &Relation<K>,
    output: &Variable<R>,
    logic: impl Fn(&K, &V) -> R,
) where
    K: Ord + Clone + 'static,
    V: Ord + Clone + 'static,
    R: Ord + Clone + 'static,
{
    let mut results = Vec::new();
    {
        let l = input.inner.borrow();
        for (k, v) in l.recent.iter() {
            if !except.contains(k) {
                results.push(logic(k, v));
            }
        }
    }
    if !results.is_empty() {
        output.insert(Relation::from_iter(results));
    }
}

fn join_pairs<K: Ord, V1, V2, R>(
    mut left: &[(K, V1)],
    mut right: &[(K, V2)],
    logic: &impl Fn(&K, &V1, &V2) -> R,
    out: &mut Vec<R>,
) {
    while !left.is_empty() && !right.is_empty() {
        let lk = &left[0].0;
        let rk = &right[0].0;
        match lk.cmp(rk) {
            std::cmp::Ordering::Less => {
                left = gallop(left, |t| t.0 < *rk);
            }
            std::cmp::Ordering::Greater => {
                right = gallop(right, |t| t.0 < *lk);
            }
            std::cmp::Ordering::Equal => {
                let l_run = left.iter().take_while(|t| t.0 == *lk).count();
                let r_run = right.iter().take_while(|t| t.0 == *lk).count();
                for l in &left[..l_run] {
                    for r in &right[..r_run] {
                        out.push(logic(lk, &l.1, &r.1));
                    }
                }
                left = &left[l_run..];
                right = &right[r_run..];
            }
        }
    }
}

/// Skips past the prefix of `slice` satisfying `cmp`, geometrically.
fn gallop<T>(mut slice: &[T], cmp: impl Fn(&T) -> bool) -> &[T] {
    if !slice.is_empty() && cmp(&slice[0]) {
        let mut step = 1;
        while step < slice.len() && cmp(&slice[step]) {
            slice = &slice[step..];
            step <<= 1;
        }
        step >>= 1;
        while step > 0 {
            if step < slice.len() && cmp(&slice[step]) {
                slice = &slice[step..];
            }
            step >>= 1;
        }
        slice = &slice[1..];
    }
    slice
}

/// Drives a set of variables to fixpoint.
#[derive(Default)]
pub struct Iteration {
    variables: Vec<Box<dyn VariableTrait>>,
    rounds: usize,
}

impl Iteration {
    /// A fresh iteration context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new variable.
    pub fn variable<T: Ord + Clone + 'static>(&mut self, name: &str) -> Variable<T> {
        let v = Variable {
            inner: Rc::new(RefCell::new(Inner {
                stable: Vec::new(),
                recent: Relation::empty(),
                to_add: Vec::new(),
            })),
            name: name.to_string(),
        };
        self.variables.push(Box::new(v.clone()));
        v
    }

    /// Advances one round; true while any variable still changes.
    pub fn changed(&mut self) -> bool {
        self.rounds += 1;
        let mut any = false;
        for v in &self.variables {
            if v.changed() {
                any = true;
            }
        }
        any
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closure(edges: &[(u32, u32)]) -> Relation<(u32, u32)> {
        let edges_rel = Relation::from_iter(edges.iter().copied());
        let mut it = Iteration::new();
        let reach = it.variable::<(u32, u32)>("reach");
        let reach_rev = it.variable::<(u32, u32)>("reach_rev");
        reach.extend(edges.iter().copied());
        while it.changed() {
            reach_rev.from_map(&reach, |&(x, y)| (y, x));
            join_relation_into(&reach_rev, &edges_rel, &reach, |_, &x, &z| (x, z));
        }
        reach.complete()
    }

    #[test]
    fn transitive_closure_chain() {
        let tc = closure(&[(1, 2), (2, 3), (3, 4)]);
        assert!(tc.contains(&(1, 4)));
        assert!(tc.contains(&(2, 4)));
        assert!(!tc.contains(&(4, 1)));
        assert_eq!(tc.len(), 6);
    }

    #[test]
    fn transitive_closure_with_cycle_terminates() {
        let tc = closure(&[(1, 2), (2, 3), (3, 1)]);
        assert_eq!(tc.len(), 9); // complete digraph on {1,2,3}
    }

    #[test]
    fn empty_iteration_stops_immediately() {
        let mut it = Iteration::new();
        let _v = it.variable::<(u32, u32)>("v");
        assert!(!it.changed());
    }

    #[test]
    fn relation_dedups_and_sorts() {
        let r = Relation::from_iter(vec![3, 1, 2, 3, 1]);
        assert_eq!(r.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn merge_unions() {
        let a = Relation::from_iter(vec![1, 3]);
        let b = Relation::from_iter(vec![2, 3]);
        assert_eq!(a.merge(b).as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn merge_handles_overlap_containment_and_emptiness() {
        // Heavy overlap with interleaving: duplicates collapse once.
        let a = Relation::from_iter(vec![1, 2, 4, 6, 8, 10]);
        let b = Relation::from_iter(vec![2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.merge(b).as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8, 10]);

        // One side strictly contains the other.
        let outer = Relation::from_iter(vec![1, 2, 3, 4, 5]);
        let inner = Relation::from_iter(vec![2, 4]);
        assert_eq!(outer.clone().merge(inner.clone()).as_slice(), outer.as_slice());
        assert_eq!(inner.merge(outer.clone()).as_slice(), outer.as_slice());

        // Disjoint tails: the remainder of the longer side is appended.
        let lo = Relation::from_iter(vec![1, 2, 3]);
        let hi = Relation::from_iter(vec![10, 20, 30]);
        assert_eq!(lo.merge(hi).as_slice(), &[1, 2, 3, 10, 20, 30]);

        // Empty operands on either side.
        let e = Relation::<i32>::empty();
        let x = Relation::from_iter(vec![7, 9]);
        assert_eq!(e.clone().merge(x.clone()).as_slice(), &[7, 9]);
        assert_eq!(x.clone().merge(e.clone()).as_slice(), &[7, 9]);
        assert!(e.clone().merge(e).is_empty());

        // Matches the from_iter-over-concatenation specification.
        let p = Relation::from_iter(vec![(1, 'a'), (2, 'b'), (3, 'c')]);
        let q = Relation::from_iter(vec![(2, 'b'), (3, 'a'), (4, 'd')]);
        let spec = Relation::from_iter(
            p.iter().cloned().chain(q.iter().cloned()).collect::<Vec<_>>(),
        );
        assert_eq!(p.merge(q), spec);
    }

    #[test]
    fn variable_join_two_variables() {
        // parent(x,y), parent(y,z) => grandparent(x,z)
        let mut it = Iteration::new();
        let parent = it.variable::<(u32, u32)>("parent");
        let parent_rev = it.variable::<(u32, u32)>("parent_rev");
        let grandparent = it.variable::<(u32, u32)>("grandparent");
        parent.extend(vec![(1, 2), (2, 3), (2, 4)]);
        while it.changed() {
            parent_rev.from_map(&parent, |&(x, y)| (y, x));
            join_into(&parent_rev, &parent, &grandparent, |_, &x, &z| (x, z));
        }
        let gp = grandparent.complete();
        assert_eq!(gp.as_slice(), &[(1, 3), (1, 4)]);
    }

    #[test]
    fn antijoin_excludes_keys() {
        let mut it = Iteration::new();
        let input = it.variable::<(u32, u32)>("input");
        let output = it.variable::<(u32, u32)>("output");
        let except = Relation::from_iter(vec![2u32]);
        input.extend(vec![(1, 10), (2, 20), (3, 30)]);
        while it.changed() {
            antijoin_into(&input, &except, &output, |&k, &v| (k, v));
        }
        assert_eq!(output.complete().as_slice(), &[(1, 10), (3, 30)]);
    }

    #[test]
    fn filter_map_variable() {
        let mut it = Iteration::new();
        let a = it.variable::<u32>("a");
        let b = it.variable::<u32>("b");
        a.extend(vec![1, 2, 3, 4]);
        while it.changed() {
            b.from_filter_map(&a, |&x| if x % 2 == 0 { Some(x * 10) } else { None });
        }
        assert_eq!(b.complete().as_slice(), &[20, 40]);
    }

    #[test]
    fn complete_panics_midway() {
        let mut it = Iteration::new();
        let v = it.variable::<u32>("v");
        v.extend(vec![1]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| v.complete()));
        assert!(result.is_err());
    }

    #[test]
    fn gallop_skips_correctly() {
        let v: Vec<u32> = (0..100).collect();
        let rest = gallop(&v, |&x| x < 37);
        assert_eq!(rest[0], 37);
        let none = gallop(&v, |&x| x < 1000);
        assert!(none.is_empty());
        let all = gallop(&v, |&x| x < 1);
        assert_eq!(all.len(), 99);
    }

    #[test]
    fn duplicate_insertion_does_not_loop_forever() {
        let mut it = Iteration::new();
        let v = it.variable::<u32>("v");
        v.extend(vec![1, 2, 3]);
        let mut rounds = 0;
        while it.changed() {
            // Re-derive the same facts every round; the stable-subtraction
            // must quiesce.
            let snapshot: Vec<u32> = vec![1, 2, 3];
            v.extend(snapshot);
            rounds += 1;
            assert!(rounds < 10, "fixpoint never reached");
        }
    }

    #[test]
    fn semi_naive_matches_naive_on_graph() {
        let edges: Vec<(u32, u32)> =
            vec![(0, 1), (1, 2), (0, 3), (3, 4), (4, 0), (2, 2), (5, 6)];
        let tc = closure(&edges);
        let n = 8;
        let mut m = vec![vec![false; n]; n];
        for &(a, b) in &edges {
            m[a as usize][b as usize] = true;
        }
        loop {
            let mut changed = false;
            for i in 0..n {
                for j in 0..n {
                    if !m[i][j] && (0..n).any(|k| m[i][k] && m[k][j]) {
                        m[i][j] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (i, row) in m.iter().enumerate() {
            for (j, &reachable) in row.iter().enumerate() {
                assert_eq!(reachable, tc.contains(&(i as u32, j as u32)), "({i},{j})");
            }
        }
    }
}
