//! Dense fact representations: atom interning and bitset relations.
//!
//! The sorted-tuple [`Relation`](crate::Relation)s of the semi-naive
//! engine pay an `O(log n)` comparison (and, for wide ground terms like
//! 256-bit storage slots, a 32-byte hash or memcmp) per membership
//! test. Fixpoint inner loops dominated by membership tests over a
//! *small, known-ahead-of-time* universe do better with the classic
//! Datalog backend trick (Soufflé's term interning + BDD/bitset
//! relations): intern every ground term into a dense `u32` atom once,
//! then represent unary relations as bitsets indexed by atom.
//!
//! [`Interner`] is the front half — a stable injective `T → u32` map
//! built during index construction. [`BitSet`] is the back half — a
//! word-packed unary relation with O(1) insert/contains over interned
//! atoms. Monotone fixpoints only ever flip bits on, so `insert`
//! returning "was it new" doubles as the delta test that drives
//! worklist scheduling.

use std::collections::HashMap;
use std::hash::Hash;

/// A stable injective map from ground terms to dense `u32` atoms.
///
/// Interning the same term twice returns the same atom; atoms count up
/// from zero in first-seen order, so they index directly into
/// atom-width [`BitSet`]s and `Vec` side tables.
#[derive(Clone, Debug, Default)]
pub struct Interner<T> {
    atoms: HashMap<T, u32>,
    terms: Vec<T>,
}

impl<T: Clone + Eq + Hash> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner { atoms: HashMap::new(), terms: Vec::new() }
    }

    /// Interns `t`, returning its atom (allocating one when new).
    pub fn intern(&mut self, t: T) -> u32 {
        if let Some(&a) = self.atoms.get(&t) {
            return a;
        }
        let a = self.terms.len() as u32;
        self.terms.push(t.clone());
        self.atoms.insert(t, a);
        a
    }

    /// The atom of `t`, when already interned.
    pub fn lookup(&self, t: &T) -> Option<u32> {
        self.atoms.get(t).copied()
    }

    /// The term behind `atom`.
    ///
    /// # Panics
    ///
    /// Panics when `atom` was never issued by this interner.
    pub fn resolve(&self, atom: u32) -> &T {
        &self.terms[atom as usize]
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(atom, term)` in atom order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

/// A word-packed unary relation over dense atoms.
///
/// Fixed capacity chosen at construction (the interner's universe
/// size); all operations are O(1) or O(capacity/64).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with room for atoms `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], len: 0 }
    }

    /// Inserts `atom`; true when it was not already present.
    ///
    /// # Panics
    ///
    /// Panics when `atom` exceeds the constructed capacity — an
    /// out-of-universe atom is an interning bug, not a growth request.
    pub fn insert(&mut self, atom: u32) -> bool {
        let (w, b) = (atom as usize / 64, atom as usize % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    /// Membership test. Atoms beyond capacity are absent, not errors
    /// (`contains` is a query, `insert` is an assertion).
    pub fn contains(&self, atom: u32) -> bool {
        let (w, b) = (atom as usize / 64, atom as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of atoms present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no atom is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates present atoms in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_eq!(i.intern("x"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(i.len(), 2);
        assert_eq!(*i.resolve(b), "y");
        assert_eq!(i.lookup(&"y"), Some(1));
        assert_eq!(i.lookup(&"z"), None);
        let pairs: Vec<(u32, &&str)> = i.iter().collect();
        assert_eq!(pairs, vec![(0, &"x"), (1, &"y")]);
    }

    #[test]
    fn bitset_insert_contains_iter() {
        let mut s = BitSet::with_capacity(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "duplicate insert must report not-new");
        assert_eq!(s.len(), 4);
        assert!(s.contains(129));
        assert!(!s.contains(100));
        assert!(!s.contains(10_000), "out-of-capacity query is just absent");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn bitset_zero_capacity() {
        let s = BitSet::with_capacity(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn bitset_matches_hashset_reference() {
        // Deterministic pseudo-random walk, mirrored into a HashSet.
        let mut s = BitSet::with_capacity(512);
        let mut reference = std::collections::HashSet::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let atom = (x >> 33) as u32 % 512;
            assert_eq!(s.insert(atom), reference.insert(atom), "atom {atom}");
        }
        assert_eq!(s.len(), reference.len());
        let mut sorted: Vec<u32> = reference.into_iter().collect();
        sorted.sort_unstable();
        assert_eq!(s.iter().collect::<Vec<_>>(), sorted);
    }
}
