//! End-to-end loopback exercise of the daemon over real TCP: concurrent
//! clients, mixed warm/cold submissions, verdict identity against the
//! batch pipeline, deterministic queue overflow, and a graceful
//! shutdown that loses nothing it accepted.

use server::{api, client, Server, ServerConfig};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// The global telemetry registry is shared by every test in this
/// binary; serializing them keeps the delta assertions honest.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock_serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ethainter-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hex(code: &[u8]) -> String {
    code.iter().map(|b| format!("{b:02x}")).collect()
}

/// Four distinct single-function contracts — tiny but real bytecode.
fn unique_contracts(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let src = format!(
                "contract S{i} {{ uint v; function set(uint a) public {{ v = a + 0x{i:x}; }} }}"
            );
            minisol::compile_source(&src).unwrap().bytecode
        })
        .collect()
}

fn counter(name: &str) -> u64 {
    telemetry::metrics::counter(name).get()
}

/// The headline acceptance test: N=8 concurrent clients over loopback
/// TCP, mixed warm/cold submissions of 4 unique bytecodes, all jobs
/// completing with verdicts byte-identical to the batch pipeline,
/// every duplicate answered by the shared cache, and the completion
/// counter visible through `GET /metrics`.
#[test]
fn eight_concurrent_clients_mixed_warm_cold() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 3;
    const UNIQUE: usize = 4;
    let _serial = lock_serial();

    let dir = tmp_dir("mixed");
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let contracts = unique_contracts(UNIQUE);
    let completed_before = counter("ethainter_server_jobs_completed_total");

    // The reference verdicts: the same bytecodes through the batch
    // pipeline, stripped of timings exactly like cache entries are.
    let batch = driver::analyze_batch(
        contracts.iter().enumerate().map(|(i, c)| (format!("ref-{i}"), c.clone())).collect(),
        &driver::DriverConfig::default(),
        &ethainter::Config::default(),
    );
    let reference: Vec<String> = batch
        .outcomes
        .iter()
        .map(|o| serde_json::to_string(&o.status.without_timings()).unwrap())
        .collect();

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for t in 0..CLIENTS {
        let addr = addr.clone();
        let contracts = contracts.clone();
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let mut results = Vec::new();
            for j in 0..PER_CLIENT {
                let which = (t + j) % UNIQUE;
                let resp = client::submit(
                    &addr,
                    &api::JobRequest {
                        bytecode: hex(&contracts[which]),
                        id: Some(format!("client{t}-job{j}")),
                        config: None,
                    },
                )
                .unwrap();
                assert_eq!(resp.status, 202, "submit must be accepted: {}", resp.body);
                let accepted: api::JobAccepted = serde_json::from_str(&resp.body).unwrap();
                let done =
                    client::await_job(&addr, &accepted.id, Duration::from_secs(60)).unwrap();
                results.push((which, done));
            }
            results
        }));
    }

    let mut cached_count = 0usize;
    let mut total = 0usize;
    for t in threads {
        for (which, done) in t.join().unwrap() {
            total += 1;
            assert_eq!(done.state, "done");
            let report = done.report.expect("done jobs carry the full report");
            let got = serde_json::to_string(&report.status.without_timings()).unwrap();
            assert_eq!(
                got, reference[which],
                "serve verdict for contract {which} must be byte-identical to batch"
            );
            if done.cached == Some(true) {
                cached_count += 1;
            }
        }
    }
    assert_eq!(total, CLIENTS * PER_CLIENT);
    // Single-flight + shared cache: exactly one fresh analysis per
    // unique bytecode, every other submission a hit.
    assert_eq!(
        cached_count,
        total - UNIQUE,
        "all but {UNIQUE} submissions must be answered by the shared cache"
    );

    // The live metrics endpoint reflects the work while it is running.
    let metrics = client::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("ethainter_server_jobs_completed_total"),
        "prometheus text must carry the server counters"
    );
    assert_eq!(
        counter("ethainter_server_jobs_completed_total") - completed_before,
        total as u64
    );

    let report = handle.shutdown();
    assert!(report.drained_cleanly);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic backpressure: with the lone worker wedged on a
/// single-flight claim the test holds, the bounded queue fills, the
/// next submission gets 429 — and after the release the workers drain
/// everything, un-wedged.
#[test]
fn queue_overflow_answers_429_without_wedging_workers() {
    let _serial = lock_serial();
    let dir = tmp_dir("overflow");
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 2,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let contracts = unique_contracts(4);
    let config = ethainter::Config::default();

    // Wedge: claim contract 0's cache key from the test thread. The
    // worker that picks job 0 will block on the single-flight condvar
    // until we finish "computing".
    let key0 = store::cache_key(&contracts[0], &config);
    let cache = handle.cache().unwrap();
    let claimed = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));
    let wedge = {
        let (claimed, release) = (Arc::clone(&claimed), Arc::clone(&release));
        let code0 = contracts[0].clone();
        std::thread::spawn(move || {
            cache.get_or_compute(key0, move || {
                claimed.wait();
                release.wait();
                store::CachedResult {
                    status: driver::analyze_one(&code0, &config),
                    elapsed_ms: 0,
                }
            })
        })
    };
    claimed.wait(); // key 0 is now held in flight

    let submit = |which: usize, label: &str| {
        client::submit(
            &addr,
            &api::JobRequest {
                bytecode: hex(&contracts[which]),
                id: Some(label.to_string()),
                config: None,
            },
        )
        .unwrap()
    };

    // Job 0 is claimed by the worker, which blocks on the wedge.
    let a = submit(0, "wedged");
    assert_eq!(a.status, 202);
    // Wait until the worker has actually taken it (queue empties).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let c = handle.job_counts();
        if c.running == 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "worker never claimed the job");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Fill the bounded queue (depth 2), then overflow it.
    assert_eq!(submit(1, "fill-1").status, 202);
    assert_eq!(submit(2, "fill-2").status, 202);
    let overflow = submit(3, "overflow");
    assert_eq!(overflow.status, 429, "full queue must push back: {}", overflow.body);
    let err: api::ErrorBody = serde_json::from_str(&overflow.body).unwrap();
    assert!(err.error.contains("queue full"), "{}", err.error);

    // Release the wedge: everything accepted drains, nothing is stuck.
    release.wait();
    wedge.join().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let c = handle.job_counts();
        if c.queued == 0 && c.running == 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "drain never finished: {c:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The rejected submission was never registered — retrying works.
    let retry = submit(3, "overflow-retry");
    assert_eq!(retry.status, 202, "a 429 must not wedge future submissions");
    let accepted: api::JobAccepted = serde_json::from_str(&retry.body).unwrap();
    let done = client::await_job(&addr, &accepted.id, Duration::from_secs(60)).unwrap();
    assert_eq!(done.state, "done");

    let report = handle.shutdown();
    assert!(report.drained_cleanly);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful shutdown: with jobs accepted and the drain held open, new
/// submissions get 503 while polls keep answering; when the drain
/// completes, every accepted job reached `done`.
#[test]
fn shutdown_drains_every_accepted_job() {
    let _serial = lock_serial();
    let dir = tmp_dir("drain");
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let contracts = unique_contracts(4);
    let config = ethainter::Config::default();

    // Hold the drain open by wedging contract 0's key.
    let key0 = store::cache_key(&contracts[0], &config);
    let claimed = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));
    let wedge = {
        let (claimed, release) = (Arc::clone(&claimed), Arc::clone(&release));
        let code0 = contracts[0].clone();
        let cache = handle.cache().unwrap();
        std::thread::spawn(move || {
            cache.get_or_compute(key0, move || {
                claimed.wait();
                release.wait();
                store::CachedResult {
                    status: driver::analyze_one(&code0, &config),
                    elapsed_ms: 0,
                }
            })
        })
    };

    let mut accepted_ids = Vec::new();
    for (i, code) in contracts.iter().enumerate() {
        let resp = client::submit(
            &addr,
            &api::JobRequest {
                bytecode: hex(code),
                id: Some(format!("drain-{i}")),
                config: None,
            },
        )
        .unwrap();
        assert_eq!(resp.status, 202);
        let a: api::JobAccepted = serde_json::from_str(&resp.body).unwrap();
        accepted_ids.push(a.id);
    }
    claimed.wait(); // the worker is now inside job 0, drain will block

    // Shutdown on a helper thread: it must wait for the wedged job.
    let shutdown = std::thread::spawn(move || handle.shutdown());

    // During the drain: new work is refused, polling still answers.
    std::thread::sleep(Duration::from_millis(50));
    let refused = client::submit(
        &addr,
        &api::JobRequest { bytecode: hex(&contracts[1]), id: None, config: None },
    )
    .unwrap();
    assert_eq!(refused.status, 503, "draining daemon must refuse new jobs: {}", refused.body);
    let poll = client::request(&addr, "GET", &format!("/jobs/{}", accepted_ids[0]), None).unwrap();
    assert_eq!(poll.status, 200, "polls must keep working during the drain");
    let health = client::request(&addr, "GET", "/healthz", None).unwrap();
    let h: api::Health = serde_json::from_str(&health.body).unwrap();
    assert_eq!(h.status, "draining");

    release.wait();
    wedge.join().unwrap();
    let report = shutdown.join().unwrap();
    assert!(report.drained_cleanly, "SIGINT must lose no accepted job");
    assert!(report.jobs_done >= accepted_ids.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
