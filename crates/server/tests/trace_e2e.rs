//! End-to-end exercise of the observability plane against a live
//! daemon: per-job span trees over `GET /jobs/<id>/trace`, the event
//! feed (lifecycle, long-poll, slow-job detection), registry eviction
//! answering 410, and the byte-identity guarantee — trace ids live in
//! telemetry output only, never in cache segments or merged verdicts.

use server::{api, client, Server, ServerConfig};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;
use telemetry::trace::{SpanNode, TraceId};

/// The global telemetry registry (metrics, events, trace store) is
/// shared by every test in this binary; serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock_serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ethainter-trace-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hex(code: &[u8]) -> String {
    code.iter().map(|b| format!("{b:02x}")).collect()
}

/// Distinct composite-vulnerable contracts: a tainted owner write plus
/// a guarded selfdestruct, so every analysis walks the full phase set
/// (detectors, effects, and the composite re-evaluation).
fn composite_contracts(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let src = format!(
                "contract S{i} {{
                    address owner;
                    uint total;
                    function claim(address who) public {{ owner = who; }}
                    function add(uint v) public {{ total = total + v + 0x{i:x}; }}
                    function kill() public {{ require(msg.sender == owner); selfdestruct(msg.sender); }}
                }}"
            );
            minisol::compile_source(&src).unwrap().bytecode
        })
        .collect()
}

fn submit(addr: &str, code: &[u8], label: &str) -> api::JobAccepted {
    let resp = client::submit(
        addr,
        &api::JobRequest {
            bytecode: hex(code),
            id: Some(label.to_string()),
            config: None,
        },
    )
    .unwrap();
    assert_eq!(resp.status, 202, "submit must be accepted: {}", resp.body);
    serde_json::from_str(&resp.body).unwrap()
}

fn counter(name: &str) -> u64 {
    telemetry::metrics::counter(name).get()
}

/// Flattens a span forest to `(name, trace)` pairs, depth-first.
fn flatten(nodes: &[SpanNode], out: &mut Vec<(String, TraceId)>) {
    for n in nodes {
        out.push((n.name.clone(), n.trace));
        flatten(&n.children, out);
    }
}

/// The headline acceptance test: 8 concurrent jobs against a live
/// daemon, each `/trace` serving a complete span tree in which every
/// span carries that job's trace id and the tree walks the pipeline's
/// phases — decompile → index_build → fixpoint → detectors/effects/
/// composite — under one `server.job` root.
#[test]
fn eight_concurrent_jobs_each_serve_their_own_span_tree() {
    const JOBS: usize = 8;
    let _serial = lock_serial();

    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let contracts = composite_contracts(JOBS);

    let barrier = Arc::new(Barrier::new(JOBS));
    let mut threads = Vec::new();
    for (t, code) in contracts.into_iter().enumerate() {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let accepted = submit(&addr, &code, &format!("traced-{t}"));
            let done = client::await_job(&addr, &accepted.id, Duration::from_secs(60)).unwrap();
            assert_eq!(done.state, "done");
            let resp = client::request(
                &addr,
                "GET",
                &format!("/jobs/{}/trace", accepted.id),
                None,
            )
            .unwrap();
            assert_eq!(resp.status, 200, "trace route must answer: {}", resp.body);
            let trace: api::TraceBody = serde_json::from_str(&resp.body).unwrap();
            (accepted.id, trace)
        }));
    }

    for t in threads {
        let (job_id, body) = t.join().unwrap();
        assert_eq!(body.id, job_id);
        assert_eq!(body.state, "done", "trace fetched after `done` is complete");
        let own = TraceId::parse(&job_id).expect("job ids are 16-hex trace ids");

        let mut spans = Vec::new();
        flatten(&body.spans, &mut spans);
        assert_eq!(spans.len() as u64, body.span_count, "the tree holds every span");
        assert!(
            spans.iter().all(|(_, trace)| *trace == own),
            "job {job_id}: every span carries this job's trace id, none bleed in"
        );

        // The root is the worker's job span; the analysis phases all
        // nest beneath it (across the sandbox thread hop).
        assert_eq!(body.spans.len(), 1, "one root per job trace");
        assert_eq!(body.spans[0].name, "server.job");
        let names: Vec<&str> = spans.iter().map(|(n, _)| n.as_str()).collect();
        for phase in [
            "ethainter.decompile",
            "ethainter.index_build",
            "ethainter.fixpoint",
            "ethainter.detectors",
            "ethainter.effects",
            "ethainter.composite",
        ] {
            assert!(names.contains(&phase), "job {job_id}: tree must contain {phase}: {names:?}");
        }
    }

    let report = handle.shutdown();
    assert!(report.drained_cleanly);
}

/// Zeroes every `"elapsed_ms":N` in a JSONL text — the one field that
/// is wall-clock, hence legitimately run-dependent.
fn zero_elapsed(text: &str) -> String {
    let mut out = String::new();
    let needle = "\"elapsed_ms\":";
    for line in text.lines() {
        if let Some(pos) = line.find(needle) {
            let start = pos + needle.len();
            let end = line[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(line.len(), |e| start + e);
            out.push_str(&line[..start]);
            out.push('0');
            out.push_str(&line[end..]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Byte-identity: tracing is pure telemetry. The daemon's cache
/// segment must match a tracing-off in-process run modulo wall-clock
/// `elapsed_ms`, and merged verdict lines from a traced batch run must
/// be byte-identical to an untraced one. Neither artifact may so much
/// as mention traces.
#[test]
fn trace_ids_never_reach_cache_segments_or_merged_output() {
    let _serial = lock_serial();
    let contracts = composite_contracts(3);
    let config = ethainter::Config::default();

    // Daemon run (tracing on: trace id == job id for every worker).
    let dir_daemon = tmp_dir("ident-daemon");
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        cache_dir: Some(dir_daemon.to_string_lossy().into_owned()),
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    for (i, code) in contracts.iter().enumerate() {
        let accepted = submit(&addr, code, &format!("ident-{i}"));
        let done = client::await_job(&addr, &accepted.id, Duration::from_secs(60)).unwrap();
        assert_eq!(done.state, "done");
    }
    handle.shutdown();
    let daemon_segment =
        std::fs::read_to_string(dir_daemon.join("segment.jsonl")).expect("daemon wrote a segment");

    // Reference run: the same contracts through the shared cache with
    // no trace context anywhere near it.
    let dir_ref = tmp_dir("ident-ref");
    let reference = store::SharedCache::open(&dir_ref).unwrap();
    for code in &contracts {
        let key = store::cache_key(code, &config);
        let code = code.clone();
        reference.get_or_compute(key, move || store::CachedResult {
            status: driver::analyze_one(&code, &config),
            elapsed_ms: 0,
        });
    }
    drop(reference);
    let ref_segment =
        std::fs::read_to_string(dir_ref.join("segment.jsonl")).expect("reference wrote a segment");

    assert_eq!(
        zero_elapsed(&daemon_segment),
        zero_elapsed(&ref_segment),
        "cache segments must be byte-identical modulo wall-clock elapsed_ms"
    );
    assert!(
        !daemon_segment.contains("trace"),
        "trace ids are telemetry-only; the segment must never mention them"
    );

    // Merged verdict lines: a batch run under a retained trace vs one
    // with no tracing at all.
    let inputs: Vec<(String, Vec<u8>)> =
        contracts.iter().enumerate().map(|(i, c)| (format!("m-{i}"), c.clone())).collect();
    let merged = |outcomes: &[driver::Outcome]| -> String {
        outcomes
            .iter()
            .map(|o| serde_json::to_string(&store::VerdictRecord::from_outcome(o)).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let traced = {
        let id = telemetry::trace::mint();
        telemetry::trace::retain(id);
        let _ctx = telemetry::trace::root(id);
        let batch = driver::analyze_batch(
            inputs.clone(),
            &driver::DriverConfig::default(),
            &config,
        );
        telemetry::trace::discard(id);
        merged(&batch.outcomes)
    };
    let untraced = {
        let batch =
            driver::analyze_batch(inputs, &driver::DriverConfig::default(), &config);
        merged(&batch.outcomes)
    };
    assert_eq!(traced, untraced, "merged verdicts are identical with tracing on or off");
    assert!(!traced.contains("trace"), "merged output must never mention traces");

    let _ = std::fs::remove_dir_all(&dir_daemon);
    let _ = std::fs::remove_dir_all(&dir_ref);
}

/// Registry eviction: with `--max-done 2`, the oldest completed
/// records age out FIFO — their status *and* trace routes answer
/// `410 Gone`, the eviction counter ticks, and recent jobs still serve.
#[test]
fn evicted_jobs_answer_410_on_status_and_trace_routes() {
    let _serial = lock_serial();
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_done: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let contracts = composite_contracts(4);
    let evicted_before = counter("ethainter_server_jobs_evicted_total");

    let mut ids = Vec::new();
    for (i, code) in contracts.iter().enumerate() {
        let accepted = submit(&addr, code, &format!("evict-{i}"));
        let done = client::await_job(&addr, &accepted.id, Duration::from_secs(60)).unwrap();
        assert_eq!(done.state, "done");
        ids.push(accepted.id);
    }

    // 4 completions against a bound of 2: the first two aged out.
    assert_eq!(counter("ethainter_server_jobs_evicted_total") - evicted_before, 2);
    for old in &ids[..2] {
        for route in [format!("/jobs/{old}"), format!("/jobs/{old}/trace")] {
            let resp = client::request(&addr, "GET", &route, None).unwrap();
            assert_eq!(resp.status, 410, "evicted job must answer 410 on {route}: {}", resp.body);
            let err: api::ErrorBody = serde_json::from_str(&resp.body).unwrap();
            assert!(err.error.contains("evicted"), "{}", err.error);
        }
    }
    for recent in &ids[2..] {
        let resp = client::request(&addr, "GET", &format!("/jobs/{recent}"), None).unwrap();
        assert_eq!(resp.status, 200, "recent jobs stay served: {}", resp.body);
        let trace =
            client::request(&addr, "GET", &format!("/jobs/{recent}/trace"), None).unwrap();
        assert_eq!(trace.status, 200);
    }
    // An id never issued is 404, not 410.
    let never = client::request(&addr, "GET", "/jobs/00000000deadbeef", None).unwrap();
    assert_eq!(never.status, 404);

    let report = handle.shutdown();
    assert!(report.drained_cleanly);
}

/// A contract heavy enough to dwarf everything else this test binary
/// analyzes: the slow-job detector compares against the live p99, so
/// the induced outlier must dominate whatever history exists.
fn big_contract() -> Vec<u8> {
    let mut src = String::from("contract Big { address owner; uint acc; mapping(address => uint) bal;\n");
    for i in 0..150 {
        src.push_str(&format!(
            "function f{i}(uint v) public {{ acc = acc + v * 0x{i:x} + acc; bal[msg.sender] = acc + v; }}\n"
        ));
    }
    src.push_str(
        "function claim(address who) public { owner = who; }
         function kill() public { require(msg.sender == owner); selfdestruct(msg.sender); } }",
    );
    minisol::compile_source(&src).unwrap().bytecode
}

/// The event feed end-to-end: lifecycle events are served over
/// `GET /events`, a `since=` cursor long-polls and wakes on the next
/// emission, and a job far above the live p99 emits `slow_job` with a
/// phase breakdown under its own trace id.
#[test]
fn events_feed_serves_lifecycle_long_poll_and_slow_jobs() {
    let _serial = lock_serial();
    let seq_boot = telemetry::events::latest_event_seq();
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // Lifecycle: startup emitted an event newer than our cursor.
    let resp = client::request(
        &addr,
        "GET",
        &format!("/events?since={seq_boot}&wait_ms=2000"),
        None,
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let feed: api::EventsBody = serde_json::from_str(&resp.body).unwrap();
    assert!(
        feed.events.iter().any(|e| e.message == "server_started"),
        "the feed carries the startup event: {}",
        resp.body
    );
    assert!(feed.latest > seq_boot);

    // Long-poll: a reader parked on the current cursor wakes when the
    // next event lands, well before its 10s window lapses.
    let cursor = telemetry::events::latest_event_seq();
    let poll = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            client::request(
                &addr,
                "GET",
                &format!("/events?since={cursor}&wait_ms=10000"),
                None,
            )
            .unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    let woke = std::time::Instant::now();
    telemetry::events::emit(
        telemetry::events::Severity::Info,
        "long_poll_wakeup",
        None,
        vec![],
    );
    let resp = poll.join().unwrap();
    assert!(woke.elapsed() < Duration::from_secs(8), "the poll must wake, not time out");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("long_poll_wakeup"), "{}", resp.body);

    // Slow job: seed enough latency history for the p99 gate, then
    // push one contract that dwarfs it.
    let tiny = composite_contracts(17);
    for (i, code) in tiny.iter().enumerate() {
        let accepted = submit(&addr, code, &format!("hist-{i}"));
        let done = client::await_job(&addr, &accepted.id, Duration::from_secs(60)).unwrap();
        assert_eq!(done.state, "done");
    }
    let seq_before_big = telemetry::events::latest_event_seq();
    let accepted = submit(&addr, &big_contract(), "the-slow-one");
    let done = client::await_job(&addr, &accepted.id, Duration::from_secs(120)).unwrap();
    assert_eq!(done.state, "done");

    let resp = client::request(
        &addr,
        "GET",
        &format!("/events?since={seq_before_big}&wait_ms=2000"),
        None,
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    let feed: api::EventsBody = serde_json::from_str(&resp.body).unwrap();
    let slow = feed
        .events
        .iter()
        .find(|e| e.message == "slow_job")
        .expect("a job far above the live p99 must emit slow_job");
    assert_eq!(
        slow.trace,
        Some(TraceId::parse(&accepted.id).unwrap()),
        "the slow_job event names the offending job's trace"
    );
    assert_eq!(slow.severity.as_str(), "warn");
    let field = |name: &str| slow.fields.iter().find(|(k, _)| k == name);
    assert!(field("total_ms").is_some(), "slow_job carries the total");
    assert!(field("fixpoint_us").is_some(), "slow_job carries the phase breakdown");

    let report = handle.shutdown();
    assert!(report.drained_cleanly);
}
