//! The JSON wire types of the daemon — and of every CLI surface that
//! mirrors them.
//!
//! These structs are the *contract*: `POST /jobs` deserializes
//! [`JobRequest`], `GET /jobs/<id>` serializes [`JobStatusBody`], and
//! `ethainter cache stats --json` prints the very same
//! [`CacheStatsBody`] the daemon serves at `GET /cache/stats` — one
//! schema, two transports, so tooling written against either keeps
//! working against both.

use driver::Outcome;
use serde::{Deserialize, Serialize};
use store::CacheStats;

/// Body of `POST /jobs`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct JobRequest {
    /// Runtime bytecode as hex, with or without a `0x` prefix.
    pub bytecode: String,
    /// Optional client-chosen label echoed back in the outcome's `id`
    /// field; defaults to the server-assigned job id.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub id: Option<String>,
    /// Optional per-job analysis configuration overrides.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub config: Option<ConfigPatch>,
}

/// Per-job overrides on the daemon's base [`ethainter::Config`]. Every
/// field is optional; omitted fields inherit the server default. Field
/// names mirror the CLI flags (`guards: false` ≙ `--no-guards`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ConfigPatch {
    /// Guard-aware sanitization modeling (`false` ≙ `--no-guards`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub guards: Option<bool>,
    /// Storage taint propagation (`false` ≙ `--no-storage`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub storage: Option<bool>,
    /// Conservative storage model (`true` ≙ `--conservative`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub conservative: Option<bool>,
    /// Attach taint-provenance witnesses to findings (`--witness`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub witness: Option<bool>,
    /// Fixpoint evaluator: `"dense"` or `"sparse"` (`--engine`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub engine: Option<String>,
}

impl ConfigPatch {
    /// Applies the overrides to a base config.
    pub fn apply(&self, base: &ethainter::Config) -> Result<ethainter::Config, String> {
        let mut cfg = *base;
        if let Some(g) = self.guards {
            cfg.guard_modeling = g;
        }
        if let Some(s) = self.storage {
            cfg.storage_taint = s;
        }
        if let Some(true) = self.conservative {
            cfg.storage_model = ethainter::StorageModel::Conservative;
        }
        if let Some(w) = self.witness {
            cfg.witness = w;
        }
        if let Some(e) = &self.engine {
            cfg.engine = ethainter::Engine::parse(e)?;
        }
        Ok(cfg)
    }
}

/// Body of a successful `POST /jobs` (HTTP 202).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobAccepted {
    /// The server-assigned job id — poll `GET /jobs/<id>` with it.
    pub id: String,
    /// Always `"queued"` at acceptance.
    pub state: String,
}

/// Body of `GET /jobs/<id>`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobStatusBody {
    /// The job id.
    pub id: String,
    /// `"queued"`, `"running"`, or `"done"`.
    pub state: String,
    /// Present once running: milliseconds spent queued.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wait_ms: Option<u64>,
    /// Present once done: milliseconds from acceptance to completion.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub total_ms: Option<u64>,
    /// Present once done: whether the verdict came from the shared
    /// cache.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cached: Option<bool>,
    /// Present once done: the full analysis report — the same
    /// [`driver::Outcome`] record a batch run writes per JSONL line
    /// (verdicts, fact counts, timings, optional witness).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub report: Option<Outcome>,
}

/// Body of `GET /healthz`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Health {
    /// `"ok"` while accepting, `"draining"` during graceful shutdown.
    pub status: String,
    /// Jobs accepted but not yet claimed by a worker.
    pub queued: u64,
    /// Jobs currently being analyzed.
    pub running: u64,
    /// Jobs finished since boot.
    pub done: u64,
    /// Analysis worker threads.
    pub workers: u64,
    /// Bound on the queue (`--queue-depth`).
    pub queue_capacity: u64,
    /// True when a shared result cache is configured.
    pub cache: bool,
}

/// Body of `GET /cache/stats` — and, verbatim, of
/// `ethainter cache stats --json`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CacheStatsBody {
    /// Distinct keys in the index.
    pub entries: u64,
    /// Entries whose status is `Analyzed`.
    pub analyzed: u64,
    /// Entries whose status is `DecompileFailed`.
    pub decompile_failed: u64,
    /// Bytes in the append-only segment file.
    pub segment_bytes: u64,
    /// Hits since this store was opened.
    pub session_hits: u64,
    /// Misses since this store was opened.
    pub session_misses: u64,
    /// Lifetime hits (previous sessions + this one).
    pub total_hits: u64,
    /// Lifetime misses (previous sessions + this one).
    pub total_misses: u64,
}

impl CacheStatsBody {
    /// Builds the wire form from a store's point-in-time stats plus its
    /// per-status breakdown.
    pub fn new(stats: &CacheStats, analyzed: usize, decompile_failed: usize) -> CacheStatsBody {
        CacheStatsBody {
            entries: stats.entries as u64,
            analyzed: analyzed as u64,
            decompile_failed: decompile_failed as u64,
            segment_bytes: stats.segment_bytes,
            session_hits: stats.session_hits,
            session_misses: stats.session_misses,
            total_hits: stats.total_hits,
            total_misses: stats.total_misses,
        }
    }
}

/// Body of `GET /jobs/<id>/trace` — the job's span tree, assembled
/// from the per-trace span store ([`telemetry::trace`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceBody {
    /// The job id (== the trace id every span below carries).
    pub id: String,
    /// The job's lifecycle state at snapshot time: `"queued"`,
    /// `"running"`, or `"done"` — a trace fetched before `done` is a
    /// prefix of the final tree.
    pub state: String,
    /// Flat count of spans recorded under this trace so far.
    pub span_count: u64,
    /// The assembled span forest: roots in start order, each node with
    /// total and self time and its children nested.
    pub spans: Vec<telemetry::trace::SpanNode>,
}

/// Body of `GET /events[?since=<seq>]` — a page of the daemon's
/// structured event feed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventsBody {
    /// The newest sequence number the bus has emitted; pass it back as
    /// `since` to long-poll for what comes next.
    pub latest: u64,
    /// Buffered events newer than `since`, oldest first.
    pub events: Vec<telemetry::events::Event>,
}

/// Body of every non-2xx response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable reason.
    pub error: String,
}

impl ErrorBody {
    /// Serializes `{"error": msg}`.
    pub fn json(msg: impl Into<String>) -> String {
        serde_json::to_string(&ErrorBody { error: msg.into() })
            .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_parses_with_and_without_optionals() {
        let min: JobRequest = serde_json::from_str(r#"{"bytecode":"0x6001"}"#).unwrap();
        assert_eq!(min.bytecode, "0x6001");
        assert!(min.id.is_none() && min.config.is_none());

        let full: JobRequest = serde_json::from_str(
            r#"{"bytecode":"00","id":"c1","config":{"guards":false,"engine":"dense","witness":true}}"#,
        )
        .unwrap();
        assert_eq!(full.id.as_deref(), Some("c1"));
        let cfg = full.config.unwrap().apply(&ethainter::Config::default()).unwrap();
        assert!(!cfg.guard_modeling);
        assert!(cfg.witness);
        assert_eq!(cfg.engine, ethainter::Engine::Dense);
    }

    #[test]
    fn bad_engine_is_rejected() {
        let patch = ConfigPatch { engine: Some("quantum".into()), ..Default::default() };
        assert!(patch.apply(&ethainter::Config::default()).is_err());
    }

    #[test]
    fn job_status_omits_absent_fields() {
        let queued = JobStatusBody {
            id: "0000000000000001".into(),
            state: "queued".into(),
            wait_ms: None,
            total_ms: None,
            cached: None,
            report: None,
        };
        let s = serde_json::to_string(&queued).unwrap();
        assert!(!s.contains("report"), "absent fields must not serialize: {s}");
        let back: JobStatusBody = serde_json::from_str(&s).unwrap();
        assert_eq!(back.state, "queued");
    }
}
