//! # server — analysis-as-a-service for the ethainter pipeline
//!
//! `ethainter serve` turns the batch analyzer into a long-lived daemon:
//! a zero-dependency HTTP/1.1 + JSON server on [`std::net::TcpListener`]
//! with an async job queue in front of the existing [`driver`] isolation
//! machinery and one [`store::SharedCache`] behind every request.
//!
//! ```text
//!   POST /jobs ──▶ registry.create ──▶ bounded JobQueue ──▶ worker 0..N
//!                      │                    │ full? 429          │
//!   GET /jobs/<id> ◀── registry ◀───────────┴── complete ◀───────┤
//!                                                                │
//!   GET /metrics  ◀── telemetry::metrics (live Prometheus text)  │
//!   GET /healthz  ◀── queue depth + job counts                   │
//!   GET /cache/stats ◀──────── SharedCache ◀── get_or_compute ◀──┘
//! ```
//!
//! ## Routes
//!
//! - `POST /jobs` — body [`api::JobRequest`] (hex bytecode + optional
//!   config patch) → 202 [`api::JobAccepted`] with a job id. Queue
//!   full → 429; draining → 503; bad input → 400; oversized → 413.
//! - `GET /jobs/<id>` — [`api::JobStatusBody`]: `queued`, `running`,
//!   or `done` with the full report (the same [`driver::Outcome`]
//!   record a batch run writes per JSONL line, witness included when
//!   requested).
//! - `GET /jobs/<id>/trace` — [`api::TraceBody`]: the job's complete
//!   span tree (trace id == job id), assembled from the per-trace span
//!   store with self-time per phase; 410 after eviction.
//! - `GET /events[?since=<seq>[&wait_ms=<ms>]]` — [`api::EventsBody`]:
//!   the structured event feed (lifecycle, slow jobs, cache errors).
//!   With `since`, long-polls until something newer arrives.
//! - `GET /healthz` — [`api::Health`] liveness + queue/job counts.
//! - `GET /metrics` — the live global metric registry as Prometheus
//!   text ([`telemetry::metrics::snapshot`]), scrapeable mid-run.
//! - `GET /cache/stats` — [`api::CacheStatsBody`] for the shared
//!   cache (404 when the daemon runs cacheless).
//!
//! ## What each piece guarantees
//!
//! - **Isolation** — every job runs through [`driver::analyze_job`]:
//!   the same sandbox thread + `catch_unwind` + cooperative-deadline
//!   watchdog as batch mode, so a looping or panicking contract costs
//!   one job, never the daemon.
//! - **Cache sharing** — all workers answer out of one
//!   [`store::SharedCache`]; N concurrent submissions of the same
//!   bytecode+config cost exactly one fresh analysis (single-flight),
//!   and a re-submission after restart hits the on-disk segment.
//! - **Backpressure** — the queue is bounded ([`ServerConfig::
//!   queue_depth`]); acceptors never block on workers, they answer 429
//!   and the client retries.
//! - **Graceful shutdown** — [`ServerHandle::shutdown`] (wired to
//!   SIGINT by the CLI) stops accepting *new* jobs (503), drains every
//!   accepted one, keeps `GET` routes alive so pollers can collect
//!   results during the drain, then flushes the cache segment stats
//!   and the span trace.

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod jobs;
pub mod queue;

use jobs::{JobId, JobState, Registry};
use queue::{JobQueue, PushError};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection may dribble one request before being dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Ceiling of the accept-loop's idle backoff (the listener is
/// non-blocking so shutdown can interrupt it; under load the loop
/// re-polls immediately, so this bounds only idle wakeups).
const ACCEPT_POLL_MAX: Duration = Duration::from_millis(5);

/// Daemon settings.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8547`; port 0 picks a free port.
    pub addr: String,
    /// Analysis worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bound on queued (accepted, unclaimed) jobs; beyond it → 429.
    pub queue_depth: usize,
    /// Per-job wall-clock budget (the driver isolation timeout).
    pub timeout: Duration,
    /// Maximum request body size in bytes; beyond it → 413.
    pub max_body: usize,
    /// Directory for the shared content-addressed result cache;
    /// `None` runs cacheless (every job is a fresh analysis).
    pub cache_dir: Option<String>,
    /// Bound on retained `Done` records (`--max-done`): beyond it the
    /// oldest completed job ages out and its id answers `410 Gone`.
    pub max_done: usize,
    /// Base analysis configuration; per-job patches apply on top.
    pub analysis: ethainter::Config,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8547".to_string(),
            workers: 0,
            queue_depth: 256,
            timeout: Duration::from_secs(120),
            max_body: 4 * 1024 * 1024,
            cache_dir: None,
            max_done: Registry::DEFAULT_MAX_DONE,
            analysis: ethainter::Config::default(),
        }
    }
}

/// One accepted unit of work flowing acceptor → queue → worker.
struct JobSpec {
    id: JobId,
    label: String,
    bytecode: Vec<u8>,
    analysis: ethainter::Config,
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    registry: Registry,
    job_queue: JobQueue<JobSpec>,
    cache: Option<Arc<store::SharedCache>>,
    config: ServerConfig,
    /// Set first during shutdown: new submissions → 503, GETs live on.
    draining: AtomicBool,
    /// Set last: the accept loop exits.
    stopped: AtomicBool,
}

/// The daemon entry point; [`Server::start`] returns a handle.
pub struct Server;

/// A running daemon: the bound address plus the threads behind it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// What a graceful shutdown drained.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownReport {
    /// Jobs in the terminal state at exit.
    pub jobs_done: u64,
    /// True when every accepted job reached the terminal state — the
    /// "SIGINT loses no accepted job" invariant.
    pub drained_cleanly: bool,
}

impl Server {
    /// Binds the listener, spawns the worker pool and the accept loop,
    /// and returns a handle. Fails on bind errors or an unopenable
    /// cache directory.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;

        let cache = match &config.cache_dir {
            Some(dir) => Some(Arc::new(store::SharedCache::open(dir)?)),
            None => None,
        };
        let worker_count = match config.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        let shared = Arc::new(Shared {
            registry: Registry::new(config.max_done),
            job_queue: JobQueue::new(config.queue_depth),
            cache,
            config,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
        });

        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let s = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .map_err(|e| format!("spawning worker: {e}"))?,
            );
        }
        let accept = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &s))
                .map_err(|e| format!("spawning accept loop: {e}"))?
        };
        telemetry::metrics::gauge("ethainter_server_workers").set(worker_count as i64);
        telemetry::events::emit(
            telemetry::events::Severity::Info,
            "server_started",
            None,
            vec![("workers".to_string(), worker_count as u64)],
        );
        Ok(ServerHandle { addr, shared, accept: Some(accept), workers })
    }
}

impl ServerHandle {
    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` for the bound address.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Snapshot of per-state job counts.
    pub fn job_counts(&self) -> jobs::JobCounts {
        self.shared.registry.counts()
    }

    /// Point-in-time stats of the shared cache, if one is configured.
    pub fn cache_stats(&self) -> Option<store::CacheStats> {
        self.shared.cache.as_ref().map(|c| c.stats())
    }

    /// The shared cache the workers answer from, if one is configured.
    /// In-process consumers (tests, embedders) can take single-flight
    /// claims on it — the daemon's workers then cooperate with them
    /// exactly as they do with each other.
    pub fn cache(&self) -> Option<Arc<store::SharedCache>> {
        self.shared.cache.clone()
    }

    /// Graceful shutdown: refuse new submissions (503), drain every
    /// accepted job through the workers, keep `GET` routes serving
    /// until the drain finishes, then stop the accept loop, persist
    /// the cache stats, and flush any installed span writer.
    pub fn shutdown(mut self) -> ShutdownReport {
        telemetry::events::emit(
            telemetry::events::Severity::Info,
            "server_draining",
            None,
            vec![("queued".to_string(), self.shared.registry.counts().queued)],
        );
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.job_queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        if let Some(cache) = &self.shared.cache {
            if let Err(e) = cache.persist_stats() {
                eprintln!("warning: persisting cache stats: {e}");
            }
        }
        telemetry::flush_spans();
        let counts = self.shared.registry.counts();
        ShutdownReport {
            jobs_done: self.shared.registry.completed_total(),
            drained_cleanly: counts.queued == 0 && counts.running == 0,
        }
    }
}

/// The worker loop: claim, analyze (through the shared cache when
/// configured), record, repeat — until the queue closes and drains.
///
/// Each claimed job installs its [`telemetry::trace`] context (trace id
/// == job id) and runs under a `server.job` root span, so everything
/// the analysis records — across the sandbox thread hop included —
/// assembles into one tree `GET /jobs/<id>/trace` can serve.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.job_queue.pop() {
        telemetry::metrics::gauge("ethainter_server_queue_depth")
            .set(shared.job_queue.len() as i64);
        let wait_ms = shared.registry.mark_running(job.id);
        telemetry::metrics::histogram("ethainter_server_job_wait_ms").observe(wait_ms);
        telemetry::metrics::gauge("ethainter_server_jobs_running").add(1);

        let trace = telemetry::trace::TraceId(job.id.0);
        let ctx = telemetry::trace::root(trace);
        let sp_job = telemetry::span("server.job");

        let driver_cfg = driver::DriverConfig { jobs: 1, timeout: shared.config.timeout };
        let (outcome, cached) = match &shared.cache {
            Some(cache) => {
                let key = store::cache_key(&job.bytecode, &job.analysis);
                let label = job.label.clone();
                let analysis = job.analysis;
                let bytecode = job.bytecode;
                let got = cache.get_or_compute(key, move || {
                    let o = driver::analyze_job(&label, bytecode, &driver_cfg, &analysis);
                    store::CachedResult { status: o.status, elapsed_ms: o.elapsed_ms }
                });
                if let Some(e) = &got.put_error {
                    eprintln!("warning: cache append failed: {e}");
                    telemetry::metrics::counter("ethainter_server_cache_put_errors_total").inc();
                    telemetry::events::emit(
                        telemetry::events::Severity::Error,
                        format!("cache_put_failed: {e}"),
                        Some(trace),
                        vec![],
                    );
                }
                let outcome = driver::Outcome {
                    index: 0,
                    id: job.label,
                    status: got.result.status,
                    elapsed_ms: got.result.elapsed_ms,
                };
                (outcome, !got.fresh)
            }
            None => {
                (driver::analyze_job(&job.label, job.bytecode, &driver_cfg, &job.analysis), false)
            }
        };
        if cached {
            telemetry::metrics::counter("ethainter_server_jobs_cached_total").inc();
        }
        // Close the root span (and release the context) *before* the
        // job goes `Done`, so a trace fetched right after completion
        // already contains the fully assembled tree.
        let _job_us = sp_job.finish_us();
        drop(ctx);
        let phase_fields = phase_breakdown(&outcome.status);
        telemetry::metrics::gauge("ethainter_server_jobs_running").add(-1);

        // Slow-job detection compares against the p99 *before* this
        // sample lands (a job cannot dilute the threshold it is judged
        // by), and only once enough history exists to mean anything.
        let latency = telemetry::metrics::histogram("ethainter_server_job_latency_ms");
        let before = latency.snapshot();
        let total_ms = shared.registry.complete(job.id, outcome, cached);
        latency.observe(total_ms);
        telemetry::metrics::counter("ethainter_server_jobs_completed_total").inc();
        if before.count >= SLOW_JOB_MIN_SAMPLES && total_ms > before.quantile(0.99) {
            telemetry::metrics::counter("ethainter_server_jobs_slow_total").inc();
            let mut fields = phase_fields;
            fields.push(("wait_ms".to_string(), wait_ms));
            fields.push(("total_ms".to_string(), total_ms));
            telemetry::events::emit(
                telemetry::events::Severity::Warn,
                "slow_job",
                Some(trace),
                fields,
            );
        }
    }
}

/// Samples `ethainter_server_job_latency_ms` must hold before the
/// slow-job comparison fires — a p99 over three jobs is noise.
const SLOW_JOB_MIN_SAMPLES: u64 = 16;

/// The per-phase timing fields a `slow_job` event attaches, pulled from
/// an analyzed outcome (empty for failed/timed-out jobs — the event's
/// `total_ms` still tells the story).
fn phase_breakdown(status: &driver::Status) -> Vec<(String, u64)> {
    let driver::Status::Analyzed { timings, .. } = status else {
        return Vec::new();
    };
    let mut fields = vec![
        ("decompile_us".to_string(), timings.decompile_us),
        ("index_build_us".to_string(), timings.index_build_us),
        ("fixpoint_us".to_string(), timings.fixpoint_us),
        ("sink_scan_us".to_string(), timings.sink_scan_us),
        ("analysis_total_us".to_string(), timings.total_us),
    ];
    if let Some((detectors_us, effects_us, composite_us)) = timings.sink_scan_breakdown() {
        fields.push(("detectors_us".to_string(), detectors_us));
        fields.push(("effects_us".to_string(), effects_us));
        fields.push(("composite_us".to_string(), composite_us));
    }
    fields
}

/// Polls the non-blocking listener, handing each connection to a short
/// detached handler thread (one request per connection). The poll
/// backoff is adaptive: an accepted connection resets it to re-poll
/// immediately (accept latency under load ≈ 0), and consecutive idle
/// polls double it up to [`ACCEPT_POLL_MAX`] (idle CPU ≈ 0).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut backoff = Duration::from_micros(250);
    loop {
        if shared.stopped.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_micros(250);
                telemetry::metrics::counter("ethainter_server_connections_total").inc();
                let s = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(&s, stream));
                if spawned.is_err() {
                    telemetry::metrics::counter("ethainter_server_spawn_errors_total").inc();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_POLL_MAX);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL_MAX),
        }
    }
}

/// Reads one request, routes it, writes one response.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let req = match http::read_request(&mut stream, shared.config.max_body, READ_TIMEOUT) {
        Ok(r) => r,
        Err(http::RequestError::TooLarge { limit }) => {
            telemetry::metrics::counter("ethainter_server_rejected_total").inc();
            http::respond_json(
                &mut stream,
                413,
                &api::ErrorBody::json(format!("request body exceeds {limit} bytes")),
            );
            return;
        }
        Err(http::RequestError::BadRequest(msg)) => {
            http::respond_json(&mut stream, 400, &api::ErrorBody::json(msg));
            return;
        }
        Err(http::RequestError::Io(_)) => return, // peer gone; nothing to say
    };
    telemetry::metrics::counter("ethainter_server_requests_total").inc();

    // Split the query string off the path: `/events?since=3` routes as
    // `/events` with `since=3` available to the handler.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };

    match (req.method.as_str(), path) {
        ("POST", "/jobs") => submit_job(shared, &mut stream, &req.body),
        ("GET", p)
            if p.starts_with("/jobs/")
                && p.ends_with("/trace")
                && p.len() >= "/jobs/".len() + "/trace".len() =>
        {
            let id = &p["/jobs/".len()..p.len() - "/trace".len()];
            job_trace(shared, &mut stream, id);
        }
        ("GET", p) if p.strip_prefix("/jobs/").is_some() => {
            let id = p.strip_prefix("/jobs/").unwrap_or("");
            job_status(shared, &mut stream, id);
        }
        ("GET", "/events") => events(&mut stream, query),
        ("GET", "/healthz") => healthz(shared, &mut stream),
        ("GET", "/metrics") => {
            let text = telemetry::metrics::snapshot().to_prometheus();
            http::respond(&mut stream, 200, "text/plain; version=0.0.4", text.as_bytes());
        }
        ("GET", "/cache/stats") => cache_stats(shared, &mut stream),
        (method, "/jobs" | "/events" | "/healthz" | "/metrics" | "/cache/stats") => {
            http::respond_json(
                &mut stream,
                405,
                &api::ErrorBody::json(format!("method {method} not allowed here")),
            );
        }
        (_, path) => {
            http::respond_json(
                &mut stream,
                404,
                &api::ErrorBody::json(format!("no route for `{path}`")),
            );
        }
    }
}

/// `POST /jobs`: parse, validate, register, enqueue — or push back.
fn submit_job(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8]) {
    if shared.draining.load(Ordering::SeqCst) {
        http::respond_json(stream, 503, &api::ErrorBody::json("daemon is draining"));
        return;
    }
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            http::respond_json(stream, 400, &api::ErrorBody::json("body is not UTF-8"));
            return;
        }
    };
    let request: api::JobRequest = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => {
            http::respond_json(stream, 400, &api::ErrorBody::json(format!("bad JSON: {e}")));
            return;
        }
    };
    let bytecode = match store::parse_hex(&request.bytecode) {
        Ok(b) if !b.is_empty() => b,
        Ok(_) => {
            http::respond_json(stream, 400, &api::ErrorBody::json("empty bytecode"));
            return;
        }
        Err(e) => {
            http::respond_json(stream, 400, &api::ErrorBody::json(e));
            return;
        }
    };
    let analysis = match &request.config {
        Some(patch) => match patch.apply(&shared.config.analysis) {
            Ok(cfg) => cfg,
            Err(e) => {
                http::respond_json(stream, 400, &api::ErrorBody::json(e));
                return;
            }
        },
        None => shared.config.analysis,
    };

    let id = shared.registry.create();
    // Retain the job's trace from the moment it exists: spans recorded
    // while it is still queued (none today, but the store is the
    // contract) and everything the worker records land in its buffer.
    telemetry::trace::retain(telemetry::trace::TraceId(id.0));
    let label = request.id.clone().unwrap_or_else(|| id.to_string());
    let spec = JobSpec { id, label, bytecode, analysis };
    match shared.job_queue.try_push(spec) {
        Ok(depth) => {
            telemetry::metrics::gauge("ethainter_server_queue_depth").set(depth as i64);
            telemetry::metrics::counter("ethainter_server_jobs_submitted_total").inc();
            let body = api::JobAccepted { id: id.to_string(), state: "queued".to_string() };
            http::respond_json(
                stream,
                202,
                &serde_json::to_string(&body).unwrap_or_default(),
            );
        }
        Err(PushError::Full(_)) => {
            shared.registry.forget(id);
            telemetry::trace::discard(telemetry::trace::TraceId(id.0));
            telemetry::metrics::counter("ethainter_server_rejected_total").inc();
            http::respond_json(
                stream,
                429,
                &api::ErrorBody::json(format!(
                    "queue full ({} jobs); retry later",
                    shared.job_queue.capacity()
                )),
            );
        }
        Err(PushError::Closed(_)) => {
            shared.registry.forget(id);
            telemetry::trace::discard(telemetry::trace::TraceId(id.0));
            http::respond_json(stream, 503, &api::ErrorBody::json("daemon is draining"));
        }
    }
}

/// `GET /jobs/<id>`: the registry record, shaped for the wire.
fn job_status(shared: &Arc<Shared>, stream: &mut TcpStream, id_text: &str) {
    let id = match JobId::parse(id_text) {
        Ok(id) => id,
        Err(e) => {
            http::respond_json(stream, 400, &api::ErrorBody::json(e));
            return;
        }
    };
    let record = match shared.registry.lookup(id) {
        jobs::Lookup::Found(rec) => rec,
        jobs::Lookup::Evicted => {
            http::respond_json(
                stream,
                410,
                &api::ErrorBody::json(format!("job {id} completed but its record was evicted")),
            );
            return;
        }
        jobs::Lookup::Unknown => {
            http::respond_json(stream, 404, &api::ErrorBody::json(format!("no job {id}")));
            return;
        }
    };
    let body = match record.state {
        JobState::Queued => api::JobStatusBody {
            id: id.to_string(),
            state: "queued".to_string(),
            wait_ms: None,
            total_ms: None,
            cached: None,
            report: None,
        },
        JobState::Running { wait_ms } => api::JobStatusBody {
            id: id.to_string(),
            state: "running".to_string(),
            wait_ms: Some(wait_ms),
            total_ms: None,
            cached: None,
            report: None,
        },
        JobState::Done { outcome, cached, wait_ms, total_ms } => api::JobStatusBody {
            id: id.to_string(),
            state: "done".to_string(),
            wait_ms: Some(wait_ms),
            total_ms: Some(total_ms),
            cached: Some(cached),
            report: Some(outcome),
        },
    };
    match serde_json::to_string(&body) {
        Ok(json) => http::respond_json(stream, 200, &json),
        Err(e) => http::respond_json(stream, 500, &api::ErrorBody::json(e.to_string())),
    }
}

/// `GET /jobs/<id>/trace`: the job's span tree, assembled on demand
/// from the per-trace store. Served at any lifecycle state — a trace
/// fetched mid-run is a prefix of the final tree, and the `state`
/// field says which you got.
fn job_trace(shared: &Arc<Shared>, stream: &mut TcpStream, id_text: &str) {
    let id = match JobId::parse(id_text) {
        Ok(id) => id,
        Err(e) => {
            http::respond_json(stream, 400, &api::ErrorBody::json(e));
            return;
        }
    };
    let state = match shared.registry.lookup(id) {
        jobs::Lookup::Found(rec) => match rec.state {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done { .. } => "done",
        },
        jobs::Lookup::Evicted => {
            http::respond_json(
                stream,
                410,
                &api::ErrorBody::json(format!("job {id} completed but its trace was evicted")),
            );
            return;
        }
        jobs::Lookup::Unknown => {
            http::respond_json(stream, 404, &api::ErrorBody::json(format!("no job {id}")));
            return;
        }
    };
    let records = telemetry::trace::spans_for(telemetry::trace::TraceId(id.0))
        .unwrap_or_default();
    let body = api::TraceBody {
        id: id.to_string(),
        state: state.to_string(),
        span_count: records.len() as u64,
        spans: telemetry::trace::build_tree(&records),
    };
    match serde_json::to_string(&body) {
        Ok(json) => http::respond_json(stream, 200, &json),
        Err(e) => http::respond_json(stream, 500, &api::ErrorBody::json(e.to_string())),
    }
}

/// Ceiling on a `GET /events` long-poll, whatever `wait_ms` asks for —
/// the connection read timeout must never fire first on the client.
const EVENTS_WAIT_MAX: Duration = Duration::from_millis(30_000);
/// Default long-poll window when `since` is given without `wait_ms`.
const EVENTS_WAIT_DEFAULT: Duration = Duration::from_millis(15_000);

/// `GET /events[?since=<seq>[&wait_ms=<ms>]]`: a page of the event
/// feed. Without `since` it answers immediately with everything
/// buffered (curl-friendly); with `since` it long-polls until an event
/// newer than the cursor arrives or the window lapses.
fn events(stream: &mut TcpStream, query: &str) {
    let mut since: Option<u64> = None;
    let mut wait = EVENTS_WAIT_DEFAULT;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "since" => match value.parse::<u64>() {
                Ok(v) => since = Some(v),
                Err(_) => {
                    http::respond_json(
                        stream,
                        400,
                        &api::ErrorBody::json(format!("bad since `{value}`")),
                    );
                    return;
                }
            },
            "wait_ms" => match value.parse::<u64>() {
                Ok(ms) => wait = Duration::from_millis(ms).min(EVENTS_WAIT_MAX),
                Err(_) => {
                    http::respond_json(
                        stream,
                        400,
                        &api::ErrorBody::json(format!("bad wait_ms `{value}`")),
                    );
                    return;
                }
            },
            other => {
                http::respond_json(
                    stream,
                    400,
                    &api::ErrorBody::json(format!("unknown query parameter `{other}`")),
                );
                return;
            }
        }
    }
    let (events, latest) = match since {
        None => telemetry::events::events_since(0),
        Some(cursor) => telemetry::events::wait_events_since(cursor, wait),
    };
    let body = api::EventsBody { latest, events };
    match serde_json::to_string(&body) {
        Ok(json) => http::respond_json(stream, 200, &json),
        Err(e) => http::respond_json(stream, 500, &api::ErrorBody::json(e.to_string())),
    }
}

/// `GET /healthz`: liveness + queue/job counts.
fn healthz(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let counts = shared.registry.counts();
    let body = api::Health {
        status: if shared.draining.load(Ordering::SeqCst) { "draining" } else { "ok" }
            .to_string(),
        queued: counts.queued,
        running: counts.running,
        done: counts.done,
        workers: telemetry::metrics::gauge("ethainter_server_workers").get() as u64,
        queue_capacity: shared.job_queue.capacity() as u64,
        cache: shared.cache.is_some(),
    };
    http::respond_json(stream, 200, &serde_json::to_string(&body).unwrap_or_default());
}

/// `GET /cache/stats`: the shared schema, straight off the live cache.
fn cache_stats(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let Some(cache) = &shared.cache else {
        http::respond_json(stream, 404, &api::ErrorBody::json("no cache configured"));
        return;
    };
    let stats = cache.stats();
    let (analyzed, failed) = cache.status_breakdown();
    let body = api::CacheStatsBody::new(&stats, analyzed, failed);
    http::respond_json(stream, 200, &serde_json::to_string(&body).unwrap_or_default());
}

// ---------------------------------------------------------------------
// SIGINT plumbing (no signal crate: one libc call through the C ABI).

static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

/// The C-ABI handler: just flip the flag — everything else (drain,
/// flush) happens on the main thread, where it is safe.
unsafe extern "C" fn on_sigint(_signum: i32) {
    SIGINT_RECEIVED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT → [`sigint_received`] flag handler (Unix only;
/// a no-op elsewhere). Idempotent.
#[cfg(unix)]
pub fn install_sigint_handler() {
    /// `signal(2)`'s handler type.
    type SigHandler = unsafe extern "C" fn(i32);
    extern "C" {
        /// The previous disposition may be `SIG_DFL` (null), which a
        /// Rust fn pointer cannot hold — the return is left opaque.
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// Installs the SIGINT flag handler (non-Unix stub: never fires).
#[cfg(not(unix))]
pub fn install_sigint_handler() {}

/// True once SIGINT has been delivered since process start.
pub fn sigint_received() -> bool {
    SIGINT_RECEIVED.load(Ordering::SeqCst)
}
