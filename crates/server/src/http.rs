//! A deliberately small HTTP/1.1 subset over [`std::net::TcpStream`].
//!
//! The daemon speaks exactly what its four routes need: request line +
//! headers + optional `Content-Length` body in, status line +
//! `Content-Type` + `Content-Length` body out, one request per
//! connection (`Connection: close` semantics). No chunked transfer
//! encoding, no keep-alive, no TLS — and no dependency beyond `std`,
//! matching the repo's vendored-shims-only build.
//!
//! Limits are enforced *during* the read, not after: a request whose
//! headers exceed [`MAX_HEAD_BYTES`] or whose declared body exceeds the
//! server's per-request cap is rejected without buffering the excess,
//! so an oversized upload cannot balloon memory before the 413.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line + headers (bytes).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path, e.g. `/jobs/0000000000000001`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or unsupported framing → 400.
    BadRequest(String),
    /// Declared or actual body size over the server's cap → 413.
    TooLarge {
        /// The limit that was exceeded, for the error body.
        limit: usize,
    },
    /// Connection-level failure (peer vanished, read timeout): nothing
    /// to respond to — the handler just drops the stream.
    Io(String),
}

/// Reads and parses one request from the stream, enforcing `max_body`
/// and a wall-clock `read_timeout` on every blocking read.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    read_timeout: Duration,
) -> Result<Request, RequestError> {
    let _ = stream.set_read_timeout(Some(read_timeout));

    // Accumulate until the blank line terminating the headers.
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return Err(RequestError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(RequestError::Io("connection closed mid-request".into()));
            }
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(RequestError::Io(e.to_string())),
        }
    };
    let body_start = head_end + 4; // past "\r\n\r\n"
    let mut body: Vec<u8> = head[body_start..].to_vec();
    head.truncate(head_end);

    let head_text = String::from_utf8(head)
        .map_err(|_| RequestError::BadRequest("non-UTF-8 request head".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") && !m.is_empty() => {
            (m.to_string(), p.to_string())
        }
        _ => {
            return Err(RequestError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" {
            return Err(RequestError::BadRequest(
                "chunked transfer encoding is not supported".into(),
            ));
        }
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| RequestError::BadRequest(format!("bad Content-Length `{value}`")))?;
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge { limit: max_body });
    }
    if body.len() > content_length {
        // More bytes than declared: trailing garbage (we never pipeline).
        body.truncate(content_length);
    }
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(RequestError::Io("connection closed mid-body".into()));
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(RequestError::Io(e.to_string())),
        }
        if body.len() > content_length {
            body.truncate(content_length);
        }
    }
    Ok(Request { method, path, body })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the handful of status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response and flushes. Errors are swallowed — if
/// the peer is gone there is nobody left to tell.
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body))
        .and_then(|_| stream.flush());
}

/// [`respond`] with an `application/json` body.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    respond(stream, status, "application/json", body.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
