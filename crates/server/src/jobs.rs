//! Job identity and lifecycle tracking.
//!
//! Every accepted submission gets a monotonically assigned [`JobId`]
//! and a [`JobRecord`] in the [`Registry`], moving through exactly one
//! path: `Queued → Running → Done`. The registry is the single source
//! of truth `GET /jobs/<id>` reads, and it keeps completed records
//! until shutdown — a poller that comes back late still finds its
//! verdict (analysis results are small; the daemon's lifetime is a
//! session, not a year).

use driver::Outcome;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// A server-assigned job identifier; rendered as 16 lowercase hex
/// digits (`000000000000002a`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl JobId {
    /// Parses the 16-hex-digit display form.
    pub fn parse(s: &str) -> Result<JobId, String> {
        if s.len() != 16 || !s.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!("job id must be 16 hex digits, got `{s}`"));
        }
        u64::from_str_radix(s, 16).map(JobId).map_err(|e| e.to_string())
    }
}

/// Where one job is in its lifecycle.
//
// `Done` dwarfs the transient states, but every record ends there and
// stays there — boxing the payload would cost an allocation per job to
// shrink states that exist only for milliseconds.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Claimed by a worker; analysis in progress.
    Running {
        /// Milliseconds the job spent queued before a worker took it.
        wait_ms: u64,
    },
    /// Finished — the terminal state.
    Done {
        /// The full per-contract result record (verdicts, fact counts,
        /// timings, optional witness), identical in shape to a batch
        /// outcome line.
        outcome: Outcome,
        /// True when the verdict came from the shared cache.
        cached: bool,
        /// Milliseconds spent queued.
        wait_ms: u64,
        /// Milliseconds from acceptance to completion.
        total_ms: u64,
    },
}

/// One tracked job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The server-assigned id.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    submitted: Instant,
}

/// Counts of jobs per lifecycle state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs accepted but not yet claimed.
    pub queued: u64,
    /// Jobs a worker is currently analyzing.
    pub running: u64,
    /// Jobs in the terminal state.
    pub done: u64,
}

/// The id allocator + job table shared by acceptors and workers.
#[derive(Default)]
pub struct Registry {
    next: AtomicU64,
    jobs: Mutex<HashMap<u64, JobRecord>>,
}

impl Registry {
    /// An empty registry starting at id 1.
    pub fn new() -> Registry {
        Registry { next: AtomicU64::new(1), jobs: Mutex::default() }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, JobRecord>> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Allocates an id and records the job as queued.
    pub fn create(&self) -> JobId {
        let id = JobId(self.next.fetch_add(1, Ordering::Relaxed));
        self.lock().insert(
            id.0,
            JobRecord { id, state: JobState::Queued, submitted: Instant::now() },
        );
        id
    }

    /// Forgets a job whose enqueue was refused (it was never really
    /// accepted, so it must not linger as eternally `Queued`).
    pub fn forget(&self, id: JobId) {
        self.lock().remove(&id.0);
    }

    /// Marks a job running; returns the time it spent queued (ms).
    pub fn mark_running(&self, id: JobId) -> u64 {
        let mut g = self.lock();
        let Some(rec) = g.get_mut(&id.0) else { return 0 };
        let wait_ms = rec.submitted.elapsed().as_millis() as u64;
        rec.state = JobState::Running { wait_ms };
        wait_ms
    }

    /// Records the terminal state; returns acceptance-to-completion ms.
    pub fn complete(&self, id: JobId, outcome: Outcome, cached: bool) -> u64 {
        let mut g = self.lock();
        let Some(rec) = g.get_mut(&id.0) else { return 0 };
        let total_ms = rec.submitted.elapsed().as_millis() as u64;
        let wait_ms = match rec.state {
            JobState::Running { wait_ms } => wait_ms,
            _ => 0,
        };
        rec.state = JobState::Done { outcome, cached, wait_ms, total_ms };
        total_ms
    }

    /// A snapshot of one job.
    pub fn get(&self, id: JobId) -> Option<JobRecord> {
        self.lock().get(&id.0).cloned()
    }

    /// How many jobs are in each state.
    pub fn counts(&self) -> JobCounts {
        let g = self.lock();
        let mut c = JobCounts::default();
        for rec in g.values() {
            match rec.state {
                JobState::Queued => c.queued += 1,
                JobState::Running { .. } => c.running += 1,
                JobState::Done { .. } => c.done += 1,
            }
        }
        c
    }

    /// True when every accepted job has reached the terminal state —
    /// the post-drain invariant graceful shutdown asserts.
    pub fn all_done(&self) -> bool {
        let c = self.counts();
        c.queued == 0 && c.running == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use driver::Status;

    fn outcome(id: &str) -> Outcome {
        Outcome {
            index: 0,
            id: id.to_string(),
            status: Status::DecompileFailed { reason: "x".into() },
            elapsed_ms: 1,
        }
    }

    #[test]
    fn lifecycle_and_counts() {
        let reg = Registry::new();
        let a = reg.create();
        let b = reg.create();
        assert_ne!(a, b);
        assert_eq!(reg.counts(), JobCounts { queued: 2, running: 0, done: 0 });
        assert!(!reg.all_done());

        reg.mark_running(a);
        assert_eq!(reg.counts(), JobCounts { queued: 1, running: 1, done: 0 });
        reg.complete(a, outcome("a"), false);
        reg.mark_running(b);
        reg.complete(b, outcome("b"), true);
        assert_eq!(reg.counts(), JobCounts { queued: 0, running: 0, done: 2 });
        assert!(reg.all_done());

        match reg.get(b).unwrap().state {
            JobState::Done { cached, .. } => assert!(cached),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn ids_round_trip_through_display() {
        let id = JobId(42);
        assert_eq!(id.to_string(), "000000000000002a");
        assert_eq!(JobId::parse("000000000000002a").unwrap(), id);
        assert!(JobId::parse("2a").is_err());
        assert!(JobId::parse("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn refused_jobs_are_forgotten() {
        let reg = Registry::new();
        let id = reg.create();
        reg.forget(id);
        assert!(reg.get(id).is_none());
        assert!(reg.all_done());
    }
}
