//! Job identity and lifecycle tracking.
//!
//! Every accepted submission gets a monotonically assigned [`JobId`]
//! and a [`JobRecord`] in the [`Registry`], moving through exactly one
//! path: `Queued → Running → Done`. The registry is the single source
//! of truth `GET /jobs/<id>` reads. Completed records are retained so a
//! poller that comes back late still finds its verdict — but only up to
//! a bound (`max_done`, default 4096): a week-long daemon must not grow
//! without limit, so the oldest `Done` records are FIFO-evicted beyond
//! the bound (counted in `ethainter_server_jobs_evicted_total`) and a
//! `GET` on an evicted id answers `410 Gone` rather than `404` — the
//! job existed, its record aged out.

use driver::Outcome;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// A server-assigned job identifier; rendered as 16 lowercase hex
/// digits (`000000000000002a`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl JobId {
    /// Parses the 16-hex-digit display form.
    pub fn parse(s: &str) -> Result<JobId, String> {
        if s.len() != 16 || !s.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!("job id must be 16 hex digits, got `{s}`"));
        }
        u64::from_str_radix(s, 16).map(JobId).map_err(|e| e.to_string())
    }
}

/// Where one job is in its lifecycle.
//
// `Done` dwarfs the transient states, but every record ends there and
// stays there — boxing the payload would cost an allocation per job to
// shrink states that exist only for milliseconds.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Claimed by a worker; analysis in progress.
    Running {
        /// Milliseconds the job spent queued before a worker took it.
        wait_ms: u64,
    },
    /// Finished — the terminal state.
    Done {
        /// The full per-contract result record (verdicts, fact counts,
        /// timings, optional witness), identical in shape to a batch
        /// outcome line.
        outcome: Outcome,
        /// True when the verdict came from the shared cache.
        cached: bool,
        /// Milliseconds spent queued.
        wait_ms: u64,
        /// Milliseconds from acceptance to completion.
        total_ms: u64,
    },
}

/// One tracked job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The server-assigned id.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    submitted: Instant,
}

/// Counts of jobs per lifecycle state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs accepted but not yet claimed.
    pub queued: u64,
    /// Jobs a worker is currently analyzing.
    pub running: u64,
    /// Jobs in the terminal state (still retained).
    pub done: u64,
}

/// What the registry knows about an id — the three-way answer behind
/// `GET /jobs/<id>`'s 200 / 410 / 404 split.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// The job is tracked; here is its record (boxed: a `Done` record
    /// carries a full outcome, and the marker variants carry nothing).
    Found(Box<JobRecord>),
    /// The job completed but its record aged out of the `Done` bound.
    Evicted,
    /// No such job was ever accepted (or its eviction marker also
    /// aged out).
    Unknown,
}

/// Eviction markers kept so a 410 stays distinguishable from a 404; a
/// second-tier bound so even the markers cannot grow forever.
const MAX_EVICTED_MARKERS: usize = 65_536;

#[derive(Default)]
struct Inner {
    jobs: HashMap<u64, JobRecord>,
    /// Completion order of retained `Done` records, oldest first.
    done_order: VecDeque<u64>,
    /// Ids whose `Done` record was evicted (bounded separately).
    evicted: HashSet<u64>,
    evicted_order: VecDeque<u64>,
    /// Jobs ever completed, eviction-proof (feeds the drain report).
    completed_total: u64,
}

/// The id allocator + job table shared by acceptors and workers.
pub struct Registry {
    next: AtomicU64,
    max_done: usize,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new(Registry::DEFAULT_MAX_DONE)
    }
}

impl Registry {
    /// Default bound on retained `Done` records (`--max-done`).
    pub const DEFAULT_MAX_DONE: usize = 4096;

    /// An empty registry starting at id 1, retaining at most
    /// `max_done` completed records (min 1).
    pub fn new(max_done: usize) -> Registry {
        Registry {
            next: AtomicU64::new(1),
            max_done: max_done.max(1),
            inner: Mutex::default(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Allocates an id and records the job as queued.
    pub fn create(&self) -> JobId {
        let id = JobId(self.next.fetch_add(1, Ordering::Relaxed));
        self.lock().jobs.insert(
            id.0,
            JobRecord { id, state: JobState::Queued, submitted: Instant::now() },
        );
        id
    }

    /// Forgets a job whose enqueue was refused (it was never really
    /// accepted, so it must not linger as eternally `Queued`).
    pub fn forget(&self, id: JobId) {
        self.lock().jobs.remove(&id.0);
    }

    /// Marks a job running; returns the time it spent queued (ms).
    pub fn mark_running(&self, id: JobId) -> u64 {
        let mut g = self.lock();
        let Some(rec) = g.jobs.get_mut(&id.0) else { return 0 };
        let wait_ms = rec.submitted.elapsed().as_millis() as u64;
        rec.state = JobState::Running { wait_ms };
        wait_ms
    }

    /// Records the terminal state; returns acceptance-to-completion ms.
    /// Beyond the `max_done` bound the oldest retained `Done` record is
    /// evicted: removed from the table (its per-trace spans discarded),
    /// marked so lookups answer `Evicted`, and counted.
    pub fn complete(&self, id: JobId, outcome: Outcome, cached: bool) -> u64 {
        let mut g = self.lock();
        let Some(rec) = g.jobs.get_mut(&id.0) else { return 0 };
        let total_ms = rec.submitted.elapsed().as_millis() as u64;
        let wait_ms = match rec.state {
            JobState::Running { wait_ms } => wait_ms,
            _ => 0,
        };
        rec.state = JobState::Done { outcome, cached, wait_ms, total_ms };
        g.completed_total += 1;
        g.done_order.push_back(id.0);
        while g.done_order.len() > self.max_done {
            let Some(old) = g.done_order.pop_front() else { break };
            if g.jobs.remove(&old).is_none() {
                continue; // already forgotten some other way
            }
            telemetry::trace::discard(telemetry::trace::TraceId(old));
            telemetry::metrics::counter("ethainter_server_jobs_evicted_total").inc();
            if g.evicted.insert(old) {
                g.evicted_order.push_back(old);
                while g.evicted_order.len() > MAX_EVICTED_MARKERS {
                    if let Some(stale) = g.evicted_order.pop_front() {
                        g.evicted.remove(&stale);
                    }
                }
            }
        }
        total_ms
    }

    /// A snapshot of one job (`None` for unknown *and* evicted ids —
    /// use [`lookup`](Registry::lookup) to tell them apart).
    pub fn get(&self, id: JobId) -> Option<JobRecord> {
        self.lock().jobs.get(&id.0).cloned()
    }

    /// The three-way answer for one id: found, evicted, or unknown.
    pub fn lookup(&self, id: JobId) -> Lookup {
        let g = self.lock();
        if let Some(rec) = g.jobs.get(&id.0) {
            Lookup::Found(Box::new(rec.clone()))
        } else if g.evicted.contains(&id.0) {
            Lookup::Evicted
        } else {
            Lookup::Unknown
        }
    }

    /// How many jobs are in each state (evicted records not counted).
    pub fn counts(&self) -> JobCounts {
        let g = self.lock();
        let mut c = JobCounts::default();
        for rec in g.jobs.values() {
            match rec.state {
                JobState::Queued => c.queued += 1,
                JobState::Running { .. } => c.running += 1,
                JobState::Done { .. } => c.done += 1,
            }
        }
        c
    }

    /// Jobs ever completed, unaffected by eviction — what the shutdown
    /// report's `jobs_done` means.
    pub fn completed_total(&self) -> u64 {
        self.lock().completed_total
    }

    /// True when every accepted job has reached the terminal state —
    /// the post-drain invariant graceful shutdown asserts.
    pub fn all_done(&self) -> bool {
        let c = self.counts();
        c.queued == 0 && c.running == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use driver::Status;

    fn outcome(id: &str) -> Outcome {
        Outcome {
            index: 0,
            id: id.to_string(),
            status: Status::DecompileFailed { reason: "x".into() },
            elapsed_ms: 1,
        }
    }

    #[test]
    fn lifecycle_and_counts() {
        let reg = Registry::default();
        let a = reg.create();
        let b = reg.create();
        assert_ne!(a, b);
        assert_eq!(reg.counts(), JobCounts { queued: 2, running: 0, done: 0 });
        assert!(!reg.all_done());

        reg.mark_running(a);
        assert_eq!(reg.counts(), JobCounts { queued: 1, running: 1, done: 0 });
        reg.complete(a, outcome("a"), false);
        reg.mark_running(b);
        reg.complete(b, outcome("b"), true);
        assert_eq!(reg.counts(), JobCounts { queued: 0, running: 0, done: 2 });
        assert!(reg.all_done());
        assert_eq!(reg.completed_total(), 2);

        match reg.get(b).unwrap().state {
            JobState::Done { cached, .. } => assert!(cached),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn ids_round_trip_through_display() {
        let id = JobId(42);
        assert_eq!(id.to_string(), "000000000000002a");
        assert_eq!(JobId::parse("000000000000002a").unwrap(), id);
        assert!(JobId::parse("2a").is_err());
        assert!(JobId::parse("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn refused_jobs_are_forgotten() {
        let reg = Registry::default();
        let id = reg.create();
        reg.forget(id);
        assert!(reg.get(id).is_none());
        assert!(reg.all_done());
    }

    #[test]
    fn done_records_evict_fifo_beyond_the_bound() {
        let reg = Registry::new(2);
        let ids: Vec<JobId> = (0..4).map(|_| reg.create()).collect();
        for id in &ids {
            reg.mark_running(*id);
            reg.complete(*id, outcome(&id.to_string()), false);
        }
        // The two oldest aged out; the two newest are still readable.
        assert!(matches!(reg.lookup(ids[0]), Lookup::Evicted));
        assert!(matches!(reg.lookup(ids[1]), Lookup::Evicted));
        assert!(matches!(reg.lookup(ids[2]), Lookup::Found(_)));
        assert!(matches!(reg.lookup(ids[3]), Lookup::Found(_)));
        assert!(matches!(reg.lookup(JobId(0xdead_beef)), Lookup::Unknown));
        assert_eq!(reg.counts().done, 2);
        // Eviction never forgets how many jobs actually finished.
        assert_eq!(reg.completed_total(), 4);
        // Queued/Running records are untouchable: only `Done` ages out.
        let live = reg.create();
        assert!(matches!(reg.lookup(live), Lookup::Found(_)));
    }
}
