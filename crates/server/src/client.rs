//! A minimal blocking HTTP/1.1 client for loopback testing and
//! benchmarking the daemon.
//!
//! This is **not** a general HTTP client: one request per connection,
//! no redirects, no TLS, no keep-alive — exactly the dialect the
//! [`crate::http`] server speaks, so the E2E suite and `bench_serve`
//! exercise the real wire protocol without pulling in a dependency.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A decoded response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The response body as text.
    pub body: String,
}

/// Sends one request and reads the response to EOF (the server always
/// closes after responding).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("send: {e}"))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("recv: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {text}"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head}"))?;
    Ok(Response { status, body: body.to_string() })
}

/// `POST /jobs` with a [`crate::api::JobRequest`]-shaped body; returns
/// the full response (202 + job id on success).
pub fn submit(addr: &str, job: &crate::api::JobRequest) -> Result<Response, String> {
    let body = serde_json::to_string(job).map_err(|e| e.to_string())?;
    request(addr, "POST", "/jobs", Some(&body))
}

/// Polls `GET /jobs/<id>` until the job reports `done` (returning the
/// parsed status body) or the deadline passes.
pub fn await_job(
    addr: &str,
    id: &str,
    deadline: Duration,
) -> Result<crate::api::JobStatusBody, String> {
    let started = std::time::Instant::now();
    loop {
        let resp = request(addr, "GET", &format!("/jobs/{id}"), None)?;
        if resp.status != 200 {
            return Err(format!("GET /jobs/{id} -> {}: {}", resp.status, resp.body));
        }
        let status: crate::api::JobStatusBody =
            serde_json::from_str(&resp.body).map_err(|e| format!("bad status body: {e}"))?;
        if status.state == "done" {
            return Ok(status);
        }
        if started.elapsed() > deadline {
            return Err(format!("job {id} still `{}` after {deadline:?}", status.state));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}
