//! The bounded MPSC job queue between HTTP acceptors and analysis
//! workers.
//!
//! Producers (connection handler threads) **never block**: when the
//! queue is full, [`JobQueue::try_push`] hands the job straight back
//! and the HTTP layer answers 429 — backpressure is a protocol
//! response, not a stalled socket. Consumers (workers) block on a
//! condvar in [`JobQueue::pop`] until a job arrives or the queue is
//! closed and drained, which is exactly the graceful-shutdown
//! sequence: `close()` wakes every idle worker, each drains what is
//! left, then `pop` returns `None` and the worker exits.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct Slots<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer queue with non-blocking
/// push and blocking, close-aware pop.
pub struct JobQueue<T> {
    slots: Mutex<Slots<T>>,
    capacity: usize,
    available: Condvar,
}

/// Why a push was refused; the job comes back to the caller untouched.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity → surface as HTTP 429.
    Full(T),
    /// The queue was closed (daemon draining) → surface as HTTP 503.
    Closed(T),
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` queued jobs.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            slots: Mutex::new(Slots { buf: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Slots<T>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues without blocking. Returns the depth *after* the push,
    /// or the job wrapped in the refusal reason.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.buf.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.buf.push_back(item);
        let depth = g.buf.len();
        drop(g);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available (returns it) or the queue is
    /// closed *and* empty (returns `None` — the worker's exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.buf.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.available.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// already-queued jobs still drain, every blocked `pop` wakes.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn close_drains_then_releases_poppers() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        match q.try_push(12) {
            Err(PushError::Closed(12)) => {}
            other => panic!("expected Closed(12), got {other:?}"),
        }
        // Queued jobs survive the close…
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        // …and only then does pop signal exit.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_popper_wakes_on_close() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(1));
        let qc = Arc::clone(&q);
        let t = std::thread::spawn(move || qc.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }
}
