//! # driver — parallel batch analysis with per-contract isolation
//!
//! Fans the decompile → Datalog-fixpoint → detect pipeline across cores
//! and guarantees that **no input contract can take the batch down**: a
//! contract that loops gets a wall-clock timeout, a contract that
//! panics the analyzer gets contained, and every input produces exactly
//! one [`Outcome`] — in input order, regardless of scheduling.
//!
//! ## Architecture
//!
//! ```text
//!                        ┌────────────────────────────┐
//!   contracts ────────▶  │  shared queue (atomic idx) │
//!   (id, bytecode)       └──────────┬─────────────────┘
//!                                   │ claim next index
//!                 ┌─────────────────┼─────────────────┐
//!                 ▼                 ▼                 ▼
//!           ┌──────────┐     ┌──────────┐       ┌──────────┐
//!           │ worker 0 │     │ worker 1 │  ...  │ worker N │   (scoped)
//!           └────┬─────┘     └────┬─────┘       └────┬─────┘
//!                │ per contract: spawn + watch        │
//!                ▼                                    ▼
//!         ┌──────────────┐                     ┌──────────────┐
//!         │ sandbox      │  result ──▶ channel │ sandbox      │
//!         │ thread       │  ◀── recv_timeout   │ thread       │
//!         │ catch_unwind │      (watchdog)     │ catch_unwind │
//!         └──────────────┘                     └──────────────┘
//!                │                                    │
//!                ▼                                    ▼
//!        outcome slot [i]  ──── ordered by input index ────▶  Vec<Outcome>
//! ```
//!
//! Two thread layers, each for one isolation property:
//!
//! - **Workers** (one per `--jobs`) pull contract *indices* from an
//!   atomic counter — dynamic load balancing, so one slow contract
//!   doesn't idle the other cores behind a static partition.
//! - Each worker runs each contract on a fresh disposable **sandbox
//!   thread** and waits on a channel with [`mpsc::Receiver::recv_timeout`].
//!   On timeout the sandbox thread is *abandoned* (not killed — Rust has
//!   no safe thread kill): the worker records [`Status::TimedOut`] and
//!   moves on. Abandonment is safe because the sandbox owns all its
//!   state — and it is cheap because the analysis honors the cooperative
//!   deadline installed via [`ethainter::with_deadline`], so the
//!   abandoned thread exits at its next fixpoint-pass boundary instead
//!   of running to the round cap.
//!
//! Panics inside the sandbox are caught with
//! [`std::panic::catch_unwind`] and surface as [`Status::Panicked`]
//! with the panic message; the batch keeps going.
//!
//! The `datalog` engine's `Variable<T>` is `Rc<RefCell<..>>`-based and
//! deliberately `!Send`: fixpoint state can never leak across contract
//! boundaries, because each sandbox thread *must* construct its own
//! `Iteration` from scratch (see DESIGN.md §“Batch pipeline”).
//!
//! ## Example
//!
//! ```
//! use driver::{analyze_batch, DriverConfig};
//!
//! let src = "contract C { uint v; function set(uint a) public { v = a; } }";
//! let bytecode = minisol::compile_source(src).unwrap().bytecode;
//! let report = driver::analyze_batch(
//!     vec![("c".to_string(), bytecode)],
//!     &DriverConfig::default(),
//!     &ethainter::Config::default(),
//! );
//! assert_eq!(report.outcomes.len(), 1);
//! assert!(report.outcomes[0].status.is_analyzed());
//! ```

#![warn(missing_docs)]

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Batch execution settings (parallelism + isolation budget).
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Wall-clock budget per contract before it is recorded as
    /// [`Status::TimedOut`] and its sandbox thread abandoned.
    pub timeout: Duration,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig { jobs: 0, timeout: Duration::from_secs(120) }
    }
}

impl DriverConfig {
    /// The worker count this config resolves to on this machine.
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

/// What happened to one contract.
//
// `Analyzed` dwarfs the failure variants, but it is also the variant
// nearly every outcome holds, so boxing its payload would trade a
// once-per-batch size asymmetry for an allocation per contract.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// The pipeline completed; counts summarize the produced facts.
    Analyzed {
        /// Total findings reported.
        findings: usize,
        /// Findings whose taint path required a defeated guard
        /// (Ethainter's composite vulnerabilities).
        composite: usize,
        /// TAC blocks in the decompiled program.
        blocks: usize,
        /// TAC statements (the analysis' fact universe, after the IR
        /// passes when they are enabled).
        stmts: usize,
        /// Outer fixpoint rounds to convergence.
        rounds: usize,
        /// Per-relation Datalog fact counts at the fixpoint.
        facts: ethainter::FactCounts,
        /// IR-validator violations on the *raw* decompiler output
        /// (before any optimization pass). Empty for well-formed IR;
        /// non-empty entries are decompiler bugs surfaced per contract
        /// so batch runs can triage them without re-running.
        lint: Vec<String>,
        /// Per-phase wall-clock timings
        /// (decompile/passes/index-build/fixpoint/sink-scan).
        /// Observability only: present in the live `outcomes.jsonl`
        /// stream, but stripped by `crates/store` before anything
        /// equality-sensitive (cache entries, `merged.jsonl`).
        #[serde(default)]
        timings: ethainter::PhaseTimings,
        /// Source→sink provenance witnesses, one per finding — present
        /// only when the analysis ran with
        /// [`ethainter::Config::witness`] on. Like `timings`,
        /// observability riding on the verdicts: stripped by
        /// `crates/store` from cache entries and `merged.jsonl`, and
        /// serialized as *absent* (never `null`) when unset so
        /// witness-off and witness-stripped records are byte-identical.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        witness: Option<Vec<ethainter::Witness>>,
    },
    /// The wall-clock budget elapsed (or the analysis hit its internal
    /// deadline) before a fixpoint was reached.
    TimedOut,
    /// The analysis panicked; the message is the panic payload.
    Panicked {
        /// Stringified panic payload.
        message: String,
    },
    /// Decompilation gave up (budget exhausted / unresolved control
    /// flow), so no analysis was attempted.
    DecompileFailed {
        /// First decompiler warning, or a generic reason.
        reason: String,
    },
}

impl Status {
    /// True for [`Status::Analyzed`].
    pub fn is_analyzed(&self) -> bool {
        matches!(self, Status::Analyzed { .. })
    }

    /// Short machine-friendly tag, e.g. for summaries and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            Status::Analyzed { .. } => "analyzed",
            Status::TimedOut => "timed_out",
            Status::Panicked { .. } => "panicked",
            Status::DecompileFailed { .. } => "decompile_failed",
        }
    }

    /// The same status with the telemetry riders removed: per-phase
    /// timings zeroed and provenance witnesses dropped. Deterministic
    /// artifacts (result-cache entries, `merged.jsonl`) must not vary
    /// run-to-run — or with observability switches like
    /// [`ethainter::Config::witness`] — so `crates/store` normalizes
    /// statuses through this before persisting them.
    pub fn without_timings(&self) -> Status {
        match self {
            Status::Analyzed { timings, witness, .. }
                if *timings != ethainter::PhaseTimings::default() || witness.is_some() =>
            {
                let mut s = self.clone();
                if let Status::Analyzed { timings, witness, .. } = &mut s {
                    *timings = ethainter::PhaseTimings::default();
                    *witness = None;
                }
                s
            }
            _ => self.clone(),
        }
    }

    /// The verdict projection: timings zeroed *and* `rounds` zeroed.
    /// `rounds` is an engine-specific effort metric (dense counts
    /// re-scan passes, sparse counts defeat waves), so it must not
    /// appear in artifacts that are specified to be byte-identical
    /// across `--engine dense` ⇄ `--engine sparse` — `merged.jsonl`
    /// records verdicts, not effort.
    pub fn verdict_only(&self) -> Status {
        let mut s = self.without_timings();
        if let Status::Analyzed { rounds, .. } = &mut s {
            *rounds = 0;
        }
        s
    }
}

/// Per-contract result record; one per input, in input order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// Position of the contract in the input batch.
    pub index: usize,
    /// Caller-provided contract identifier (path, address, family…).
    pub id: String,
    /// What happened.
    pub status: Status,
    /// Wall-clock time spent on this contract, in milliseconds.
    pub elapsed_ms: u64,
}

/// Result of a whole batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per input contract, in input order.
    pub outcomes: Vec<Outcome>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// End-to-end wall-clock time for the batch.
    pub wall_time: Duration,
}

/// Aggregate counts for a [`BatchReport`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Contracts in the batch.
    pub total: usize,
    /// Completed analyses.
    pub analyzed: usize,
    /// Contracts cut off by the timeout.
    pub timed_out: usize,
    /// Contracts whose analysis panicked.
    pub panicked: usize,
    /// Contracts the decompiler gave up on.
    pub decompile_failed: usize,
    /// Total findings across completed analyses.
    pub findings: usize,
    /// Composite findings across completed analyses.
    pub composite: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Batch wall-clock time in milliseconds.
    pub wall_ms: u64,
    /// Contracts per second of wall-clock time (×1000, to stay
    /// integer-typed for the JSON shim).
    pub contracts_per_sec_x1000: u64,
}

impl Summary {
    /// Starts an empty summary for `jobs` workers (the incremental
    /// counterpart of [`BatchReport::summary`], used by streaming scans
    /// that never hold all outcomes in memory).
    pub fn empty(jobs: usize) -> Summary {
        Summary {
            total: 0,
            analyzed: 0,
            timed_out: 0,
            panicked: 0,
            decompile_failed: 0,
            findings: 0,
            composite: 0,
            jobs,
            wall_ms: 0,
            contracts_per_sec_x1000: 0,
        }
    }

    /// Folds one outcome's status into the counts.
    pub fn record(&mut self, status: &Status) {
        self.total += 1;
        match status {
            Status::Analyzed { findings, composite, .. } => {
                self.analyzed += 1;
                self.findings += findings;
                self.composite += composite;
            }
            Status::TimedOut => self.timed_out += 1,
            Status::Panicked { .. } => self.panicked += 1,
            Status::DecompileFailed { .. } => self.decompile_failed += 1,
        }
    }

    /// Stamps the batch wall-clock time and the derived throughput.
    pub fn finish(&mut self, wall_time: Duration) {
        self.wall_ms = wall_time.as_millis() as u64;
        let secs = wall_time.as_secs_f64();
        if secs > 0.0 {
            self.contracts_per_sec_x1000 = (self.total as f64 / secs * 1000.0) as u64;
        }
    }
}

impl BatchReport {
    /// Aggregates the outcomes into a [`Summary`].
    pub fn summary(&self) -> Summary {
        let mut s = Summary::empty(self.jobs);
        for o in &self.outcomes {
            s.record(&o.status);
        }
        s.finish(self.wall_time);
        s
    }

    /// Serializes the outcomes as JSON Lines (one object per contract).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&serde_json::to_string(o).expect("outcome serializes"));
            out.push('\n');
        }
        out
    }
}

/// Result of one isolated run of caller-supplied work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Isolated<R> {
    /// The work finished within the budget and returned `R`.
    Completed(R),
    /// The wall-clock budget elapsed; the sandbox thread was abandoned.
    TimedOut,
    /// The work panicked; the message is the panic payload.
    Panicked {
        /// Stringified panic payload.
        message: String,
    },
}

/// One isolated result with identity and timing, at its input index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IsolatedOutcome<R> {
    /// Position of the item in the input batch.
    pub index: usize,
    /// Caller-provided item identifier.
    pub id: String,
    /// What the sandbox produced.
    pub result: Isolated<R>,
    /// Wall-clock time spent on this item, in milliseconds.
    pub elapsed_ms: u64,
}

/// All results of a generic isolated batch, in input order.
#[derive(Clone, Debug)]
pub struct IsolatedBatch<R> {
    /// One outcome per input item, in input order.
    pub results: Vec<IsolatedOutcome<R>>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// End-to-end wall-clock time for the batch.
    pub wall_time: Duration,
}

/// Runs `work` over every `(id, item)` pair with `cfg.jobs` workers,
/// a per-item wall-clock timeout, and panic containment — the generic
/// engine under [`analyze_batch`] and `bench`'s population scans.
///
/// The worker pool is a rayon thread pool sized to `cfg.jobs`; workers
/// claim items dynamically (work stealing), so one slow contract does
/// not idle the other cores behind a static partition. Each claimed
/// item then runs on a disposable sandbox thread under a
/// `recv_timeout` watchdog (see the crate docs for the two-layer
/// rationale).
///
/// Guarantees:
///
/// - exactly one [`IsolatedOutcome`] per input, at the input's index;
/// - a panicking item yields [`Isolated::Panicked`], others unaffected;
/// - an item exceeding `cfg.timeout` yields [`Isolated::TimedOut`] and
///   its sandbox thread is abandoned (cooperative deadlines inside
///   `work` make abandonment cheap — see [`ethainter::with_deadline`]).
pub fn run_isolated<T, R, F>(items: Vec<(String, T)>, cfg: &DriverConfig, work: F) -> IsolatedBatch<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    let jobs = cfg.effective_jobs().min(n.max(1));
    let timeout = cfg.timeout;
    let work = Arc::new(work);
    // Each item is claimed exactly once by whichever worker reaches its
    // index, then *moved* into that item's sandbox thread (the sandbox
    // must own it: on timeout the thread is abandoned together with the
    // item). The pool's map is order-preserving, so results come back
    // at their input index whatever the scheduling.
    let indexed: Vec<(usize, String, Mutex<Option<T>>)> = items
        .into_iter()
        .enumerate()
        .map(|(i, (id, item))| (i, id, Mutex::new(Some(item))))
        .collect();
    let started = Instant::now();

    let pool = rayon::ThreadPoolBuilder::new().num_threads(jobs).build().expect("worker pool");
    let results: Vec<IsolatedOutcome<R>> = pool.install(|| {
        indexed
            .par_iter()
            .map(|(i, id, cell)| {
                let item = cell.lock().unwrap().take().expect("index claimed exactly once");
                run_one(*i, id.clone(), item, timeout, &work)
            })
            .collect()
    });

    IsolatedBatch { results, jobs, wall_time: started.elapsed() }
}

/// Like [`run_isolated`], for work that classifies itself into a
/// [`Status`]: timeout/panic isolation results are folded into the same
/// enum, giving the flat per-contract records the JSONL output wants.
pub fn run_batch_with<T, F>(items: Vec<(String, T)>, cfg: &DriverConfig, work: F) -> BatchReport
where
    T: Send + 'static,
    F: Fn(T) -> Status + Send + Sync + 'static,
{
    let batch = run_isolated(items, cfg, work);
    BatchReport {
        outcomes: batch.results.into_iter().map(fold_outcome).collect(),
        jobs: batch.jobs,
        wall_time: batch.wall_time,
    }
}

/// Folds one isolated status run into a flat [`Outcome`], counting the
/// isolation layer's own verdicts (watchdog expiry, contained panic)
/// in the telemetry registry; the cooperative in-analysis paths count
/// themselves in [`analyze_one`]. Shared by the batch fold and the
/// single-job server path so both classify identically.
fn fold_outcome(o: IsolatedOutcome<Status>) -> Outcome {
    telemetry::metrics::histogram("ethainter_contract_elapsed_ms").observe(o.elapsed_ms);
    Outcome {
        index: o.index,
        id: o.id,
        status: match o.result {
            Isolated::Completed(status) => status,
            Isolated::TimedOut => {
                telemetry::metrics::counter("ethainter_contracts_timed_out_total").inc();
                Status::TimedOut
            }
            Isolated::Panicked { message } => {
                telemetry::metrics::counter("ethainter_contracts_panicked_total").inc();
                Status::Panicked { message }
            }
        },
        elapsed_ms: o.elapsed_ms,
    }
}

/// Runs one item on a disposable sandbox thread under a watchdog.
fn run_one<T, R, F>(
    index: usize,
    id: String,
    item: T,
    timeout: Duration,
    work: &Arc<F>,
) -> IsolatedOutcome<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    let work = Arc::clone(work);
    let mut outcome = isolate_one(id, item, timeout, move |item| work(item));
    outcome.index = index;
    outcome
}

/// Runs one unit of caller-supplied work with the full sandbox
/// treatment — disposable thread, `catch_unwind` panic containment,
/// `recv_timeout` watchdog with thread abandonment — without a worker
/// pool around it. This is the job-at-a-time isolation primitive for
/// callers that schedule their own concurrency, like the `ethainter
/// serve` worker loop; [`run_isolated`] is built on it.
///
/// The returned outcome always has `index == 0`; pool callers stamp
/// their own.
pub fn isolate_one<T, R, F>(
    id: String,
    item: T,
    timeout: Duration,
    work: F,
) -> IsolatedOutcome<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: FnOnce(T) -> R + Send + 'static,
{
    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    // Carry the caller's trace across the thread hop so sandbox spans
    // stay attached to the job that caused them; sandboxes launched
    // outside any trace (plain `ethainter batch`) mint their own per-
    // contract id so concurrent sandboxes never share a trace.
    let ctx = telemetry::trace::current();
    let spawned = std::thread::Builder::new()
        .name(format!("sandbox-{id}"))
        .spawn(move || {
            let ctx = if ctx.trace.is_none() {
                telemetry::trace::TraceContext { trace: telemetry::trace::mint(), parent_span: 0 }
            } else {
                ctx
            };
            let _trace = telemetry::trace::install(ctx);
            let result = catch_unwind(AssertUnwindSafe(|| work(item)));
            // The watchdog may have given up on us; a dead receiver is fine.
            let _ = tx.send(result);
        });

    let result = match spawned {
        Err(e) => Isolated::Panicked { message: format!("sandbox spawn failed: {e}") },
        Ok(handle) => match rx.recv_timeout(timeout) {
            Ok(Ok(value)) => {
                let _ = handle.join();
                Isolated::Completed(value)
            }
            Ok(Err(payload)) => {
                let _ = handle.join();
                Isolated::Panicked { message: panic_message(payload.as_ref()) }
            }
            // Timed out: abandon the sandbox thread. It owns all its
            // state and exits at the analysis' next deadline check.
            Err(_) => Isolated::TimedOut,
        },
    };

    IsolatedOutcome { index: 0, id, result, elapsed_ms: started.elapsed().as_millis() as u64 }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Analyzes one bytecode blob into a [`Status`], honoring any
/// cooperative deadline installed on the current thread.
///
/// This is the per-contract unit [`analyze_batch`] runs inside each
/// sandbox; exposed so callers can reuse the exact same classification
/// (decompile-failed vs. timed-out vs. analyzed) without the pool.
pub fn analyze_one(bytecode: &[u8], config: &ethainter::Config) -> Status {
    let sp_dec = telemetry::span("ethainter.decompile");
    let mut program = decompiler::decompile(bytecode);
    let decompile_us = sp_dec.finish_us();
    if program.incomplete {
        telemetry::metrics::counter("ethainter_contracts_decompile_failed_total").inc();
        let reason = program
            .warnings
            .first()
            .cloned()
            .unwrap_or_else(|| "decompile budget exhausted".to_string());
        return Status::DecompileFailed { reason };
    }
    // Lint the raw decompiler output (the passes assume and preserve the
    // invariants, so violations always originate in the decompiler).
    let lint = decompiler::validate(&program);
    let sp_pass = telemetry::span("ethainter.passes");
    if config.optimize_ir {
        decompiler::optimize(&mut program, &decompiler::PassConfig::default());
    }
    let passes_us = sp_pass.finish_us();
    let report = ethainter::analyze(&program, config);
    if report.timed_out {
        telemetry::metrics::counter("ethainter_contracts_timed_out_total").inc();
        return Status::TimedOut;
    }
    let mut timings = report.stats.timings;
    timings.decompile_us = decompile_us;
    timings.passes_us = passes_us;
    // Re-establish the `total_us == phase_sum()` invariant after adding
    // the two front-end phases (the scanner re-stamps once more when it
    // adds `cache_lookup_us`).
    timings.stamp_total();
    // Worker-side aggregation: these counters/histograms are global
    // lock-free atomics, so sandbox threads across the rayon pool fold
    // into one registry without coordination.
    telemetry::metrics::counter("ethainter_contracts_analyzed_total").inc();
    telemetry::metrics::counter("ethainter_findings_total")
        .add(report.findings.len() as u64);
    telemetry::metrics::counter("ethainter_findings_composite_total")
        .add(report.findings.iter().filter(|f| f.composite).count() as u64);
    telemetry::metrics::histogram("ethainter_phase_decompile_us").observe(decompile_us);
    telemetry::metrics::histogram("ethainter_phase_fixpoint_us")
        .observe(timings.fixpoint_us);
    telemetry::metrics::histogram("ethainter_phase_sink_scan_us")
        .observe(timings.sink_scan_us);
    if let Some((detectors_us, effects_us, composite_us)) = timings.sink_scan_breakdown() {
        telemetry::metrics::histogram("ethainter_phase_detectors_us").observe(detectors_us);
        telemetry::metrics::histogram("ethainter_phase_effects_us").observe(effects_us);
        telemetry::metrics::histogram("ethainter_phase_composite_us").observe(composite_us);
    }
    telemetry::metrics::histogram("ethainter_phase_total_us").observe(timings.total_us);
    Status::Analyzed {
        findings: report.findings.len(),
        composite: report.findings.iter().filter(|f| f.composite).count(),
        blocks: report.stats.blocks,
        stmts: report.stats.stmts,
        rounds: report.stats.rounds,
        facts: report.stats.facts,
        lint,
        timings,
        witness: report.witnesses,
    }
}

/// Analyzes a batch of `(id, bytecode)` contracts in parallel with
/// per-contract isolation — the production entry point.
///
/// Each sandbox thread installs a cooperative deadline equal to the
/// watchdog timeout, constructs its own decompiler and fixpoint state
/// (the engine's `Rc`-based internals are `!Send`, so sharing is
/// impossible by construction), and reports one [`Outcome`].
pub fn analyze_batch(
    contracts: Vec<(String, Vec<u8>)>,
    cfg: &DriverConfig,
    analysis: &ethainter::Config,
) -> BatchReport {
    let analysis = *analysis;
    let timeout = cfg.timeout;
    run_batch_with(contracts, cfg, move |bytecode: Vec<u8>| {
        let deadline = Instant::now() + timeout;
        ethainter::with_deadline(deadline, || analyze_one(&bytecode, &analysis))
    })
}

/// Analyzes one `(id, bytecode)` contract as a standalone job with the
/// **same** isolation and classification as [`analyze_batch`] — sandbox
/// thread, cooperative deadline, panic containment, identical
/// [`Status`] taxonomy and telemetry counters — but no worker pool.
///
/// This is the per-job unit of `ethainter serve`: the server supplies
/// its own concurrency (one OS worker per `--jobs`), so each job needs
/// exactly one disposable sandbox, not a rayon pool. The returned
/// outcome has `index == 0`; job identity lives in `id`.
pub fn analyze_job(
    id: &str,
    bytecode: Vec<u8>,
    cfg: &DriverConfig,
    analysis: &ethainter::Config,
) -> Outcome {
    let analysis = *analysis;
    let timeout = cfg.timeout;
    fold_outcome(isolate_one(id.to_string(), bytecode, timeout, move |code: Vec<u8>| {
        let deadline = Instant::now() + timeout;
        ethainter::with_deadline(deadline, || analyze_one(&code, &analysis))
    }))
}

/// Analyzes an unbounded stream of `(id, bytecode)` contracts with
/// bounded memory: contracts are pulled from the iterator `chunk` at a
/// time, each chunk runs through [`analyze_batch`] (same parallelism,
/// timeout, and panic isolation), and every [`Outcome`] is handed to
/// `sink` in input order — with its **global** stream index — as soon as
/// its chunk completes. At no point are more than `chunk` contracts (or
/// outcomes) resident.
///
/// This is the driver half of the ROADMAP's streaming-corpus item: a
/// population larger than RAM flows through as long as the source
/// iterator itself is lazy (see `corpus::stream` and the
/// `store::ContractSource` adapters). The returned [`Summary`] is
/// aggregated incrementally.
pub fn analyze_stream<I, F>(
    contracts: I,
    cfg: &DriverConfig,
    analysis: &ethainter::Config,
    chunk: usize,
    mut sink: F,
) -> Summary
where
    I: IntoIterator<Item = (String, Vec<u8>)>,
    F: FnMut(Outcome),
{
    let chunk = chunk.max(1);
    let started = Instant::now();
    let mut summary = Summary::empty(cfg.effective_jobs());
    let mut next_index = 0usize;
    let mut pending: Vec<(String, Vec<u8>)> = Vec::with_capacity(chunk);
    let mut flush = |pending: &mut Vec<(String, Vec<u8>)>, base: usize| {
        let report = analyze_batch(std::mem::take(pending), cfg, analysis);
        for mut o in report.outcomes {
            o.index += base;
            summary.record(&o.status);
            sink(o);
        }
    };
    for item in contracts {
        pending.push(item);
        if pending.len() == chunk {
            flush(&mut pending, next_index);
            next_index += chunk;
        }
    }
    if !pending.is_empty() {
        let n = pending.len();
        flush(&mut pending, next_index);
        next_index += n;
    }
    debug_assert_eq!(summary.total, next_index);
    summary.finish(started.elapsed());
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(jobs: usize, timeout_ms: u64) -> DriverConfig {
        DriverConfig { jobs, timeout: Duration::from_millis(timeout_ms) }
    }

    fn ids(n: usize) -> Vec<(String, usize)> {
        (0..n).map(|i| (format!("c{i}"), i)).collect()
    }

    fn analyzed(findings: usize, composite: usize) -> Status {
        Status::Analyzed {
            findings,
            composite,
            blocks: 1,
            stmts: 1,
            rounds: 1,
            facts: ethainter::FactCounts::default(),
            lint: Vec::new(),
            timings: ethainter::PhaseTimings::default(),
            witness: None,
        }
    }

    #[test]
    fn every_input_gets_one_outcome_in_order() {
        let report = run_batch_with(ids(64), &cfg(4, 10_000), |i| analyzed(i, 0));
        assert_eq!(report.outcomes.len(), 64);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.id, format!("c{i}"));
            assert_eq!(o.status, analyzed(i, 0));
        }
    }

    #[test]
    fn panics_are_contained() {
        let report = run_batch_with(ids(8), &cfg(2, 10_000), |i| {
            if i == 3 {
                panic!("boom on {i}");
            }
            Status::TimedOut // arbitrary non-panicking status
        });
        assert_eq!(report.outcomes.len(), 8);
        match &report.outcomes[3].status {
            Status::Panicked { message } => assert!(message.contains("boom on 3")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(report.outcomes.iter().filter(|o| o.status.tag() == "panicked").count() == 1);
    }

    #[test]
    fn slow_items_time_out_without_stalling_the_batch() {
        let report = run_batch_with(ids(4), &cfg(2, 100), |i| {
            if i == 1 {
                std::thread::sleep(Duration::from_secs(30));
            }
            analyzed(0, 0)
        });
        assert_eq!(report.outcomes[1].status, Status::TimedOut);
        assert_eq!(report.outcomes.iter().filter(|o| o.status.is_analyzed()).count(), 3);
        // The batch must not have waited for the 30 s sleeper.
        assert!(report.wall_time < Duration::from_secs(10), "{:?}", report.wall_time);
    }

    #[test]
    fn jsonl_round_trips_outcomes() {
        let report = run_batch_with(ids(3), &cfg(1, 10_000), |i| match i {
            0 => Status::Panicked { message: "m".into() },
            1 => Status::Analyzed {
                findings: 2,
                composite: 1,
                blocks: 3,
                stmts: 9,
                rounds: 2,
                facts: ethainter::FactCounts { input_tainted: 4, rba_blocks: 3, ..Default::default() },
                lint: vec!["B0 is empty (no terminator)".into()],
                timings: ethainter::PhaseTimings { fixpoint_us: 7, ..Default::default() },
                witness: None,
            },
            _ => Status::DecompileFailed { reason: "r".into() },
        });
        let jsonl = report.to_jsonl();
        let parsed: Vec<Outcome> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid outcome json"))
            .collect();
        assert_eq!(parsed, report.outcomes);
    }

    #[test]
    fn summary_counts_every_status_once() {
        let report = run_batch_with(ids(10), &cfg(3, 10_000), |i| match i % 3 {
            0 => analyzed(2, 1),
            1 => Status::Panicked { message: "p".into() },
            _ => Status::DecompileFailed { reason: "d".into() },
        });
        let s = report.summary();
        assert_eq!(s.total, 10);
        assert_eq!(s.analyzed + s.timed_out + s.panicked + s.decompile_failed, 10);
        assert_eq!(s.analyzed, 4);
        assert_eq!(s.findings, 8);
        assert_eq!(s.composite, 4);
    }

    #[test]
    fn stream_emits_global_indices_in_order_across_chunks() {
        // 11 trivial contracts (a lone STOP) through chunk size 4: the
        // sink must observe global indices 0..11 in order, with the tail
        // chunk shorter than the rest.
        let items: Vec<(String, Vec<u8>)> =
            (0..11).map(|i| (format!("s{i}"), vec![0x00])).collect();
        let mut seen: Vec<(usize, String)> = Vec::new();
        let summary = analyze_stream(
            items,
            &cfg(2, 10_000),
            &ethainter::Config::default(),
            4,
            |o| seen.push((o.index, o.id.clone())),
        );
        assert_eq!(summary.total, 11);
        assert_eq!(seen.len(), 11);
        for (i, (idx, id)) in seen.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(id, &format!("s{i}"));
        }
    }

    #[test]
    fn stream_summary_matches_batch_summary() {
        let items: Vec<(String, Vec<u8>)> =
            (0..6).map(|i| (format!("s{i}"), vec![0x00])).collect();
        let batch = analyze_batch(items.clone(), &cfg(1, 10_000), &ethainter::Config::default());
        let mut streamed: Vec<Outcome> = Vec::new();
        let summary =
            analyze_stream(items, &cfg(1, 10_000), &ethainter::Config::default(), 2, |o| {
                streamed.push(o)
            });
        // elapsed_ms and per-phase timings legitimately differ between
        // runs; everything else must be identical.
        assert_eq!(streamed.len(), batch.outcomes.len());
        for (s, b) in streamed.iter().zip(&batch.outcomes) {
            assert_eq!(
                (s.index, &s.id, s.status.without_timings()),
                (b.index, &b.id, b.status.without_timings())
            );
            // Real analyses must uphold the derived-total invariant:
            // whoever stamps a phase last re-derives `total_us`.
            if let Status::Analyzed { timings, .. } = &s.status {
                assert_eq!(timings.total_us, timings.phase_sum());
            }
        }
        let b = batch.summary();
        assert_eq!(
            (summary.total, summary.analyzed, summary.findings),
            (b.total, b.analyzed, b.findings)
        );
    }

    #[test]
    fn isolate_one_completes_panics_and_times_out() {
        let done = isolate_one("ok".to_string(), 21usize, Duration::from_secs(10), |n| n * 2);
        assert_eq!(done.result, Isolated::Completed(42));
        assert_eq!(done.index, 0);

        let boom = isolate_one("boom".to_string(), (), Duration::from_secs(10), |()| {
            panic!("job exploded");
        });
        match boom.result {
            Isolated::Panicked { ref message } => assert!(message.contains("job exploded")),
            ref other => panic!("expected Panicked, got {other:?}"),
        }

        let slow = isolate_one("slow".to_string(), (), Duration::from_millis(50), |()| {
            std::thread::sleep(Duration::from_secs(30));
        });
        assert_eq!(slow.result, Isolated::TimedOut);
        assert!(slow.elapsed_ms < 10_000, "watchdog must not wait for the sleeper");
    }

    #[test]
    fn analyze_job_matches_analyze_batch_verdicts() {
        let src = "contract J { uint v; function set(uint a) public { v = a; } }";
        let code = minisol::compile_source(src).unwrap().bytecode;
        let dcfg = cfg(1, 10_000);
        let analysis = ethainter::Config::default();
        let job = analyze_job("j", code.clone(), &dcfg, &analysis);
        assert!(job.status.is_analyzed());
        let batch = analyze_batch(vec![("j".into(), code)], &dcfg, &analysis);
        assert_eq!(
            job.status.without_timings(),
            batch.outcomes[0].status.without_timings(),
            "single-job and batch paths classify identically"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let report =
            run_batch_with(Vec::<(String, u8)>::new(), &cfg(0, 1_000), |_| Status::TimedOut);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.summary().total, 0);
    }
}
