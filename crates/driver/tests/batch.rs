//! End-to-end batch tests: a generated corpus through the full
//! decompile → analyze pipeline under the driver, and a hostile batch
//! with injected panicking and looping work mixed into real contracts.

use driver::{analyze_batch, run_batch_with, DriverConfig, Status};
use std::time::Duration;

fn corpus_contracts(n: usize, seed: u64) -> Vec<(String, Vec<u8>)> {
    let pop = corpus::Population::generate(&corpus::PopulationConfig {
        size: n,
        seed,
        ..Default::default()
    });
    pop.contracts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (format!("{}#{i}", c.family), c.bytecode))
        .collect()
}

#[test]
fn fifty_contract_corpus_batch_loses_nothing() {
    let contracts = corpus_contracts(50, 11);
    let expected_ids: Vec<String> = contracts.iter().map(|(id, _)| id.clone()).collect();

    let report = analyze_batch(
        contracts,
        &DriverConfig { jobs: 4, timeout: Duration::from_secs(60) },
        &ethainter::Config::default(),
    );

    assert_eq!(report.outcomes.len(), 50);
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(o.index, i);
        assert_eq!(o.id, expected_ids[i]);
        // Corpus contracts are well-formed by construction: each must
        // complete, and a completed analysis reports non-empty code.
        match &o.status {
            Status::Analyzed { blocks, stmts, facts, lint, .. } => {
                assert!(*blocks > 0, "{}: empty program", o.id);
                assert!(*stmts > 0, "{}: no statements", o.id);
                assert!(lint.is_empty(), "{}: IR violations {lint:?}", o.id);
                // The dispatcher always makes at least one block
                // attacker-reachable in a completed analysis.
                assert!(facts.rba_blocks > 0, "{}: no reachable blocks", o.id);
            }
            other => panic!("{}: expected Analyzed, got {other:?}", o.id),
        }
    }
    let s = report.summary();
    assert_eq!(s.analyzed, 50);
    assert_eq!(s.timed_out + s.panicked + s.decompile_failed, 0);
}

#[test]
fn batch_results_are_identical_across_worker_counts() {
    let contracts = corpus_contracts(30, 23);
    let cfg = ethainter::Config::default();
    let one = analyze_batch(
        contracts.clone(),
        &DriverConfig { jobs: 1, timeout: Duration::from_secs(60) },
        &cfg,
    );
    let four = analyze_batch(
        contracts,
        &DriverConfig { jobs: 4, timeout: Duration::from_secs(60) },
        &cfg,
    );
    // Same statuses at the same indices: scheduling must not leak into
    // results (per-contract elapsed times and phase timings of course
    // differ between live runs).
    let strip = |r: &driver::BatchReport| -> Vec<(usize, String, Status)> {
        r.outcomes.iter().map(|o| (o.index, o.id.clone(), o.status.without_timings())).collect()
    };
    assert_eq!(strip(&one), strip(&four));
}

#[test]
fn hostile_work_is_contained_in_a_large_batch() {
    // 200 items: mostly instant work, with panicking and looping
    // saboteurs scattered through the batch.
    let items: Vec<(String, usize)> = (0..200).map(|i| (format!("c{i}"), i)).collect();
    let report = run_batch_with(
        items,
        &DriverConfig { jobs: 4, timeout: Duration::from_millis(200) },
        |i| {
            match i % 50 {
                7 => panic!("sabotage at {i}"),
                23 => std::thread::sleep(Duration::from_secs(120)), // "infinite" loop
                _ => {}
            }
            Status::Analyzed {
                findings: 0,
                composite: 0,
                blocks: 1,
                stmts: 1,
                rounds: 1,
                facts: ethainter::FactCounts::default(),
                lint: Vec::new(),
                timings: ethainter::PhaseTimings::default(),
                witness: None,
            }
        },
    );

    // Zero lost contracts: exactly one outcome per input, in order.
    assert_eq!(report.outcomes.len(), 200);
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(o.index, i);
        assert_eq!(o.id, format!("c{i}"));
    }
    let s = report.summary();
    assert_eq!(s.panicked, 4, "one panic per 50-item stride");
    assert_eq!(s.timed_out, 4, "one sleeper per 50-item stride");
    assert_eq!(s.analyzed, 192);
    // The batch as a whole must not have serialized behind the sleepers.
    assert!(
        report.wall_time < Duration::from_secs(60),
        "batch stalled: {:?}",
        report.wall_time
    );
}

#[test]
fn looping_analysis_honors_the_cooperative_deadline() {
    // A contract analysis that ignores its budget would pin an abandoned
    // sandbox thread forever; with_deadline makes it exit early. Verify
    // the deadline plumbing end-to-end through ethainter::analyze on a
    // real program.
    let src = "contract C { uint v; function set(uint a) public { v = a; } }";
    let bytecode = minisol::compile_source(src).unwrap().bytecode;
    let program = decompiler::decompile(&bytecode);
    let deadline = std::time::Instant::now() - Duration::from_millis(1); // already passed
    let report = ethainter::with_deadline(deadline, || {
        ethainter::analyze(&program, &ethainter::Config::default())
    });
    assert!(report.timed_out, "expired deadline must mark the report timed out");

    // And without a deadline the same program analyzes fine.
    let report = ethainter::analyze(&program, &ethainter::Config::default());
    assert!(!report.timed_out);
}
