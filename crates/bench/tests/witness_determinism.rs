//! Witness determinism: provenance replay always re-runs the *dense*
//! engine from a fresh state regardless of which engine produced the
//! verdicts, so the serialized witnesses for a given (bytecode, config)
//! must be byte-identical across engines and across repeated runs. This
//! is what makes a witness a stable artifact: `ethainter explain` shows
//! the same derivation no matter how the scan that flagged the contract
//! was configured to schedule its fixpoint.

use ethainter::{Config, Engine};

/// Analyzes `code` and returns the canonical JSON of its witnesses.
fn witness_json(code: &[u8], cfg: &Config) -> String {
    let report = ethainter::analyze_bytecode(code, cfg);
    assert_eq!(
        report.witnesses.as_ref().map(Vec::len),
        Some(report.findings.len()),
        "witness mode must produce exactly one witness per finding"
    );
    serde_json::to_string(&report.witnesses).unwrap()
}

/// The headline determinism check: a generated corpus analyzed with
/// witnesses on under both engines, twice each. All four serializations
/// must match byte-for-byte, and the corpus must actually produce
/// non-trivial witnesses or the test proves nothing.
#[test]
fn witnesses_are_byte_identical_across_engines_and_runs() {
    let pop = corpus::Population::generate(&corpus::PopulationConfig {
        size: 120,
        seed: 7,
        ..Default::default()
    });
    let dense = Config { engine: Engine::Dense, witness: true, ..Config::default() };
    let sparse = Config { engine: Engine::Sparse, witness: true, ..Config::default() };

    let mut with_steps = 0usize;
    for c in &pop.contracts {
        let d1 = witness_json(&c.bytecode, &dense);
        let d2 = witness_json(&c.bytecode, &dense);
        let s1 = witness_json(&c.bytecode, &sparse);
        let s2 = witness_json(&c.bytecode, &sparse);
        assert_eq!(d1, d2, "{}#{}: dense run not reproducible", c.family, c.id);
        assert_eq!(s1, s2, "{}#{}: sparse run not reproducible", c.family, c.id);
        assert_eq!(d1, s1, "{}#{}: witnesses diverge across engines", c.family, c.id);
        if d1.contains("\"steps\"") {
            with_steps += 1;
        }
    }
    assert!(with_steps > 0, "corpus produced no witnesses — nothing was compared");
}

/// Ablation configs change which facts derive, but never determinism:
/// each (config, contract) pair must still replay identically across
/// engines.
#[test]
fn ablation_witnesses_agree_across_engines() {
    let pop = corpus::Population::generate(&corpus::PopulationConfig {
        size: 40,
        seed: 23,
        ..Default::default()
    });
    let base = Config { witness: true, ..Config::default() };
    let ablations = [
        base,
        Config { guard_modeling: false, ..base },
        Config { storage_taint: false, ..base },
        Config { storage_model: ethainter::StorageModel::Conservative, ..base },
        Config { range_guards: false, ..base },
    ];
    for c in &pop.contracts {
        for cfg in &ablations {
            let d = witness_json(&c.bytecode, &Config { engine: Engine::Dense, ..*cfg });
            let s = witness_json(&c.bytecode, &Config { engine: Engine::Sparse, ..*cfg });
            assert_eq!(d, s, "{}#{} diverges under {cfg:?}", c.family, c.id);
        }
    }
}
