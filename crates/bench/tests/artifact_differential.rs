//! Differential gates for the `AnalysisArtifacts` refactor.
//!
//! The artifact layer split `analyze()` into build + evaluate and turned
//! the composite (✰) marker pass from a recursive full re-analysis into
//! a frozen re-evaluation over the same artifacts. Nothing observable
//! may change: this suite pins findings, fact counts, defeated guards,
//! composite markers, and witnesses byte-identical across both engines
//! at all three corpus scales — and pins the composite markers to the
//! *recursive semantics* they replaced, reconstructed through the public
//! API (`freeze_guards = true, storage_taint = false` is exactly the
//! config the old recursion analyzed under; a finding is composite iff
//! it has no frozen counterpart with the same `(vuln, stmt)`).

use corpus::{Population, PopulationConfig, Scale};
use ethainter::{Config, Engine, Report};

/// Everything the refactor must preserve, extracted for comparison.
fn verdict(
    r: &Report,
) -> (Vec<ethainter::Finding>, ethainter::FactCounts, Vec<usize>, bool, Option<Vec<ethainter::Witness>>)
{
    (
        r.findings.clone(),
        r.stats.facts,
        r.defeated_guards.clone(),
        r.timed_out,
        r.witnesses.clone(),
    )
}

/// Scale presets with corpus sizes small enough for a debug-build test,
/// large enough to hit guard defeats, composite markers, and every
/// detector family at each scale.
fn scaled_corpora() -> Vec<(Scale, Population)> {
    [(Scale::Small, 120usize), (Scale::Realistic, 24), (Scale::Adversarial, 6)]
        .into_iter()
        .map(|(scale, size)| {
            let pop = Population::generate(&PopulationConfig {
                size,
                seed: 41,
                scale,
                ..Default::default()
            });
            (scale, pop)
        })
        .collect()
}

/// Both engines, witnesses on, all three scales: byte-identical reports,
/// and composite markers equal to the pre-refactor recursive semantics.
#[test]
fn artifact_refactor_preserves_reports_across_scales_and_engines() {
    let mut composite_seen = 0usize;
    let mut direct_seen = 0usize;
    for (scale, pop) in scaled_corpora() {
        for (i, c) in pop.contracts.iter().enumerate() {
            let mut p = decompiler::decompile(&c.bytecode);
            decompiler::optimize(&mut p, &decompiler::PassConfig::default());

            let dense_cfg =
                Config { engine: Engine::Dense, witness: true, ..Config::default() };
            let sparse_cfg =
                Config { engine: Engine::Sparse, witness: true, ..Config::default() };
            let d = ethainter::analyze(&p, &dense_cfg);
            let s = ethainter::analyze(&p, &sparse_cfg);
            assert_eq!(
                verdict(&d),
                verdict(&s),
                "engines diverge at scale {} on contract {i} ({}#{})",
                scale.name(),
                c.family,
                c.id
            );

            // The recursive semantics, reconstructed via the public API:
            // the old composite pass was literally `analyze` under this
            // frozen config, and a finding was composite iff the frozen
            // run lacked a (vuln, stmt) counterpart.
            let frozen = ethainter::analyze(
                &p,
                &Config {
                    freeze_guards: true,
                    storage_taint: false,
                    witness: false,
                    ..sparse_cfg
                },
            );
            for f in &s.findings {
                let direct = frozen
                    .findings
                    .iter()
                    .any(|g| g.vuln == f.vuln && g.stmt == f.stmt);
                assert_eq!(
                    f.composite,
                    !direct,
                    "composite marker drifted from recursive semantics at scale {} \
                     on contract {i} ({}#{}): {:?}",
                    scale.name(),
                    c.family,
                    c.id,
                    f
                );
                if f.composite {
                    composite_seen += 1;
                } else {
                    direct_seen += 1;
                }
            }
        }
    }
    // The corpora must exercise both marker polarities, or the gate
    // proves nothing about the frozen pass.
    assert!(composite_seen > 0, "no composite findings — frozen pass untested");
    assert!(direct_seen > 0, "no direct findings — marker comparison untested");
}
