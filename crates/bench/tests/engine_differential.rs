//! Differential equivalence of the dense and sparse fixpoint engines.
//!
//! The sparse engine is only a *scheduling* change: both engines
//! evaluate the same monotone rule system, which has a unique least
//! fixpoint, so every observable verdict — findings, fact counts,
//! defeated guards, timeout status — must be byte-identical. The two
//! legitimate differences are `stats.rounds` (an engine-specific effort
//! metric) and `stats.timings` (wall-clock), which are deliberately
//! excluded here.

use ethainter::{Config, Engine, Report, StorageModel};
use proptest::prelude::*;

/// Everything the engines must agree on, extracted for comparison.
fn verdict(r: &Report) -> (Vec<ethainter::Finding>, ethainter::FactCounts, Vec<usize>, bool) {
    (r.findings.clone(), r.stats.facts, r.defeated_guards.clone(), r.timed_out)
}

fn both_engines(cfg: &Config) -> (Config, Config) {
    (
        Config { engine: Engine::Dense, ..*cfg },
        Config { engine: Engine::Sparse, ..*cfg },
    )
}

/// The headline differential: 500 generated contracts, decompiled and
/// optimized once each, analyzed by both engines under the default
/// config. Any divergence fails with the contract pinpointed.
#[test]
fn five_hundred_contract_corpus_differential() {
    let pop = corpus::Population::generate(&corpus::PopulationConfig {
        size: 500,
        seed: 7,
        ..Default::default()
    });
    let (dense_cfg, sparse_cfg) = both_engines(&Config::default());
    let mut findings_seen = 0usize;
    let mut defeats_seen = 0usize;
    for (i, c) in pop.contracts.iter().enumerate() {
        let mut p = decompiler::decompile(&c.bytecode);
        decompiler::optimize(&mut p, &decompiler::PassConfig::default());
        let d = ethainter::analyze(&p, &dense_cfg);
        let s = ethainter::analyze(&p, &sparse_cfg);
        assert_eq!(
            verdict(&d),
            verdict(&s),
            "engines diverge on contract {i} ({}#{})",
            c.family,
            c.id
        );
        findings_seen += s.findings.len();
        defeats_seen += s.defeated_guards.len();
    }
    // The corpus must actually exercise the interesting paths, or the
    // differential proves nothing.
    assert!(findings_seen > 0, "corpus produced no findings");
    assert!(defeats_seen > 0, "corpus defeated no guards (delta-rba path untested)");
}

/// Ablation configs on a smaller slice: every Figure 8 switch
/// combination must also agree, since the engines share the rule
/// predicates, not just the default path.
#[test]
fn ablation_configs_agree_across_engines() {
    let pop = corpus::Population::generate(&corpus::PopulationConfig {
        size: 60,
        seed: 23,
        ..Default::default()
    });
    let ablations = [
        Config::default(),
        Config { guard_modeling: false, ..Config::default() },
        Config { storage_taint: false, ..Config::default() },
        Config { storage_model: StorageModel::Conservative, ..Config::default() },
        Config { freeze_guards: true, ..Config::default() },
        Config { range_guards: false, ..Config::default() },
    ];
    for c in &pop.contracts {
        let mut p = decompiler::decompile(&c.bytecode);
        decompiler::optimize(&mut p, &decompiler::PassConfig::default());
        for cfg in &ablations {
            let (dense_cfg, sparse_cfg) = both_engines(cfg);
            let d = ethainter::analyze(&p, &dense_cfg);
            let s = ethainter::analyze(&p, &sparse_cfg);
            assert_eq!(
                verdict(&d),
                verdict(&s),
                "engines diverge on {}#{} under {cfg:?}",
                c.family,
                c.id
            );
        }
    }
}

fn arb_config() -> impl Strategy<Value = Config> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(guards, storage, conservative, freeze, opt, range)| Config {
            guard_modeling: guards,
            storage_taint: storage,
            storage_model: if conservative {
                StorageModel::Conservative
            } else {
                StorageModel::Precise
            },
            freeze_guards: freeze,
            optimize_ir: opt,
            range_guards: range,
            engine: Engine::Sparse, // overwritten per side below
            witness: false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scaled presets: random (seed, scale, config) triples where the
    /// scale is drawn from the *large* presets (realistic/adversarial),
    /// so the differential also covers megacontracts whose fixpoints
    /// take thousands of worklist pops — few cases, because each one
    /// decompiles and analyzes a 10–50 KB contract twice.
    #[test]
    fn scaled_presets_are_engine_invariant(
        seed in any::<u64>(),
        adversarial in any::<bool>(),
        cfg in arb_config(),
    ) {
        let scale = if adversarial {
            corpus::Scale::Adversarial
        } else {
            corpus::Scale::Realistic
        };
        let pop = corpus::Population::generate(&corpus::PopulationConfig {
            size: 1,
            seed,
            scale,
            ..Default::default()
        });
        let (dense_cfg, sparse_cfg) = both_engines(&cfg);
        for c in &pop.contracts {
            let d = ethainter::analyze_bytecode(&c.bytecode, &dense_cfg);
            let s = ethainter::analyze_bytecode(&c.bytecode, &sparse_cfg);
            prop_assert_eq!(
                verdict(&d),
                verdict(&s),
                "engines diverge on {}#{} (seed {}, scale {:?})",
                c.family,
                c.id,
                seed,
                scale
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random (corpus seed, config) pairs: a fresh 3-contract
    /// population per case, every contract analyzed by both engines
    /// under the same randomly drawn config.
    #[test]
    fn random_corpora_and_configs_are_engine_invariant(
        seed in any::<u64>(),
        cfg in arb_config(),
    ) {
        let pop = corpus::Population::generate(&corpus::PopulationConfig {
            size: 3,
            seed,
            ..Default::default()
        });
        let (dense_cfg, sparse_cfg) = both_engines(&cfg);
        for c in &pop.contracts {
            // analyze_bytecode so optimize_ir participates too: the
            // engines must agree on raw and optimized IR alike.
            let d = ethainter::analyze_bytecode(&c.bytecode, &dense_cfg);
            let s = ethainter::analyze_bytecode(&c.bytecode, &sparse_cfg);
            prop_assert_eq!(
                verdict(&d),
                verdict(&s),
                "engines diverge on {}#{} (seed {})",
                c.family,
                c.id,
                seed
            );
        }
    }
}
