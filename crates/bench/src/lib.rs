//! # bench — shared evaluation machinery
//!
//! Helpers used by the `exp*` binaries (one per table/figure of the
//! paper, see `DESIGN.md` §3) and the Criterion microbenches: population
//! scanning (optionally parallel, reproducing the paper's 45-process
//! setup), prevalence tables, ground-truth precision scoring, and the
//! random-sampling protocol of §6.2.

#![warn(missing_docs)]

use corpus::{CorpusContract, Population};
use driver::{DriverConfig, Isolated};
use ethainter::{analyze_bytecode, Config, Report, Vuln};
use evm::U256;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A scanned population: per-contract Ethainter reports.
pub struct ScanResult {
    /// One report per contract (index-aligned).
    pub reports: Vec<Report>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock duration of the scan.
    pub elapsed: Duration,
}

/// Scans every contract with Ethainter on the batch driver with the
/// given worker count (`0` = one per core), per-contract timeout and
/// panic containment included. A contract the driver cuts off or
/// catches panicking yields an empty report with `timed_out` set, so
/// the result stays index-aligned with the population.
pub fn scan_jobs(pop: &Population, cfg: &Config, jobs: usize) -> ScanResult {
    let items: Vec<(String, Vec<u8>)> = pop
        .contracts
        .iter()
        .map(|c| (format!("{}#{}", c.family, c.id), c.bytecode.clone()))
        .collect();
    let dcfg = DriverConfig { jobs, ..DriverConfig::default() };
    let cfg = *cfg;
    let timeout = dcfg.timeout;
    let batch = driver::run_isolated(items, &dcfg, move |bytecode: Vec<u8>| {
        ethainter::with_deadline(Instant::now() + timeout, || analyze_bytecode(&bytecode, &cfg))
    });
    let reports = batch
        .results
        .into_iter()
        .map(|o| match o.result {
            Isolated::Completed(report) => report,
            Isolated::TimedOut | Isolated::Panicked { .. } => {
                Report { timed_out: true, ..Report::default() }
            }
        })
        .collect();
    ScanResult { reports, jobs: batch.jobs, elapsed: batch.wall_time }
}

/// Scans every contract with Ethainter (compatibility wrapper:
/// `parallel` maps to one worker per core, otherwise a single worker).
pub fn scan(pop: &Population, cfg: &Config, parallel: bool) -> ScanResult {
    scan_jobs(pop, cfg, if parallel { 0 } else { 1 })
}

/// One row of the §6.2 prevalence table.
#[derive(Clone, Debug)]
pub struct PrevalenceRow {
    /// Vulnerability class.
    pub vuln: Vuln,
    /// Unique contracts flagged.
    pub flagged: usize,
    /// Percentage of the population.
    pub pct: f64,
    /// Total balance held by flagged contracts (wei).
    pub eth_held: U256,
}

/// Builds the §6.2 table from a scan.
pub fn prevalence(pop: &Population, reports: &[Report]) -> Vec<PrevalenceRow> {
    Vuln::ALL
        .iter()
        .map(|&vuln| {
            let mut flagged = 0usize;
            let mut eth = U256::ZERO;
            for (c, r) in pop.contracts.iter().zip(reports) {
                if r.has(vuln) {
                    flagged += 1;
                    eth = eth.wrapping_add(c.balance);
                }
            }
            PrevalenceRow {
                vuln,
                flagged,
                pct: 100.0 * flagged as f64 / pop.contracts.len().max(1) as f64,
                eth_held: eth,
            }
        })
        .collect()
}

/// The §6.2 sampling protocol: random flagged contracts **with verified
/// source**, resampled until every class with any flagged-with-source
/// representative appears at least once (or the sample is exhausted).
pub fn sample_flagged_with_source(
    pop: &Population,
    reports: &[Report],
    n: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flagged: Vec<usize> = pop
        .contracts
        .iter()
        .zip(reports)
        .filter(|(c, r)| c.source.is_some() && !r.findings.is_empty())
        .map(|(c, _)| c.id)
        .collect();
    // Lexicographic sort on (hashed) addresses, then random sampling —
    // as described in the paper.
    flagged.sort_by_key(|&id| evm::Address::from_seed(0xC0DE_0000 + id as u64));
    let classes_present: Vec<Vuln> = Vuln::ALL
        .iter()
        .copied()
        .filter(|&v| flagged.iter().any(|&id| reports[id].has(v)))
        .collect();
    for _attempt in 0..64 {
        let sample: Vec<usize> =
            flagged.choose_multiple(&mut rng, n.min(flagged.len())).copied().collect();
        let covered = classes_present
            .iter()
            .all(|&v| sample.iter().any(|&id| reports[id].has(v)));
        if covered || sample.len() == flagged.len() {
            return sample;
        }
    }
    flagged.into_iter().take(n).collect()
}

/// Per-class precision of a flagged sample against ground truth
/// (the Figure 6 protocol with labels instead of manual inspection).
#[derive(Clone, Debug, Default)]
pub struct PrecisionRow {
    /// Sampled contracts flagged for this class.
    pub flagged: usize,
    /// Of those, genuinely exploitable (ground truth).
    pub true_positives: usize,
    /// Of the true positives, how many needed composite tainting (✰).
    pub composite: usize,
}

impl PrecisionRow {
    /// Precision as a fraction (1.0 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        if self.flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.flagged as f64
        }
    }
}

/// Scores a sample of contract ids per vulnerability class.
pub fn score_sample(
    pop: &Population,
    reports: &[Report],
    sample: &[usize],
) -> Vec<(Vuln, PrecisionRow)> {
    Vuln::ALL
        .iter()
        .map(|&vuln| {
            let mut row = PrecisionRow::default();
            for &id in sample {
                if !reports[id].has(vuln) {
                    continue;
                }
                row.flagged += 1;
                let truth = &pop.contracts[id].truth;
                if truth.exploitable.contains(&vuln) {
                    row.true_positives += 1;
                    if truth.composite {
                        row.composite += 1;
                    }
                }
            }
            (vuln, row)
        })
        .collect()
}

/// Overall precision over a sample: a sampled contract counts as a true
/// positive if *every* class it is flagged for is exploitable... no —
/// following Figure 6, each (contract, class) flag is judged separately
/// and the total is the sum over classes.
pub fn overall_precision(rows: &[(Vuln, PrecisionRow)]) -> (usize, usize) {
    let tp: usize = rows.iter().map(|(_, r)| r.true_positives).sum();
    let total: usize = rows.iter().map(|(_, r)| r.flagged).sum();
    (tp, total)
}

/// Renders a ratio like the Figure 8 charts: variant flags ÷ default
/// flags, per class.
pub fn report_ratios(
    default_rows: &[PrevalenceRow],
    variant_rows: &[PrevalenceRow],
) -> Vec<(Vuln, f64)> {
    default_rows
        .iter()
        .zip(variant_rows)
        .map(|(d, v)| {
            let ratio =
                if d.flagged == 0 { 0.0 } else { v.flagged as f64 / d.flagged as f64 };
            (d.vuln, ratio)
        })
        .collect()
}

/// Convenience: the contract by id.
pub fn contract(pop: &Population, id: usize) -> &CorpusContract {
    &pop.contracts[id]
}

/// Formats a wide table row.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Per-contract latency distribution, as emitted in
/// `BENCH_fixpoint.json` (all values in microseconds).
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Median per-contract time.
    pub p50: u64,
    /// 90th-percentile per-contract time.
    pub p90: u64,
    /// Slowest contract.
    pub max: u64,
}

/// Nearest-rank percentile (`p` in `[0, 100]`) of an ascending-sorted
/// sample set. Empty input yields 0.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank: the smallest value with at least p% of the samples
    // at or below it.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Sorts `samples` in place and summarizes p50/p90/max.
pub fn latency_summary(samples: &mut [u64]) -> LatencySummary {
    samples.sort_unstable();
    LatencySummary {
        p50: percentile(samples, 50.0),
        p90: percentile(samples, 90.0),
        max: samples.last().copied().unwrap_or(0),
    }
}

/// Population size from the first CLI argument, with a default.
pub fn size_arg(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::PopulationConfig;

    fn small_pop() -> Population {
        Population::generate(&PopulationConfig { size: 120, seed: 9, ..Default::default() })
    }

    #[test]
    fn scan_is_deterministic() {
        let pop = small_pop();
        let a = scan(&pop, &Config::default(), false);
        let b = scan(&pop, &Config::default(), true);
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.findings, y.findings);
        }
    }

    #[test]
    fn prevalence_counts_match_reports() {
        let pop = small_pop();
        let s = scan(&pop, &Config::default(), false);
        let rows = prevalence(&pop, &s.reports);
        for row in rows {
            let direct =
                s.reports.iter().filter(|r| r.has(row.vuln)).count();
            assert_eq!(row.flagged, direct);
        }
    }

    #[test]
    fn sample_only_includes_sourced_flagged() {
        let pop = small_pop();
        let s = scan(&pop, &Config::default(), false);
        let sample = sample_flagged_with_source(&pop, &s.reports, 10, 1);
        for id in sample {
            assert!(pop.contracts[id].source.is_some());
            assert!(!s.reports[id].findings.is_empty());
        }
    }

    #[test]
    fn precision_rows_bounded_by_sample() {
        let pop = small_pop();
        let s = scan(&pop, &Config::default(), false);
        let sample = sample_flagged_with_source(&pop, &s.reports, 10, 2);
        let rows = score_sample(&pop, &s.reports, &sample);
        for (_, r) in &rows {
            assert!(r.true_positives <= r.flagged);
            assert!(r.flagged <= sample.len());
        }
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 90.0), 90);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        // Odd-sized set: p50 is the middle element.
        assert_eq!(percentile(&[10, 20, 30], 50.0), 20);
        let mut samples = vec![30, 10, 20, 40, 50];
        let s = latency_summary(&mut samples);
        assert_eq!((s.p50, s.p90, s.max), (30, 50, 50));
    }

    #[test]
    fn ratios_are_one_for_identical_scans() {
        let pop = small_pop();
        let s = scan(&pop, &Config::default(), false);
        let rows = prevalence(&pop, &s.reports);
        for (_, ratio) in report_ratios(&rows, &rows) {
            // Rows with zero flags report 0 by convention.
            assert!(ratio == 1.0 || ratio == 0.0);
        }
    }
}
