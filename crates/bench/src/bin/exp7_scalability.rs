//! **P1** — §6.3 efficiency: whole-population scan throughput, average
//! per-contract analysis latency, parallel speedup, and the
//! Securify-relative slowdown.
//!
//! Paper: 240K contracts (38 MLoC of 3-address code) in 6 hours at
//! concurrency 45; <5 s average per contract (including decompilation);
//! Securify >5× slower than single-thread Ethainter.
//!
//! ```text
//! cargo run --release -p bench --bin exp7_scalability [population_size]
//! ```

use baselines::securify;
use bench::{scan_jobs, size_arg};
use corpus::{Population, PopulationConfig};
use ethainter::Config;
use std::time::Instant;
use store::ContractSource as _;

fn main() {
    let size = size_arg(20_000);
    eprintln!("generating {size} contracts…");
    let pop_cfg = PopulationConfig { size, ..Default::default() };
    let pop = Population::generate(&pop_cfg);
    let tac_stmts: usize = pop
        .contracts
        .iter()
        .map(|c| decompiler::decompile(&c.bytecode).stmts.len())
        .sum();

    // Driver-based scan at increasing worker counts: 1, 2, 4, … up to
    // the machine's cores (the paper's concurrency-45 sweep, scaled).
    let cores = driver::DriverConfig::default().effective_jobs();
    let mut sweep = vec![1usize];
    while *sweep.last().unwrap() * 2 < cores {
        sweep.push(sweep.last().unwrap() * 2);
    }
    if cores > 1 {
        sweep.push(cores);
    }
    eprintln!("driver scan sweep over {sweep:?} worker(s)…");
    let runs: Vec<bench::ScanResult> =
        sweep.iter().map(|&j| scan_jobs(&pop, &Config::default(), j)).collect();
    let seq = &runs[0];
    let _par = runs.last().unwrap();

    // Analysis-stage comparison on pre-decompiled programs (Securify did
    // not share Ethainter's decompiler, so the fair contrast is between
    // the analyses themselves).
    let sub = (size / 10).max(50).min(pop.contracts.len());
    eprintln!("analysis-only comparison on a {sub}-contract subsample…");
    let programs: Vec<_> = pop
        .contracts
        .iter()
        .take(sub)
        .map(|c| decompiler::decompile(&c.bytecode))
        .collect();
    let t0 = Instant::now();
    for prog in &programs {
        let _ = ethainter::analyze(prog, &Config::default());
    }
    let eth_analysis_per = t0.elapsed().as_secs_f64() / sub as f64;
    let t0 = Instant::now();
    for prog in &programs {
        let _ = securify::analyze_program(prog);
    }
    let securify_per = t0.elapsed().as_secs_f64() / sub as f64;
    let ethainter_per = seq.elapsed.as_secs_f64() / size as f64;

    // IR pass pipeline: how much the optimizer shrinks the fact universe
    // before the fixpoint ever sees it, what the passes cost, and what
    // they buy at the analysis stage (same subsample, raw vs optimized).
    eprintln!("pass-pipeline before/after on the subsample…");
    let stmts_before: usize = programs.iter().map(|p| p.stmts.len()).sum();
    let t0 = Instant::now();
    let optimized: Vec<_> = programs
        .iter()
        .map(|p| {
            let mut q = p.clone();
            decompiler::optimize(&mut q, &decompiler::PassConfig::default());
            q
        })
        .collect();
    let pass_time = t0.elapsed();
    let stmts_after: usize = optimized.iter().map(|p| p.stmts.len()).sum();
    let t0 = Instant::now();
    for prog in &optimized {
        let _ = ethainter::analyze(prog, &Config::default());
    }
    let eth_opt_per = t0.elapsed().as_secs_f64() / sub as f64;

    // Result store: the same scan cold (empty cache) and warm (cache
    // populated by the cold run). The warm pass is what an unchanged
    // re-scan of the chain costs: pure content-addressed lookups.
    eprintln!("warm-vs-cold result-store scan…");
    let scan_once = |cache: &mut store::ResultStore, tag: &str| {
        let dir = std::env::temp_dir()
            .join(format!("ethainter-exp7-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let source = store::CorpusSource::new(pop_cfg);
        let manifest = store::Manifest::new(&Config::default(), source.descriptor());
        let mut cp = store::Checkpoint::create(&dir, manifest).expect("checkpoint creates");
        let t0 = Instant::now();
        let summary = store::Scanner { cache: Some(cache), ..store::Scanner::default() }
            .scan(source, &mut cp, |_| {}, |_| {})
            .expect("scan runs");
        let elapsed = t0.elapsed();
        let _ = std::fs::remove_dir_all(&dir);
        (summary, elapsed)
    };
    let cache_dir = std::env::temp_dir()
        .join(format!("ethainter-exp7-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut cache = store::ResultStore::open(&cache_dir).expect("cache opens");
    let (cold, cold_elapsed) = scan_once(&mut cache, "cold");
    let (warm, warm_elapsed) = scan_once(&mut cache, "warm");
    assert_eq!(warm.fresh, 0, "warm re-scan must be pure cache hits");
    let cache_entries = cache.len();
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!("\nExperiment P1 — analysis efficiency (paper §6.3)");
    println!("  population:                {size} unique contracts");
    println!(
        "  generator dedup:           {} identical-bytecode candidates rejected ({:.2}% duplicate rate)",
        pop.duplicates_rejected,
        100.0 * pop.duplicate_rate()
    );
    println!("  three-address code:        {tac_stmts} statements");
    println!(
        "  sequential scan:           {:.2?}  ({:.3} ms/contract)",
        seq.elapsed,
        ethainter_per * 1e3
    );
    for run in &runs[1..] {
        println!(
            "  driver scan ({} workers):   {:.2?}  (speedup {:.2}×)",
            run.jobs,
            run.elapsed,
            seq.elapsed.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9)
        );
    }
    println!(
        "  end-to-end (decompile+analyze):  {:.3} ms/contract", ethainter_per * 1e3);
    println!(
        "  Ethainter analysis stage:  {:.4} ms/contract", eth_analysis_per * 1e3);
    println!(
        "  Securify analysis stage:   {:.4} ms/contract → {:.1}× slower",
        securify_per * 1e3,
        securify_per / eth_analysis_per.max(1e-12)
    );
    println!("\n  IR pass pipeline (constprop + DCE, {sub}-contract subsample):");
    println!(
        "    statements:  {stmts_before} → {stmts_after}  ({:.1}% removed)",
        100.0 * (stmts_before.saturating_sub(stmts_after)) as f64 / stmts_before.max(1) as f64
    );
    println!(
        "    pass cost:   {:.2?} total  ({:.4} ms/contract)",
        pass_time,
        pass_time.as_secs_f64() / sub as f64 * 1e3
    );
    println!(
        "    analysis:    raw {:.4} ms/contract, optimized {:.4} ms/contract ({:.2}× speedup)",
        eth_analysis_per * 1e3,
        eth_opt_per * 1e3,
        eth_analysis_per / eth_opt_per.max(1e-12)
    );
    // The gap widens with contract size (Securify's dense quadratic
    // closure vs Ethainter's semi-naive sparse evaluation): compare on a
    // realistically large contract.
    let mut big = String::from("contract Big {\n    mapping(address => uint) balances;\n    mapping(address => mapping(address => uint)) allowed;\n    uint supply;\n");
    for i in 0..24 {
        big.push_str(&format!(
            "    function op{i}(address to, uint v) public {{ require(balances[msg.sender] >= v); balances[msg.sender] -= v; balances[to] += v; supply += {i}; }}\n"
        ));
    }
    big.push('}');
    let big_code = minisol::compile_source(&big).expect("big contract compiles").bytecode;
    let big_prog = decompiler::decompile(&big_code);
    let t0 = Instant::now();
    for _ in 0..20 {
        let _ = ethainter::analyze(&big_prog, &Config::default());
    }
    let eth_big = t0.elapsed().as_secs_f64() / 20.0;
    let t0 = Instant::now();
    for _ in 0..20 {
        let _ = securify::analyze_program(&big_prog);
    }
    let sec_big = t0.elapsed().as_secs_f64() / 20.0;
    println!(
        "  large contract ({} TAC stmts): Ethainter {:.2} ms, Securify {:.2} ms → {:.1}× slower",
        big_prog.stmts.len(),
        eth_big * 1e3,
        sec_big * 1e3,
        sec_big / eth_big.max(1e-12)
    );

    println!("\n  result store (content-addressed cache, {size}-contract scan):");
    println!(
        "    cold scan:   {:.2?}  ({} fresh analyses → {} cache entries)",
        cold_elapsed, cold.fresh, cache_entries
    );
    println!(
        "    warm rescan: {:.2?}  ({} cache hits, {} fresh) → {:.1}× faster",
        warm_elapsed,
        warm.cache_hits,
        warm.fresh,
        cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9)
    );

    println!(
        "\n  paper reference: 240K contracts in 6 h at concurrency 45 (<5 s avg);\n\
         \x20 Securify >5× slower single-thread and not parallelizable.\n\
         \x20 Shape check: per-contract latency far below the paper's cutoff, near-linear\n\
         \x20 scaling in population size, Securify slower by the naive-evaluation gap."
    );
}
