//! Perf-trajectory benchmark: per-contract fixpoint time under the
//! dense and sparse engines over a generated corpus, emitted as
//! `BENCH_fixpoint.json` (committed at the repo root so the numbers
//! travel with the code they measure).
//!
//! Every contract is decompiled and optimized **once**; each engine
//! then runs `ethainter::analyze` on the same prepared program, so the
//! measured delta is purely analysis evaluation. Alongside the headline
//! `fixpoint_us` distribution, the artifact carries an `index_build_us`
//! distribution and per-phase medians, so regressions can be localized
//! to a phase without re-profiling. The run doubles as a differential
//! check: any divergence in findings, fact counts, or defeated guards
//! between the engines aborts with a non-zero exit — the benchmark
//! refuses to publish numbers for engines that disagree.
//!
//! ```text
//! bench_fixpoint [--corpus N] [--seed S] [--scale small|realistic|adversarial]
//!                [--quick] [--out PATH]
//! ```
//!
//! `--scale` picks the structural scale of the generated corpus
//! (default `realistic`, matching the committed artifact — the small
//! templates finish under the clock's resolution and make the sparse
//! engine read as "infinitely fast"). When a distribution's p50 still
//! rounds to 0µs, the artifact says so honestly: the engine row gets
//! `"below_resolution": true` and the run prints a warning.
//!
//! `--quick` shrinks the corpus to 50 contracts for the CI perf-smoke
//! job; the default 500 matches the committed artifact.

use bench::{latency_summary, LatencySummary};
use corpus::{Population, PopulationConfig, Scale};
use ethainter::{Config, Engine, PhaseTimings, Report};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// Medians of the per-contract phase timings (µs). Decompile/passes are
/// always zero here (programs are prepared once, outside the timed
/// region) and omitted.
#[derive(Debug, Default, Serialize, Deserialize)]
struct PhaseMedians {
    index_build_us: u64,
    fixpoint_us: u64,
    sink_scan_us: u64,
    /// Sink-scan sub-phase: per-opcode detector sweeps + tainted-owner
    /// scan.
    detectors_us: u64,
    /// Sink-scan sub-phase: effect-summary + branch-region detectors.
    effects_us: u64,
    /// Sink-scan sub-phase: the frozen composite-marker evaluation.
    composite_us: u64,
    total_us: u64,
}

/// One engine's aggregate over the corpus.
#[derive(Debug, Default, Serialize, Deserialize)]
struct EngineRow {
    /// Per-contract fixpoint latency distribution (µs).
    fixpoint_us: LatencySummary,
    /// Per-contract index-construction latency distribution (µs) —
    /// guard discovery, def-use, const/DS propagation, sparse indexes.
    index_build_us: LatencySummary,
    /// Per-phase medians over the corpus.
    phase_medians_us: PhaseMedians,
    /// True when `fixpoint_us.p50` rounded to 0µs: the corpus is too
    /// small for this engine to register on a microsecond clock, and
    /// ratios against this row are meaningless.
    below_resolution: bool,
    /// Sum of per-contract convergence rounds (engine-specific metric:
    /// dense counts re-scan passes, sparse counts 1 + defeat waves).
    rounds_total: u64,
    /// Sum of derived facts across the corpus (identical across
    /// engines by the differential guarantee).
    facts_total: u64,
}

/// The committed benchmark artifact.
#[derive(Debug, Serialize, Deserialize)]
struct BenchArtifact {
    /// Corpus size the distributions are computed over.
    corpus: usize,
    /// Corpus generator seed.
    seed: u64,
    /// Structural corpus scale (`small` | `realistic` | `adversarial`).
    /// Trajectories are only comparable PR-over-PR at the same scale.
    scale: String,
    /// Timed analyses per (contract, engine); the fastest is kept.
    runs_per_contract: u32,
    dense: EngineRow,
    sparse: EngineRow,
    /// Always true in an emitted artifact: a divergence aborts the run.
    verdicts_identical: bool,
}

fn total_facts(r: &Report) -> u64 {
    let f = &r.stats.facts;
    (f.input_tainted
        + f.storage_tainted
        + f.tainted_slots
        + f.tainted_mappings
        + f.writable_mappings
        + f.defeated_guards) as u64
}

/// Builds one engine's row from its per-contract best-run samples.
fn engine_row(
    name: &str,
    timings: &[PhaseTimings],
    rounds_total: u64,
    facts_total: u64,
) -> EngineRow {
    let mut fixpoint: Vec<u64> = timings.iter().map(|t| t.fixpoint_us).collect();
    let mut index_build: Vec<u64> = timings.iter().map(|t| t.index_build_us).collect();
    let median = |field: fn(&PhaseTimings) -> u64| -> u64 {
        let mut v: Vec<u64> = timings.iter().map(field).collect();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or(0)
    };
    let phase_medians_us = PhaseMedians {
        index_build_us: median(|t| t.index_build_us),
        fixpoint_us: median(|t| t.fixpoint_us),
        sink_scan_us: median(|t| t.sink_scan_us),
        detectors_us: median(|t| t.detectors_us.unwrap_or(0)),
        effects_us: median(|t| t.effects_us.unwrap_or(0)),
        composite_us: median(|t| t.composite_us.unwrap_or(0)),
        total_us: median(|t| t.total_us),
    };
    let fixpoint_us = latency_summary(&mut fixpoint);
    let below_resolution = fixpoint_us.p50 == 0;
    if below_resolution {
        eprintln!(
            "bench_fixpoint: WARNING: {name} fixpoint p50 rounds to 0µs — corpus too \
             small for this engine to register; re-run with a larger --scale before \
             reading ratios off this row"
        );
    }
    EngineRow {
        fixpoint_us,
        index_build_us: latency_summary(&mut index_build),
        phase_medians_us,
        below_resolution,
        rounds_total,
        facts_total,
    }
}

fn main() -> ExitCode {
    let mut corpus_n = 500usize;
    let mut seed = 7u64;
    let mut scale = Scale::Realistic;
    let mut out_path = String::from("BENCH_fixpoint.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_fixpoint: {} needs a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--corpus" => {
                corpus_n = take(i).parse().expect("bad --corpus");
                i += 1;
            }
            "--seed" => {
                seed = take(i).parse().expect("bad --seed");
                i += 1;
            }
            "--scale" => {
                let v = take(i);
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("bench_fixpoint: bad --scale `{v}` (small|realistic|adversarial)");
                    std::process::exit(2);
                });
                i += 1;
            }
            "--out" => {
                out_path = take(i);
                i += 1;
            }
            "--quick" => corpus_n = 50,
            other => {
                eprintln!("bench_fixpoint: unknown flag `{other}`");
                eprintln!(
                    "usage: bench_fixpoint [--corpus N] [--seed S] \
                     [--scale small|realistic|adversarial] [--quick] [--out PATH]"
                );
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let pop = Population::generate(&PopulationConfig {
        size: corpus_n,
        seed,
        scale,
        ..Default::default()
    });
    eprintln!(
        "bench_fixpoint: {} contracts (seed {seed}, scale {})",
        pop.contracts.len(),
        scale.name()
    );

    // Decompile + optimize once per contract; both engines analyze the
    // identical prepared program.
    let programs: Vec<decompiler::Program> = pop
        .contracts
        .iter()
        .map(|c| {
            let mut p = decompiler::decompile(&c.bytecode);
            decompiler::optimize(&mut p, &decompiler::PassConfig::default());
            p
        })
        .collect();

    // The prepared programs are already optimized; optimize_ir only
    // matters for analyze_bytecode, not analyze, but keep the configs
    // honest anyway.
    let dense_cfg = Config { engine: Engine::Dense, ..Config::default() };
    let sparse_cfg = Config { engine: Engine::Sparse, ..Config::default() };

    // Best-of-N damps scheduler noise on a shared machine; verdicts are
    // checked on every run, not just the timed-best one.
    const RUNS: u32 = 3;
    let mut dense_rounds = 0u64;
    let mut sparse_rounds = 0u64;
    let mut dense_facts = 0u64;
    let mut sparse_facts = 0u64;
    let mut dense_t: Vec<PhaseTimings> = Vec::with_capacity(programs.len());
    let mut sparse_t: Vec<PhaseTimings> = Vec::with_capacity(programs.len());

    for (ci, p) in programs.iter().enumerate() {
        let mut best: [Option<(u64, Report)>; 2] = [None, None];
        for (ei, cfg) in [&dense_cfg, &sparse_cfg].into_iter().enumerate() {
            for _ in 0..RUNS {
                let r = ethainter::analyze(p, cfg);
                let us = r.stats.timings.fixpoint_us;
                match &best[ei] {
                    Some((b, prev)) => {
                        // Determinism within one engine across runs.
                        if prev.findings != r.findings || prev.stats.facts != r.stats.facts {
                            eprintln!(
                                "bench_fixpoint: NONDETERMINISM in {} on contract {ci}",
                                cfg.engine.name()
                            );
                            return ExitCode::FAILURE;
                        }
                        if us < *b {
                            best[ei] = Some((us, r));
                        }
                    }
                    None => best[ei] = Some((us, r)),
                }
            }
        }
        let (_, d) = best[0].take().unwrap();
        let (_, s) = best[1].take().unwrap();
        if d.findings != s.findings
            || d.stats.facts != s.stats.facts
            || d.defeated_guards != s.defeated_guards
        {
            eprintln!(
                "bench_fixpoint: VERDICT MISMATCH on contract {ci} ({}):\n  dense:  {:?}\n  sparse: {:?}",
                pop.contracts[ci].family, d.findings, s.findings
            );
            return ExitCode::FAILURE;
        }
        dense_t.push(d.stats.timings);
        sparse_t.push(s.stats.timings);
        dense_rounds += d.stats.rounds as u64;
        sparse_rounds += s.stats.rounds as u64;
        dense_facts += total_facts(&d);
        sparse_facts += total_facts(&s);
    }

    let artifact = BenchArtifact {
        corpus: programs.len(),
        seed,
        scale: scale.name().to_string(),
        runs_per_contract: RUNS,
        dense: engine_row("dense", &dense_t, dense_rounds, dense_facts),
        sparse: engine_row("sparse", &sparse_t, sparse_rounds, sparse_facts),
        verdicts_identical: true,
    };

    let json = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    std::fs::write(&out_path, format!("{json}\n")).expect("write artifact");
    eprintln!(
        "bench_fixpoint: dense p50 {}µs p90 {}µs max {}µs | sparse p50 {}µs p90 {}µs max {}µs -> {out_path}",
        artifact.dense.fixpoint_us.p50,
        artifact.dense.fixpoint_us.p90,
        artifact.dense.fixpoint_us.max,
        artifact.sparse.fixpoint_us.p50,
        artifact.sparse.fixpoint_us.p90,
        artifact.sparse.fixpoint_us.max,
    );
    ExitCode::SUCCESS
}
