//! Perf-trajectory benchmark: per-contract fixpoint time under the
//! dense and sparse engines over a generated corpus, emitted as
//! `BENCH_fixpoint.json` (committed at the repo root so the numbers
//! travel with the code they measure).
//!
//! Every contract is decompiled and optimized **once**; each engine
//! then runs `ethainter::analyze` on the same prepared program, so the
//! measured delta is purely fixpoint evaluation (the per-phase
//! `fixpoint_us` timing, which excludes index construction). The run
//! doubles as a differential check: any divergence in findings, fact
//! counts, or defeated guards between the engines aborts with a
//! non-zero exit — the benchmark refuses to publish numbers for
//! engines that disagree.
//!
//! ```text
//! bench_fixpoint [--corpus N] [--seed S] [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the corpus to 50 contracts for the CI perf-smoke
//! job; the default 500 matches the committed artifact.

use bench::{latency_summary, LatencySummary};
use corpus::{Population, PopulationConfig};
use ethainter::{Config, Engine, Report};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// One engine's aggregate over the corpus.
#[derive(Debug, Default, Serialize, Deserialize)]
struct EngineRow {
    /// Per-contract fixpoint latency distribution (µs).
    fixpoint_us: LatencySummary,
    /// Sum of per-contract convergence rounds (engine-specific metric:
    /// dense counts re-scan passes, sparse counts 1 + defeat waves).
    rounds_total: u64,
    /// Sum of derived facts across the corpus (identical across
    /// engines by the differential guarantee).
    facts_total: u64,
}

/// The committed benchmark artifact.
#[derive(Debug, Serialize, Deserialize)]
struct BenchArtifact {
    /// Corpus size the distributions are computed over.
    corpus: usize,
    /// Corpus generator seed.
    seed: u64,
    /// Timed analyses per (contract, engine); the fastest is kept.
    runs_per_contract: u32,
    dense: EngineRow,
    sparse: EngineRow,
    /// Always true in an emitted artifact: a divergence aborts the run.
    verdicts_identical: bool,
}

fn total_facts(r: &Report) -> u64 {
    let f = &r.stats.facts;
    (f.input_tainted
        + f.storage_tainted
        + f.tainted_slots
        + f.tainted_mappings
        + f.writable_mappings
        + f.defeated_guards) as u64
}

fn main() -> ExitCode {
    let mut corpus_n = 500usize;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_fixpoint.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_fixpoint: {} needs a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--corpus" => {
                corpus_n = take(i).parse().expect("bad --corpus");
                i += 1;
            }
            "--seed" => {
                seed = take(i).parse().expect("bad --seed");
                i += 1;
            }
            "--out" => {
                out_path = take(i);
                i += 1;
            }
            "--quick" => corpus_n = 50,
            other => {
                eprintln!("bench_fixpoint: unknown flag `{other}`");
                eprintln!("usage: bench_fixpoint [--corpus N] [--seed S] [--quick] [--out PATH]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let pop = Population::generate(&PopulationConfig {
        size: corpus_n,
        seed,
        ..Default::default()
    });
    eprintln!("bench_fixpoint: {} contracts (seed {seed})", pop.contracts.len());

    // Decompile + optimize once per contract; both engines analyze the
    // identical prepared program.
    let programs: Vec<decompiler::Program> = pop
        .contracts
        .iter()
        .map(|c| {
            let mut p = decompiler::decompile(&c.bytecode);
            decompiler::optimize(&mut p, &decompiler::PassConfig::default());
            p
        })
        .collect();

    // The prepared programs are already optimized; optimize_ir only
    // matters for analyze_bytecode, not analyze, but keep the configs
    // honest anyway.
    let dense_cfg = Config { engine: Engine::Dense, ..Config::default() };
    let sparse_cfg = Config { engine: Engine::Sparse, ..Config::default() };

    // Best-of-N damps scheduler noise on a shared machine; verdicts are
    // checked on every run, not just the timed-best one.
    const RUNS: u32 = 3;
    let mut dense = EngineRow::default();
    let mut sparse = EngineRow::default();
    let mut dense_us = Vec::with_capacity(programs.len());
    let mut sparse_us = Vec::with_capacity(programs.len());

    for (ci, p) in programs.iter().enumerate() {
        let mut best: [Option<(u64, Report)>; 2] = [None, None];
        for (ei, cfg) in [&dense_cfg, &sparse_cfg].into_iter().enumerate() {
            for _ in 0..RUNS {
                let r = ethainter::analyze(p, cfg);
                let us = r.stats.timings.fixpoint_us;
                match &best[ei] {
                    Some((b, prev)) => {
                        // Determinism within one engine across runs.
                        if prev.findings != r.findings || prev.stats.facts != r.stats.facts {
                            eprintln!(
                                "bench_fixpoint: NONDETERMINISM in {} on contract {ci}",
                                cfg.engine.name()
                            );
                            return ExitCode::FAILURE;
                        }
                        if us < *b {
                            best[ei] = Some((us, r));
                        }
                    }
                    None => best[ei] = Some((us, r)),
                }
            }
        }
        let (d_us, d) = best[0].take().unwrap();
        let (s_us, s) = best[1].take().unwrap();
        if d.findings != s.findings
            || d.stats.facts != s.stats.facts
            || d.defeated_guards != s.defeated_guards
        {
            eprintln!(
                "bench_fixpoint: VERDICT MISMATCH on contract {ci} ({}):\n  dense:  {:?}\n  sparse: {:?}",
                pop.contracts[ci].family, d.findings, s.findings
            );
            return ExitCode::FAILURE;
        }
        dense_us.push(d_us);
        sparse_us.push(s_us);
        dense.rounds_total += d.stats.rounds as u64;
        sparse.rounds_total += s.stats.rounds as u64;
        dense.facts_total += total_facts(&d);
        sparse.facts_total += total_facts(&s);
    }

    dense.fixpoint_us = latency_summary(&mut dense_us);
    sparse.fixpoint_us = latency_summary(&mut sparse_us);
    let artifact = BenchArtifact {
        corpus: programs.len(),
        seed,
        runs_per_contract: RUNS,
        dense,
        sparse,
        verdicts_identical: true,
    };

    let json = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    std::fs::write(&out_path, format!("{json}\n")).expect("write artifact");
    eprintln!(
        "bench_fixpoint: dense p50 {}µs p90 {}µs max {}µs | sparse p50 {}µs p90 {}µs max {}µs -> {out_path}",
        artifact.dense.fixpoint_us.p50,
        artifact.dense.fixpoint_us.p90,
        artifact.dense.fixpoint_us.max,
        artifact.sparse.fixpoint_us.p50,
        artifact.sparse.fixpoint_us.p90,
        artifact.sparse.fixpoint_us.max,
    );
    ExitCode::SUCCESS
}
